//! A vendored, dependency-free shim of the [Criterion](https://docs.rs/criterion)
//! benchmarking API, covering exactly the subset this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors this shim under the `criterion` name. Bench sources
//! stay byte-compatible with the real crate:
//!
//! - `criterion_group!(benches, f1, f2)` / `criterion_main!(benches)`
//! - `Criterion::bench_function` and `benchmark_group` with
//!   `sample_size`, `bench_function`, `finish`
//! - `Bencher::iter`
//!
//! Instead of Criterion's statistical analysis it times `sample_size`
//! batches and reports the minimum, mean and maximum time per
//! iteration — enough to compare configurations in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLES: usize = 12;

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the shim's sample batches are fixed at ~40 ms).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) times the body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Calibrate: how many iterations fit in one sample batch?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    per_iter_times.sort_by(|a, c| a.partial_cmp(c).expect("times are finite"));
    let min = per_iter_times[0];
    let max = per_iter_times[per_iter_times.len() - 1];
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        samples,
        iters_per_sample,
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        Criterion::default().bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}

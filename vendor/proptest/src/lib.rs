//! A vendored, dependency-free shim of the [proptest](https://docs.rs/proptest)
//! API, covering exactly the subset this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors this shim under the `proptest` name. It keeps the
//! property-test sources byte-compatible with the real crate:
//!
//! - `proptest! { #[test] fn f(x in strategy) { ... } }`
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! - `prop_oneof!`, `Just`, `any::<T>()`, integer ranges, tuples,
//!   `proptest::collection::vec`, simple `"[a-z0-9]{0,8}"` regex string
//!   strategies, `.prop_map`, `.prop_recursive`, `.boxed()`
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic RNG seeded from the test name (every run explores the
//! same cases), and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

/// The deterministic generator handed to strategies.
///
/// SplitMix64: tiny, seedable, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

pub mod strategy {
    //! Strategy combinators.

    use super::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike the real crate there is no value tree /
    /// shrinking; a strategy simply produces values from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy. The result is cheaply cloneable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                generate: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Recursive strategies: `levels` rounds of `recurse` applied on
        /// top of `self`, each level choosing between bottoming out and
        /// recursing one deeper.
        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..levels {
                let deeper = recurse(strat).boxed();
                strat = union(vec![base.clone(), deeper]);
            }
            strat
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                generate: Rc::clone(&self.generate),
            }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Uniform choice between type-erased arms (`prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy {
            generate: Rc::new(move |rng| {
                let i = rng.below(arms.len());
                (arms[i].generate)(rng)
            }),
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);

    /// One repeated element of a compiled regex-lite pattern.
    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<u8>,
        min: usize,
        max: usize,
    }

    /// Compiles the tiny regex subset the workspace tests use: literal
    /// characters, `\n`/`\t`/`\\` escapes and `[...]` classes with
    /// ranges, each optionally repeated by `{n}`, `{m,n}`, `*`, `+`, `?`.
    fn compile_pattern(pattern: &str) -> Vec<Atom> {
        let bytes = pattern.as_bytes();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let choices = match bytes[i] {
                b'[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < bytes.len() && bytes[i] != b']' {
                        let c = if bytes[i] == b'\\' {
                            i += 1;
                            escape(bytes[i])
                        } else {
                            bytes[i]
                        };
                        if i + 2 < bytes.len() && bytes[i + 1] == b'-' && bytes[i + 2] != b']' {
                            let hi = bytes[i + 2];
                            set.extend(c..=hi);
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < bytes.len(), "unterminated class in pattern {pattern:?}");
                    i += 1; // ']'
                    set
                }
                b'\\' => {
                    i += 1;
                    let c = escape(bytes[i]);
                    i += 1;
                    vec![c]
                }
                c => {
                    assert!(
                        !matches!(c, b'(' | b')' | b'|' | b'.'),
                        "unsupported regex feature {:?} in pattern {pattern:?}",
                        c as char
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < bytes.len() && bytes[i] == b'{' {
                let close = pattern[i..].find('}').expect("unterminated repetition") + i;
                let body = &pattern[i + 1..close];
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                }
            } else if i < bytes.len() && bytes[i] == b'*' {
                i += 1;
                (0, 8)
            } else if i < bytes.len() && bytes[i] == b'+' {
                i += 1;
                (1, 8)
            } else if i < bytes.len() && bytes[i] == b'?' {
                i += 1;
                (0, 1)
            } else {
                (1, 1)
            };
            assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn escape(c: u8) -> u8 {
        match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            other => other,
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = Vec::new();
            for atom in compile_pattern(self) {
                let count = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..count {
                    out.push(atom.choices[rng.below(atom.choices.len())]);
                }
            }
            String::from_utf8(out).expect("patterns are ASCII")
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// An unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size bounds for generated collections (half-open like `Range`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The case-driving runner behind the `proptest!` macro.

    use super::TestRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Drives one property over its configured number of cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `body` once per case with a name-seeded deterministic RNG.
        /// A panicking case is reported (case number and seed) and
        /// re-raised; there is no shrinking.
        pub fn run_named(&mut self, name: &str, mut body: impl FnMut(&mut TestRng)) {
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
            });
            let mut rng = TestRng::new(seed);
            for case in 0..self.config.cases {
                let case_rng = rng.clone();
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: property {name} failed at case {case}/{} \
                         (rng state {:#x}); no shrinking available",
                        self.config.cases, case_rng.state
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_named(stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies(x in 0u8..10, s in "[ab]{1,2}") {
            prop_assert!(x < 10);
            prop_assert!(!s.is_empty() && s.len() <= 2);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_vec(items in crate::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 0..5)) {
            prop_assert!(items.iter().all(|&i| i == 1 || i == 2));
            prop_assert!(items.len() < 5);
        }
    }
}

//! Section 2's efficiency claim: "building a valid input of size n
//! takes in worst case 2n guesses (assuming the parser only checks for
//! valid substitutions for the rejected character)".
//!
//! The bound is per *constructed character* under ideal conditions; the
//! driver also pays for exploration, so we assert a generous constant
//! multiple — orders of magnitude below random search (26^5 for one
//! keyword) but in the spirit of the claim.

use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

fn first_valid(subject: &str, seed: u64) -> (u64, usize) {
    let info = subjects::by_name(subject).unwrap();
    let cfg = DriverConfig {
        seed,
        max_execs: 20_000,
        max_valid_inputs: Some(1),
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let input = report
        .valid_inputs
        .first()
        .unwrap_or_else(|| panic!("{subject}: no valid input within 20k execs"));
    (report.first_valid_execs.unwrap(), input.len().max(1))
}

#[test]
fn arith_first_valid_is_cheap() {
    for seed in 1..=5 {
        let (execs, n) = first_valid("arith", seed);
        assert!(
            execs <= 200 * n as u64,
            "seed {seed}: {execs} execs for an input of length {n}"
        );
    }
}

#[test]
fn dyck_first_valid_is_cheap() {
    for seed in 1..=5 {
        let (execs, n) = first_valid("dyck", seed);
        assert!(
            execs <= 500 * n as u64,
            "seed {seed}: {execs} execs for an input of length {n}"
        );
    }
}

#[test]
fn json_keyword_is_far_cheaper_than_random_chance() {
    // generating "true" by random letters alone is 1 : 26^4 ≈ 457k;
    // pFuzzer needs a tiny fraction of that
    let info = subjects::by_name("cjson").unwrap();
    let cfg = DriverConfig {
        seed: 2,
        max_execs: 25_000,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let keyword_at = report.valid_inputs.iter().position(|i| {
        let s = String::from_utf8_lossy(i);
        s.contains("true") || s.contains("false") || s.contains("null")
    });
    assert!(
        keyword_at.is_some(),
        "no keyword within 25k execs (random chance would need ~457k)"
    );
}

//! Differential fuzz smoke test: every oracle-covered subject is driven
//! over its reference corpus plus 10,000 seeded generated inputs
//! (mutated corpus entries and random byte strings), and the
//! instrumented parser must agree with its independent oracle on every
//! single one. On failure the minimized witness is printed, ready to be
//! pasted into the conformance tables.

use parser_directed_fuzzing::subjects::diff::{differential_pairs, run_differential, DiffConfig};

#[test]
fn ten_thousand_inputs_per_subject_zero_disagreements() {
    let cfg = DiffConfig {
        seed: 0xd1ff,
        cases: 10_000,
        max_len: 64,
    };
    for pair in differential_pairs() {
        let disagreements = run_differential(&pair, &cfg);
        assert!(
            disagreements.is_empty(),
            "{}: {} parser/oracle disagreement(s), minimized witnesses:\n{}",
            pair.name,
            disagreements.len(),
            disagreements
                .iter()
                .map(|d| d.describe(pair.name))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn a_different_seed_also_stays_clean() {
    // a second, smaller sweep under another seed guards against the main
    // sweep's RNG happening to avoid a disagreeing region
    let cfg = DiffConfig {
        seed: 0x5eed,
        cases: 2_000,
        max_len: 96,
    };
    for pair in differential_pairs() {
        let disagreements = run_differential(&pair, &cfg);
        assert!(
            disagreements.is_empty(),
            "{}: {}",
            pair.name,
            disagreements
                .iter()
                .map(|d| d.describe(pair.name))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

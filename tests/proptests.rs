//! Property-based tests over the core invariants.

use proptest::prelude::*;

use parser_directed_fuzzing::runtime::ExecCtx;
use parser_directed_fuzzing::subjects;
use parser_directed_fuzzing::tokens::found_tokens;

proptest! {
    /// No subject panics or diverges on arbitrary bytes, and the
    /// verdict is deterministic.
    #[test]
    fn subjects_total_and_deterministic(input in proptest::collection::vec(any::<u8>(), 0..64)) {
        for info in subjects::all_subjects() {
            let a = info.subject.run(&input);
            let b = info.subject.run(&input);
            prop_assert_eq!(a.valid, b.valid, "{} verdict flaky", info.name);
            prop_assert_eq!(a.log.events.len(), b.log.events.len(), "{} log flaky", info.name);
        }
    }

    /// The event log's structural invariants hold on arbitrary inputs:
    /// comparisons never point past the input, and the rejection index
    /// (when present) is a real position.
    #[test]
    fn log_indices_in_bounds(input in proptest::collection::vec(any::<u8>(), 0..48)) {
        for info in subjects::all_subjects() {
            let exec = info.subject.run(&input);
            for cmp in exec.log.comparisons() {
                prop_assert!(cmp.index <= input.len(), "{}: index {} beyond len {}", info.name, cmp.index, input.len());
            }
            if let Some(r) = exec.log.rejection_index() {
                prop_assert!(r < input.len().max(1));
            }
        }
    }

    /// Substitution candidates point at the rejection index and are
    /// non-empty replacements.
    #[test]
    fn candidates_well_formed(input in proptest::collection::vec(any::<u8>(), 0..48)) {
        for info in subjects::all_subjects() {
            let exec = info.subject.run(&input);
            let r = exec.log.rejection_index();
            for cand in exec.log.substitution_candidates() {
                prop_assert_eq!(Some(cand.at_index), r);
                prop_assert!(!cand.bytes.is_empty());
            }
        }
    }

    /// Token scanners are total (no panic) on arbitrary bytes and only
    /// report inventory names.
    #[test]
    fn scanners_total_and_inventory_bound(input in proptest::collection::vec(any::<u8>(), 0..64)) {
        use parser_directed_fuzzing::tokens::inventory;
        for subject in ["ini", "csv", "cjson", "tinyC", "mjs"] {
            let inv = inventory(subject).unwrap();
            for name in found_tokens(subject, &input) {
                prop_assert!(
                    inv.tokens.iter().any(|t| t.name == name),
                    "{subject}: scanner reported non-inventory token {name}"
                );
            }
        }
    }

    /// Valid inputs of the csv subject stay valid under concatenation
    /// with a newline (rows compose).
    #[test]
    fn csv_rows_compose(a in "[a-z0-9 ]{0,8}", b in "[a-z0-9 ]{0,8}") {
        let subject = subjects::csv::subject();
        let combined = format!("{a}\n{b}");
        prop_assert!(subject.run(combined.as_bytes()).valid);
    }

    /// Dyck subject accepts exactly balanced strings: wrapping a valid
    /// input in any bracket pair keeps it valid.
    #[test]
    fn dyck_wrapping_preserves_validity(depth in 1usize..6) {
        let subject = subjects::dyck::subject();
        let mut input = String::from("()");
        for i in 0..depth {
            let (open, close) = [('(', ')'), ('[', ']'), ('<', '>'), ('{', '}')][i % 4];
            input = format!("{open}{input}{close}");
        }
        prop_assert!(subject.run(input.as_bytes()).valid);
    }

    /// The arith grammar accepts every rendered random expression tree.
    #[test]
    fn arith_accepts_generated_expressions(seed in 0u64..500) {
        use parser_directed_fuzzing::runtime::Rng;
        fn gen(rng: &mut Rng, depth: usize, out: &mut String) {
            if depth == 0 || rng.chance(1, 2) {
                let n = rng.gen_range(1, 100);
                out.push_str(&n.to_string());
            } else if rng.chance(1, 3) {
                out.push('(');
                gen(rng, depth - 1, out);
                out.push(')');
            } else {
                gen(rng, depth - 1, out);
                out.push(if rng.chance(1, 2) { '+' } else { '-' });
                gen(rng, depth - 1, out);
            }
        }
        let mut rng = Rng::new(seed);
        let mut text = String::new();
        gen(&mut rng, 4, &mut text);
        let subject = subjects::arith::subject();
        prop_assert!(subject.run(text.as_bytes()).valid, "{text}");
    }

    /// ExecCtx cursor ops never go out of bounds.
    #[test]
    fn ctx_cursor_safe(input in proptest::collection::vec(any::<u8>(), 0..32), jumps in proptest::collection::vec(any::<usize>(), 0..8)) {
        let mut ctx = ExecCtx::new(&input);
        for j in jumps {
            ctx.set_pos(j);
            prop_assert!(ctx.pos() <= input.len());
            let _ = ctx.peek();
            ctx.advance();
            prop_assert!(ctx.pos() <= input.len());
        }
    }
}

/// Builds a `BranchSet` from raw (site, outcome) pairs. Small site
/// numbers (`u8`) force overlaps between generated sets, which is
/// where the merge laws could actually break.
fn branch_set(pairs: &[(u8, bool)]) -> parser_directed_fuzzing::runtime::BranchSet {
    use parser_directed_fuzzing::runtime::{BranchId, SiteId};
    pairs
        .iter()
        .map(|&(site, outcome)| BranchId::new(SiteId::from_raw(site as u64), outcome))
        .collect()
}

proptest! {
    /// Fleet coverage merge is commutative: `a ∪ b == b ∪ a`.
    #[test]
    fn branch_merge_commutative(
        a in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        b in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
    ) {
        use parser_directed_fuzzing::fleet::merge_coverage;
        let (a, b) = (branch_set(&a), branch_set(&b));
        prop_assert_eq!(merge_coverage([&a, &b]), merge_coverage([&b, &a]));
    }

    /// Fleet coverage merge is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`,
    /// and both equal the flat three-way merge.
    #[test]
    fn branch_merge_associative(
        a in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        b in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        c in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
    ) {
        use parser_directed_fuzzing::fleet::merge_coverage;
        let (a, b, c) = (branch_set(&a), branch_set(&b), branch_set(&c));
        let left = merge_coverage([&merge_coverage([&a, &b]), &c]);
        let right = merge_coverage([&a, &merge_coverage([&b, &c])]);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &merge_coverage([&a, &b, &c]));
    }

    /// Fleet coverage merge is idempotent: `a ∪ a == a`, and merging a
    /// set into an existing union never changes it a second time.
    #[test]
    fn branch_merge_idempotent(
        a in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        b in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
    ) {
        use parser_directed_fuzzing::fleet::merge_coverage;
        let (a, b) = (branch_set(&a), branch_set(&b));
        prop_assert_eq!(&merge_coverage([&a, &a]), &a);
        let once = merge_coverage([&a, &b]);
        prop_assert_eq!(&merge_coverage([&once, &b]), &once);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: every input produced by a short pFuzzer run is
    /// accepted on re-execution (valid-by-construction, fuzzed over
    /// seeds).
    #[test]
    fn pfuzzer_outputs_revalidate(seed in 0u64..20) {
        use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
        let info = subjects::by_name("arith").unwrap();
        let cfg = DriverConfig { seed, max_execs: 600, ..DriverConfig::default() };
        let report = Fuzzer::new(info.subject, cfg).run();
        for input in &report.valid_inputs {
            prop_assert!(info.subject.run(input).valid);
        }
    }
}

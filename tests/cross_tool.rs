//! End-to-end pipeline checks across all crates: the evaluation matrix
//! runs, the figures have the right shape, and everything is
//! deterministic.

use parser_directed_fuzzing::eval::{
    fig2_coverage, fig3_tokens, headline_aggregates, run_matrix, EvalBudget, Tool,
};

fn small_budget() -> EvalBudget {
    EvalBudget {
        execs: 600,
        seeds: vec![1],
        afl_throughput: 1,
    }
}

#[test]
fn matrix_covers_all_subject_tool_pairs() {
    let outcomes = run_matrix(&small_budget());
    assert_eq!(outcomes.len(), 15);
    for tool in Tool::ALL {
        assert_eq!(outcomes.iter().filter(|o| o.tool == tool).count(), 5);
    }
}

#[test]
fn matrix_is_deterministic() {
    let a = run_matrix(&small_budget());
    let b = run_matrix(&small_budget());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.subject, y.subject);
        assert_eq!(
            x.valid_inputs,
            y.valid_inputs,
            "{} on {}",
            x.tool.name(),
            x.subject
        );
        assert_eq!(x.execs, y.execs);
    }
}

#[test]
fn figures_have_consistent_shape() {
    let outcomes = run_matrix(&small_budget());
    let fig2 = fig2_coverage(&outcomes);
    assert_eq!(fig2.len(), 5);
    let names: Vec<&str> = fig2.iter().map(|r| r.subject).collect();
    assert_eq!(names, vec!["ini", "csv", "cjson", "tinyC", "mjs"]);

    let fig3 = fig3_tokens(&outcomes);
    assert_eq!(fig3.len(), 15);
    for cell in &fig3 {
        for (_, found, total) in &cell.by_length {
            assert!(found <= total);
        }
    }

    let headline = headline_aggregates(&outcomes);
    assert_eq!(headline.len(), 3);
    // denominators must match the inventories: 9+?; short tokens across
    // 5 subjects: ini 5+2=7? — just require equality across tools
    let denom: Vec<(usize, usize)> = headline.iter().map(|r| (r.short.1, r.long.1)).collect();
    assert!(denom.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn headline_totals_match_inventories() {
    use parser_directed_fuzzing::tokens::inventory;
    let outcomes = run_matrix(&small_budget());
    let headline = headline_aggregates(&outcomes);
    let mut short_total = 0;
    let mut long_total = 0;
    for s in ["ini", "csv", "cjson", "tinyC", "mjs"] {
        let inv = inventory(s).unwrap();
        short_total += inv.tokens_in(1, 3).len();
        long_total += inv.tokens_in(4, usize::MAX).len();
    }
    for row in &headline {
        assert_eq!(row.short.1, short_total);
        assert_eq!(row.long.1, long_total);
    }
}

//! Cross-crate checks of the downstream tooling: corpus distillation
//! over fuzzer output, and the §7.4 mine-and-generate pipeline on a
//! real subject.

use parser_directed_fuzzing::grammar::pipeline::{run_pipeline, PipelineConfig};
use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::runtime::{distill, BranchSet};
use parser_directed_fuzzing::subjects;

#[test]
fn distilled_fuzzer_corpus_preserves_coverage() {
    let info = subjects::by_name("cjson").unwrap();
    let report = Fuzzer::new(
        info.subject,
        DriverConfig {
            seed: 1,
            max_execs: 10_000,
            ..DriverConfig::default()
        },
    )
    .run();
    assert!(report.valid_inputs.len() >= 3);
    let kept = distill(info.subject, &report.valid_inputs);
    assert!(!kept.is_empty());
    assert!(kept.len() <= report.valid_inputs.len());
    let union = |corpus: &[Vec<u8>]| {
        let mut set = BranchSet::new();
        for input in corpus {
            set.union_with(&info.subject.run(input).log.branches());
        }
        set
    };
    assert_eq!(union(&report.valid_inputs), union(&kept));
}

#[test]
fn pipeline_mines_recursive_json_and_generates_deeper_inputs() {
    let info = subjects::by_name("cjson").unwrap();
    let report = run_pipeline(
        info.subject,
        &PipelineConfig {
            seed: 1,
            fuzz_execs: 20_000,
            generate: 300,
            max_depth: 12,
        },
    );
    assert!(!report.fuzzed.is_empty());
    assert!(!report.generated_valid.is_empty());
    // every generated-valid input really is valid
    for input in &report.generated_valid {
        assert!(info.subject.run(input).valid);
    }
    // acceptance is non-trivial
    assert!(
        report.acceptance_rate() > 0.3,
        "acceptance {:.2}",
        report.acceptance_rate()
    );
}

#[test]
fn pipeline_on_dyck_closes_nested_brackets() {
    let info = subjects::by_name("dyck").unwrap();
    let report = run_pipeline(
        info.subject,
        &PipelineConfig {
            seed: 2,
            fuzz_execs: 8_000,
            generate: 300,
            max_depth: 14,
        },
    );
    assert!(!report.generated_valid.is_empty());
    // grammar-based generation produces deeper nesting than the fuzzer
    // found on its own (the whole point of Section 7.4)
    assert!(
        report.max_generated_len >= report.max_fuzzed_len,
        "generated max {} < fuzzed max {}",
        report.max_generated_len,
        report.max_fuzzed_len
    );
}

//! Section 7.1 end-to-end: parser-directed fuzzing works on a
//! table-driven parser when coverage comes from table elements.

use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

#[test]
fn pfuzzer_covers_the_parse_table() {
    let info = subjects::by_name("tabular").unwrap();
    let cfg = DriverConfig {
        seed: 1,
        max_execs: 10_000,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    assert!(!report.valid_inputs.is_empty());
    for input in &report.valid_inputs {
        assert!(info.subject.run(input).valid);
    }
    // structured productions (list or pair) were discovered, i.e. the
    // table-element guidance worked beyond single numbers
    let text: String = report
        .valid_inputs
        .iter()
        .map(|i| String::from_utf8_lossy(i).into_owned())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        text.contains('[') || text.contains('<'),
        "no structured input: {text}"
    );
}

#[test]
fn keywords_reachable_through_the_table() {
    // `true`/`false` live behind table cells + strcmp: both mechanisms
    // must compose
    let info = subjects::by_name("tabular").unwrap();
    let cfg = DriverConfig {
        seed: 2,
        max_execs: 20_000,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let text: String = report
        .valid_inputs
        .iter()
        .map(|i| String::from_utf8_lossy(i).into_owned())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        text.contains("true") || text.contains("false"),
        "no keyword found: {text}"
    );
}

#[test]
fn afl_dictionary_closes_the_keyword_gap_on_json() {
    // the Section 6 AFL-CTP discussion: given keyword knowledge (a
    // dictionary), AFL can reach tokens it otherwise misses
    use parser_directed_fuzzing::afl::{AflConfig, AflFuzzer};
    use parser_directed_fuzzing::tokens::TokenCoverage;

    let subject = subjects::json::subject();
    let execs = 25_000;
    let plain = AflFuzzer::new(
        subject,
        AflConfig {
            seed: 3,
            max_execs: execs,
            ..AflConfig::default()
        },
    )
    .run();
    let with_dict = AflFuzzer::new(
        subject,
        AflConfig {
            seed: 3,
            max_execs: execs,
            dictionary: vec![b"true".to_vec(), b"false".to_vec(), b"null".to_vec()],
            ..AflConfig::default()
        },
    )
    .run();
    let keywords = |inputs: &[Vec<u8>]| {
        let mut cov = TokenCoverage::new("cjson").unwrap();
        for i in inputs {
            cov.add_input(i);
        }
        ["true", "false", "null"]
            .iter()
            .filter(|k| cov.found(k))
            .count()
    };
    let plain_found = keywords(&plain.valid_inputs);
    let dict_found = keywords(&with_dict.valid_inputs);
    assert!(
        dict_found > plain_found,
        "dictionary did not help: plain {plain_found}, dict {dict_found}"
    );
    assert_eq!(dict_found, 3, "dictionary AFL should find all keywords");
}

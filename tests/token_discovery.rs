//! The central evaluation claim, end-to-end at small scale: only
//! parser-directed fuzzing reliably discovers long keywords; the AFL
//! baseline covers short tokens but misses keywords at equal budgets;
//! the KLEE baseline solves keywords on json but drowns on mjs.

use parser_directed_fuzzing::afl::{AflConfig, AflFuzzer};
use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;
use parser_directed_fuzzing::symbolic::{KleeConfig, KleeFuzzer};
use parser_directed_fuzzing::tokens::TokenCoverage;

const EXECS: u64 = 25_000;

fn coverage_of(subject: &str, inputs: &[Vec<u8>]) -> TokenCoverage {
    let mut cov = TokenCoverage::new(subject).unwrap();
    for input in inputs {
        cov.add_input(input);
    }
    cov
}

#[test]
fn pfuzzer_finds_all_json_keywords() {
    // Figure 3 / Table 2: "pFuzzer, by contrast, is able to cover all
    // tokens"
    let report = Fuzzer::new(
        subjects::json::subject(),
        DriverConfig {
            seed: 2,
            max_execs: EXECS,
            ..DriverConfig::default()
        },
    )
    .run();
    let cov = coverage_of("cjson", &report.valid_inputs);
    for kw in ["true", "false", "null"] {
        assert!(
            cov.found(kw),
            "pFuzzer missed {kw}: {:?}",
            cov.found_names()
        );
    }
}

#[test]
fn afl_misses_json_keywords_at_equal_budget() {
    // Table 2 discussion: "AFL misses all json keywords"
    let report = AflFuzzer::new(
        subjects::json::subject(),
        AflConfig {
            seed: 2,
            max_execs: EXECS,
            ..AflConfig::default()
        },
    )
    .run();
    let cov = coverage_of("cjson", &report.valid_inputs);
    let found: usize = ["true", "false", "null"]
        .iter()
        .filter(|kw| cov.found(kw))
        .count();
    assert!(
        found < 3,
        "AFL unexpectedly found every keyword at this budget: {:?}",
        cov.found_names()
    );
}

#[test]
fn klee_finds_json_keywords() {
    // "KLEE, however, is still able to cover most of the tokens"
    let report = KleeFuzzer::new(
        subjects::json::subject(),
        KleeConfig {
            max_execs: EXECS,
            ..KleeConfig::default()
        },
    )
    .run();
    let cov = coverage_of("cjson", &report.valid_inputs);
    let found: usize = ["true", "false", "null"]
        .iter()
        .filter(|kw| cov.found(kw))
        .count();
    assert!(
        found >= 2,
        "KLEE found too few keywords: {:?}",
        cov.found_names()
    );
}

#[test]
fn pfuzzer_reaches_tinyc_keywords() {
    // Section 5.3: pFuzzer covers keyword tokens on tinyC (the paper's
    // best run reaches 86% of all tokens)
    let report = Fuzzer::new(
        subjects::tinyc::subject(),
        DriverConfig {
            seed: 3,
            max_execs: 40_000,
            ..DriverConfig::default()
        },
    )
    .run();
    let cov = coverage_of("tinyC", &report.valid_inputs);
    let keywords_found: usize = ["if", "do", "else", "while"]
        .iter()
        .filter(|kw| cov.found(kw))
        .count();
    assert!(
        keywords_found >= 1,
        "pFuzzer found no tinyC keyword: {:?}",
        cov.found_names()
    );
}

#[test]
fn klee_explodes_on_mjs() {
    // Figure 2/3: "KLEE, suffering from the path explosion problem,
    // finds almost no valid inputs for mjs"
    let report = KleeFuzzer::new(
        subjects::mjs::subject(),
        KleeConfig {
            max_execs: 10_000,
            max_states: 2_000,
            ..KleeConfig::default()
        },
    )
    .run();
    assert!(report.exploded, "mjs did not overflow the state bound");
    let cov = coverage_of("mjs", &report.valid_inputs);
    let (long_found, _) = cov.fraction_in(6, usize::MAX);
    assert_eq!(
        long_found,
        0,
        "KLEE unexpectedly found long mjs keywords: {:?}",
        cov.found_names()
    );
}

#[test]
fn afl_beats_nobody_on_long_tokens_but_wins_short_ones() {
    // the headline shape on json: AFL strong on short tokens
    let report = AflFuzzer::new(
        subjects::json::subject(),
        AflConfig {
            seed: 1,
            max_execs: EXECS,
            ..AflConfig::default()
        },
    )
    .run();
    let cov = coverage_of("cjson", &report.valid_inputs);
    let (short_found, short_total) = cov.fraction_in(1, 3);
    assert!(
        short_found * 2 >= short_total,
        "AFL found too few short tokens: {}/{}",
        short_found,
        short_total
    );
}

//! Cross-crate invariant: every input pFuzzer reports is accepted by
//! the subject that produced it ("All of our inputs are syntactically
//! valid by construction").

use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
use parser_directed_fuzzing::subjects;

fn run(subject_name: &str, seed: u64, execs: u64) -> Vec<Vec<u8>> {
    let info = subjects::by_name(subject_name).unwrap();
    let cfg = DriverConfig {
        seed,
        max_execs: execs,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    for input in &report.valid_inputs {
        let exec = info.subject.run(input);
        assert!(
            exec.valid,
            "{subject_name}: reported input {:?} rejected: {:?}",
            String::from_utf8_lossy(input),
            exec.error
        );
    }
    report.valid_inputs
}

#[test]
fn arith_outputs_are_valid() {
    assert!(!run("arith", 1, 3_000).is_empty());
}

#[test]
fn dyck_outputs_are_valid() {
    assert!(!run("dyck", 1, 5_000).is_empty());
}

#[test]
fn ini_outputs_are_valid() {
    assert!(!run("ini", 1, 3_000).is_empty());
}

#[test]
fn csv_outputs_are_valid() {
    assert!(!run("csv", 1, 3_000).is_empty());
}

#[test]
fn json_outputs_are_valid() {
    assert!(!run("cjson", 1, 8_000).is_empty());
}

#[test]
fn tinyc_outputs_are_valid() {
    assert!(!run("tinyC", 1, 12_000).is_empty());
}

#[test]
fn mjs_outputs_are_valid() {
    assert!(!run("mjs", 1, 12_000).is_empty());
}

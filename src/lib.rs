//! # Parser-Directed Fuzzing — a Rust reproduction of pFuzzer (PLDI 2019)
//!
//! This is the umbrella crate of the workspace reproducing *Parser-
//! Directed Fuzzing* by Mathis, Gopinath, Mera, Kampmann, Höschele and
//! Zeller (PLDI 2019): a test generator that covers the input language
//! of a parser by tracking the comparisons made against input
//! characters, substituting the rejected character with a value it was
//! compared to, and appending when the parser runs out of input.
//!
//! The workspace members, re-exported here:
//!
//! - [`runtime`] — the instrumentation substrate (tracked reads, tainted
//!   comparisons, EOF detection, branch coverage, stack depth);
//! - [`subjects`] — the five evaluation subjects (ini, csv, cJSON,
//!   tinyC, mjs) plus the paper's running examples (arith, dyck);
//! - [`pfuzzer`] — the parser-directed fuzzing algorithm itself
//!   (Algorithm 1: candidate queue, heuristic, substitution driver);
//! - [`fleet`] — sharded cooperative campaigns: N workers with
//!   deterministic coverage/corpus synchronization epochs and fleet
//!   checkpointing;
//! - [`afl`] — the coverage-guided mutational "lexical" baseline;
//! - [`symbolic`] — the KLEE-style "semantic" baseline;
//! - [`tokens`] — token inventories (Tables 2–4) and input-coverage
//!   scoring;
//! - [`eval`] — the harness regenerating every table and figure;
//! - [`grammar`] — the Section 7.4 future-work pipeline: grammar mining
//!   from pFuzzer's valid inputs and grammar-based generation;
//! - [`obs`] — the zero-dependency observability layer: campaign
//!   metrics, phase spans and the `pdf-metrics v1` snapshot codec
//!   (observe-only; enabling it never changes a campaign result).
//!
//! # Quickstart
//!
//! ```
//! use parser_directed_fuzzing::pfuzzer::{DriverConfig, Fuzzer};
//! use parser_directed_fuzzing::subjects;
//!
//! let subject = subjects::json::subject();
//! let config = DriverConfig { seed: 1, max_execs: 5_000, ..DriverConfig::default() };
//! let report = Fuzzer::new(subject, config).run();
//! for input in &report.valid_inputs {
//!     println!("{}", String::from_utf8_lossy(input));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pdf_afl as afl;
pub use pdf_core as pfuzzer;
pub use pdf_eval as eval;
pub use pdf_fleet as fleet;
pub use pdf_grammar as grammar;
pub use pdf_obs as obs;
pub use pdf_runtime as runtime;
pub use pdf_subjects as subjects;
pub use pdf_symbolic as symbolic;
pub use pdf_tokens as tokens;

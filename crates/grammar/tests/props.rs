//! Property suites for the grammar crate: `pdf-grammar v1` codec
//! round-trip and corruption rejection, and miner determinism.

use pdf_grammar::{mine_corpus, Grammar, GrammarError, GrammarFile, Label, Sym, START};
use proptest::collection::vec;
use proptest::prelude::*;

/// A random small grammar: START plus up to four numbered nonterminals,
/// each with a few alternatives mixing literal runs and references.
/// Built through `add_alternative`, so it is deduplicated exactly like
/// a mined grammar.
fn arb_grammar() -> impl Strategy<Value = Grammar> {
    let labels = [START, Label(0x11), Label(0x22), Label(0x33), Label(0x44)];
    let sym = prop_oneof![
        vec(1u8..=255, 1..4).prop_map(Sym::Lit),
        (0usize..labels.len()).prop_map(move |i| Sym::Ref(labels[i])),
    ];
    let alt = vec(sym, 0..4);
    vec((0usize..labels.len(), alt), 0..10).prop_map(move |alts| {
        let mut g = Grammar::default();
        for (i, body) in alts {
            g.add_alternative(labels[i], body);
        }
        g
    })
}

/// Deterministic non-uniform weights shaped to `g`, varied by `seed`.
fn weights_for(g: &Grammar, seed: u32) -> Vec<Vec<u32>> {
    g.labels()
        .enumerate()
        .map(|(r, l)| {
            (0..g.alts(l).len())
                .map(|a| (seed.wrapping_mul(31).wrapping_add(r as u32 * 7 + a as u32) % 9) + 1)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(f)) == f, for uniform and learned weights alike.
    #[test]
    fn codec_round_trips(g in arb_grammar(), seed in any::<u32>()) {
        let file = GrammarFile::with_weights(g.clone(), weights_for(&g, seed)).unwrap();
        let back = GrammarFile::decode(&file.encode()).unwrap();
        prop_assert_eq!(&back, &file);
        prop_assert_eq!(back.digest(), file.digest());

        let uniform = GrammarFile::uniform(g);
        let back = GrammarFile::decode(&uniform.encode()).unwrap();
        prop_assert_eq!(back, uniform);
    }

    /// Dropping any single record line breaks a structural or integrity
    /// check — a torn write can never decode as a smaller grammar.
    #[test]
    fn codec_rejects_dropped_lines(g in arb_grammar(), seed in any::<u32>()) {
        let file = GrammarFile::with_weights(g.clone(), weights_for(&g, seed)).unwrap();
        let encoded = file.encode();
        let lines: Vec<&str> = encoded.lines().collect();
        for drop in 1..lines.len() {
            let torn: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            prop_assert!(
                GrammarFile::decode(&torn).is_err(),
                "decoded despite dropped line {}: {:?}",
                drop,
                lines[drop]
            );
        }
    }

    /// Corrupting the header digest is always caught.
    #[test]
    fn codec_rejects_digest_corruption(g in arb_grammar(), seed in any::<u32>(), flip in 0usize..16) {
        let file = GrammarFile::with_weights(g.clone(), weights_for(&g, seed)).unwrap();
        let encoded = file.encode();
        let pos = encoded.find("digest=").unwrap() + "digest=".len() + flip;
        let mut bytes = encoded.into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let corrupt = String::from_utf8(bytes).unwrap();
        prop_assert!(matches!(
            GrammarFile::decode(&corrupt),
            Err(GrammarError::Integrity(_)) | Err(GrammarError::Header(_))
        ));
    }

    /// Mining is deterministic: the same corpus mines the same grammar,
    /// twice — the property the `--grammar-out` flag relies on.
    #[test]
    fn miner_is_deterministic(corpus in vec(vec(any::<u8>(), 0..8), 0..6)) {
        let a = mine_corpus(pdf_subjects::arith::subject(), &corpus);
        let b = mine_corpus(pdf_subjects::arith::subject(), &corpus);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.render(), b.render());
    }
}

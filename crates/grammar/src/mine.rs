//! Grammar mining from instrumented executions.
//!
//! Every tracked comparison carries `(input index, stack depth, site)`.
//! For a valid input, the depth profile over input positions recovers
//! the parse nesting: a region whose comparisons ran strictly deeper
//! than its surroundings corresponds to a sub-production. Regions are
//! labelled by the static site of their first comparison, so structurally
//! equal productions from different inputs (or different nesting levels
//! of the *same* input) map to the same nonterminal — giving the mined
//! grammar genuine recursion.

use std::collections::BTreeMap;

use pdf_runtime::{Digest, Event, Execution, Subject};

/// A nonterminal of the mined grammar: the site id of the production's
/// first comparison (`0` is reserved for the synthetic start symbol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u64);

/// The start symbol.
pub const START: Label = Label(0);

/// One symbol of a production body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// A literal byte run.
    Lit(Vec<u8>),
    /// A reference to a nonterminal.
    Ref(Label),
}

/// A mined context-free grammar: alternatives per nonterminal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Grammar {
    rules: BTreeMap<Label, Vec<Vec<Sym>>>,
}

impl Grammar {
    /// Number of nonterminals.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the grammar has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The alternatives of a nonterminal.
    pub fn alts(&self, label: Label) -> &[Vec<Sym>] {
        self.rules.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Total number of alternatives across all nonterminals.
    pub fn alt_count(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }

    /// Whether any nonterminal is recursive (reachable from its own
    /// body) — the property Section 7.4 is after.
    pub fn has_recursion(&self) -> bool {
        self.rules
            .keys()
            .any(|&l| self.reaches(l, l, &mut Vec::new()))
    }

    fn reaches(&self, from: Label, target: Label, visiting: &mut Vec<Label>) -> bool {
        if visiting.contains(&from) {
            return false;
        }
        visiting.push(from);
        for alt in self.alts(from) {
            for sym in alt {
                if let Sym::Ref(r) = sym {
                    if *r == target || self.reaches(*r, target, visiting) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The nonterminals that have at least one alternative, in sorted
    /// label order — the canonical rule order of the `pdf-grammar v1`
    /// codec and the compiled generator's dense-id assignment.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.rules.keys().copied()
    }

    /// Adds an alternative to a nonterminal, deduplicating exactly like
    /// mining does — the entry point the codec and tests use to build
    /// grammars outside [`mine_corpus`].
    pub fn add_alternative(&mut self, label: Label, alt: Vec<Sym>) {
        self.add_alt(label, alt);
    }

    /// FNV-1a digest over the full rule structure (labels, alternative
    /// order, symbol bytes). Two grammars that generate identically
    /// under the same seed digest equally.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("pdf-grammar-rules");
        d.write_u64(self.rules.len() as u64);
        for (label, alts) in &self.rules {
            d.write_u64(label.0);
            d.write_u64(alts.len() as u64);
            for alt in alts {
                d.write_u64(alt.len() as u64);
                for sym in alt {
                    match sym {
                        Sym::Lit(bytes) => {
                            d.write_u8(0);
                            d.write_bytes(bytes);
                        }
                        Sym::Ref(r) => {
                            d.write_u8(1);
                            d.write_u64(r.0);
                        }
                    }
                }
            }
        }
        d.finish()
    }

    fn add_alt(&mut self, label: Label, alt: Vec<Sym>) {
        let alts = self.rules.entry(label).or_default();
        if !alts.contains(&alt) {
            alts.push(alt);
        }
    }

    /// Renders the grammar in a BNF-like notation (for reports and
    /// debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, alts) in &self.rules {
            let name = if *label == START {
                "<start>".to_string()
            } else {
                format!("<n{:x}>", label.0 & 0xffff)
            };
            for alt in alts {
                out.push_str(&name);
                out.push_str(" ::= ");
                for sym in alt {
                    match sym {
                        Sym::Lit(bytes) => {
                            out.push_str(&format!("{:?} ", String::from_utf8_lossy(bytes)))
                        }
                        Sym::Ref(r) => out.push_str(&format!("<n{:x}> ", r.0 & 0xffff)),
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Per-position parse evidence extracted from one execution.
struct Profile {
    /// For each input index: the maximum comparison depth, and the site
    /// of the first comparison observed at that index and depth.
    depth: Vec<usize>,
    site: Vec<u64>,
}

fn profile(exec: &Execution, len: usize) -> Profile {
    let mut depth = vec![0usize; len];
    let mut site = vec![0u64; len];
    // Prefer the deepest *successful* comparison per index: that is the
    // production which actually consumed the character. Failed deep
    // lookaheads (e.g. a number parser probing whether `]` is another
    // digit) must not drag following characters into the wrong region;
    // they only serve as a fallback for characters nothing matched
    // positively (e.g. free-form string content).
    let mut success: Vec<Option<(usize, u64)>> = vec![None; len];
    let mut failure: Vec<Option<(usize, u64)>> = vec![None; len];
    for event in &exec.log.events {
        if let Event::Cmp(c) = event {
            if c.observed.is_none() || c.index >= len {
                continue;
            }
            let slot = if c.outcome {
                &mut success[c.index]
            } else {
                &mut failure[c.index]
            };
            match slot {
                Some((d, _)) if *d >= c.depth => {}
                _ => *slot = Some((c.depth, c.site.0)),
            }
        }
    }
    let deepest_first: Vec<Option<(usize, u64)>> = success
        .into_iter()
        .zip(failure)
        .map(|(s, f)| s.or(f))
        .collect();
    // positions nobody compared (e.g. characters consumed through raw
    // reads) inherit the depth of their left neighbour so they stay
    // inside its region
    let mut last = (1usize, 0u64);
    for i in 0..len {
        if let Some((d, s)) = deepest_first[i] {
            last = (d, s);
        }
        depth[i] = last.0;
        site[i] = last.1;
    }
    Profile { depth, site }
}

/// Recursively carves `[lo, hi)` at `level` into literal runs and
/// deeper child regions, emitting an alternative body and registering
/// child rules.
fn carve(
    grammar: &mut Grammar,
    input: &[u8],
    prof: &Profile,
    lo: usize,
    hi: usize,
    level: usize,
    fuel: &mut usize,
) -> Vec<Sym> {
    let mut body = Vec::new();
    let mut lit = Vec::new();
    let mut i = lo;
    while i < hi {
        if *fuel == 0 {
            break;
        }
        *fuel -= 1;
        if prof.depth[i] > level {
            // child region: extend while strictly deeper
            let start = i;
            let mut j = i;
            while j < hi && prof.depth[j] > level {
                j += 1;
            }
            if !lit.is_empty() {
                body.push(Sym::Lit(std::mem::take(&mut lit)));
            }
            // the child's own level is the minimum depth inside it
            let child_level = (start..j).map(|k| prof.depth[k]).min().unwrap_or(level + 1);
            let child_label = Label(prof.site[start]);
            let child_body = carve(grammar, input, prof, start, j, child_level, fuel);
            grammar.add_alt(child_label, child_body);
            body.push(Sym::Ref(child_label));
            i = j;
        } else {
            lit.push(input[i]);
            i += 1;
        }
    }
    if !lit.is_empty() {
        body.push(Sym::Lit(lit));
    }
    body
}

/// Mines a grammar from a corpus of valid inputs by re-running each
/// through the instrumented subject and carving its depth profile.
/// Empty inputs contribute an empty start alternative.
pub fn mine_corpus(subject: Subject, corpus: &[Vec<u8>]) -> Grammar {
    let mut grammar = Grammar::default();
    for input in corpus {
        let exec = subject.run(input);
        if !exec.valid {
            continue;
        }
        if input.is_empty() {
            grammar.add_alt(START, Vec::new());
            continue;
        }
        let prof = profile(&exec, input.len());
        let root_level = prof.depth.iter().copied().min().unwrap_or(1);
        let mut fuel = input.len() * 4 + 64;
        let body = carve(
            &mut grammar,
            input,
            &prof,
            0,
            input.len(),
            root_level,
            &mut fuel,
        );
        grammar.add_alt(START, body);
    }
    grammar
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arith_grammar(corpus: &[&[u8]]) -> Grammar {
        let owned: Vec<Vec<u8>> = corpus.iter().map(|c| c.to_vec()).collect();
        mine_corpus(pdf_subjects::arith::subject(), &owned)
    }

    #[test]
    fn mining_yields_rules() {
        let g = arith_grammar(&[b"1", b"(2)", b"1+2"]);
        assert!(!g.is_empty());
        assert!(!g.alts(START).is_empty());
    }

    #[test]
    fn invalid_inputs_are_skipped() {
        let g = arith_grammar(&[b"((("]);
        assert!(g.alts(START).is_empty());
    }

    #[test]
    fn nested_inputs_give_recursion() {
        // (1), ((2)) — operand-within-operand maps to the same label
        let g = arith_grammar(&[b"1", b"(1)", b"((2))", b"(1+2)"]);
        assert!(g.has_recursion(), "no recursion mined:\n{}", g.render());
    }

    #[test]
    fn duplicate_alternatives_are_merged() {
        let g1 = arith_grammar(&[b"1"]);
        let g2 = arith_grammar(&[b"1", b"1", b"1"]);
        assert_eq!(g1.alt_count(), g2.alt_count());
    }

    #[test]
    fn dyck_nesting_is_recursive() {
        let corpus: Vec<Vec<u8>> = [&b"()"[..], b"(())", b"((()))", b"[()]"]
            .iter()
            .map(|c| c.to_vec())
            .collect();
        let g = mine_corpus(pdf_subjects::dyck::subject(), &corpus);
        assert!(g.has_recursion(), "{}", g.render());
    }

    #[test]
    fn render_is_nonempty_and_has_start() {
        let g = arith_grammar(&[b"1+2"]);
        let text = g.render();
        assert!(text.contains("<start>"));
        assert!(text.contains("::="));
    }

    #[test]
    fn json_structures_mine() {
        let corpus: Vec<Vec<u8>> = [&b"[1]"[..], b"[[2]]", b"[[[3]]]", b"{\"a\": 1}", b"true"]
            .iter()
            .map(|c| c.to_vec())
            .collect();
        let g = mine_corpus(pdf_subjects::json::subject(), &corpus);
        assert!(g.len() > 1);
        assert!(g.has_recursion(), "{}", g.render());
    }
}

//! The explore → mine → generate pipeline of Section 7.4.
//!
//! Grammar mining profiles the *comparison* events of each valid
//! input's execution, so this pipeline runs subjects with the default
//! [`FullLog`](pdf_runtime::FullLog) sink — the streaming sinks
//! (`CoverageOnly`, `LastFailure`) deliberately discard the per-index
//! comparison detail mining needs.

use pdf_core::{DriverConfig, Fuzzer};
use pdf_runtime::{ExecArena, Rng, Subject};

use crate::gen::Generator;
use crate::mine::{mine_corpus, Grammar};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Seed for the fuzzing stage and the generator.
    pub seed: u64,
    /// Execution budget for the pFuzzer exploration stage.
    pub fuzz_execs: u64,
    /// Number of inputs to generate from the mined grammar.
    pub generate: usize,
    /// Recursion bound for the generator.
    pub max_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0,
            fuzz_execs: 20_000,
            generate: 200,
            max_depth: 10,
        }
    }
}

/// The pipeline's outcome.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Valid inputs found by the exploration stage.
    pub fuzzed: Vec<Vec<u8>>,
    /// The mined grammar.
    pub grammar: Grammar,
    /// Inputs generated from the grammar (before validation).
    pub generated_total: usize,
    /// How many generated inputs the subject accepted (duplicates
    /// included).
    pub generated_valid_count: usize,
    /// The *distinct* generated inputs the subject accepted.
    pub generated_valid: Vec<Vec<u8>>,
    /// Longest valid input from the exploration stage.
    pub max_fuzzed_len: usize,
    /// Longest valid generated input.
    pub max_generated_len: usize,
}

impl PipelineReport {
    /// Acceptance rate of generated inputs (duplicates included).
    pub fn acceptance_rate(&self) -> f64 {
        if self.generated_total == 0 {
            0.0
        } else {
            self.generated_valid_count as f64 / self.generated_total as f64
        }
    }
}

/// Runs the full pipeline on a subject: pFuzzer explores, the miner
/// recovers a grammar from the valid inputs, the generator produces new
/// (typically longer, recursive) inputs, and each is validated against
/// the subject.
pub fn run_pipeline(subject: Subject, cfg: &PipelineConfig) -> PipelineReport {
    let fuzz_cfg = DriverConfig {
        seed: cfg.seed,
        max_execs: cfg.fuzz_execs,
        ..DriverConfig::default()
    };
    let fuzzed = Fuzzer::new(subject, fuzz_cfg).run().valid_inputs;
    let grammar = mine_corpus(subject, &fuzzed);
    let mut generator = Generator::new(&grammar, cfg.max_depth);
    let mut rng = Rng::new(cfg.seed ^ 0x9e37_79b9);
    let mut inputs = vec![Vec::new(); cfg.generate];
    for buf in &mut inputs {
        generator.generate_into(&mut rng, buf);
    }
    // Validation needs only an accept/reject verdict, not the per-index
    // comparison detail mining needed — so it runs as one amortized
    // fast-failure batch. Fast and full sinks agree on validity (the
    // sink-agreement contract, certified by the test below).
    let mut arena = ExecArena::new();
    let verdicts: Vec<bool> = subject
        .exec_batch_fast(&mut arena, &inputs)
        .iter()
        .map(|e| e.valid)
        .collect();
    let mut generated_valid: Vec<Vec<u8>> = Vec::new();
    let mut generated_valid_count = 0;
    for (input, valid) in inputs.iter().zip(verdicts) {
        if valid {
            generated_valid_count += 1;
            if !generated_valid.contains(input) {
                generated_valid.push(input.clone());
            }
        }
    }
    let max_fuzzed_len = fuzzed.iter().map(Vec::len).max().unwrap_or(0);
    let max_generated_len = generated_valid.iter().map(Vec::len).max().unwrap_or(0);
    PipelineReport {
        fuzzed,
        grammar,
        generated_total: cfg.generate,
        generated_valid_count,
        generated_valid,
        max_fuzzed_len,
        max_generated_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_on_arith_generates_valid_inputs() {
        let report = run_pipeline(
            pdf_subjects::arith::subject(),
            &PipelineConfig {
                seed: 1,
                fuzz_execs: 4_000,
                generate: 150,
                max_depth: 10,
            },
        );
        assert!(!report.fuzzed.is_empty());
        assert!(!report.grammar.is_empty());
        assert!(
            !report.generated_valid.is_empty(),
            "grammar:\n{}",
            report.grammar.render()
        );
        assert!(
            report.acceptance_rate() > 0.5,
            "rate {}",
            report.acceptance_rate()
        );
        assert!(report.generated_valid_count >= report.generated_valid.len());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let cfg = PipelineConfig {
            seed: 4,
            fuzz_execs: 2_000,
            generate: 60,
            max_depth: 8,
        };
        let a = run_pipeline(pdf_subjects::dyck::subject(), &cfg);
        let b = run_pipeline(pdf_subjects::dyck::subject(), &cfg);
        assert_eq!(a.fuzzed, b.fuzzed);
        assert_eq!(a.generated_valid, b.generated_valid);
    }

    /// Certifies the pipeline's batched validation: for the same
    /// generated inputs, the fast-failure batch and the full
    /// instrumentation sink agree input-by-input on validity, so the
    /// pipeline's valid set is exactly what one-at-a-time full execs
    /// would have produced.
    #[test]
    fn batched_validation_agrees_with_full_sink() {
        for (subject, seed) in [
            (pdf_subjects::arith::subject(), 11u64),
            (pdf_subjects::json::subject(), 12u64),
        ] {
            let report = run_pipeline(
                subject,
                &PipelineConfig {
                    seed,
                    fuzz_execs: 3_000,
                    generate: 120,
                    max_depth: 8,
                },
            );
            // regenerate the same inputs the pipeline validated
            let grammar = mine_corpus(subject, &report.fuzzed);
            let mut generator = Generator::new(&grammar, 8);
            let mut rng = Rng::new(seed ^ 0x9e37_79b9);
            let mut full_valid: Vec<Vec<u8>> = Vec::new();
            let mut full_count = 0;
            for _ in 0..120 {
                let input = generator.generate(&mut rng);
                if subject.run(&input).valid {
                    full_count += 1;
                    if !full_valid.contains(&input) {
                        full_valid.push(input);
                    }
                }
            }
            assert_eq!(
                report.generated_valid_count,
                full_count,
                "{}",
                subject.name()
            );
            assert_eq!(report.generated_valid, full_valid, "{}", subject.name());
        }
    }

    #[test]
    fn report_rates_are_bounded() {
        let report = run_pipeline(
            pdf_subjects::csv::subject(),
            &PipelineConfig {
                seed: 2,
                fuzz_execs: 2_000,
                generate: 50,
                max_depth: 6,
            },
        );
        let rate = report.acceptance_rate();
        assert!((0.0..=1.0).contains(&rate));
        assert!(report.generated_valid.len() <= report.generated_total);
    }
}

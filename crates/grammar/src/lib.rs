//! Grammar mining and grammar-based generation — the future-work
//! pipeline of Section 7.4 of the pFuzzer paper, implemented.
//!
//! > "For generating larger sequences, it is more efficient to rely on
//! > parser-directed fuzzing for initial exploration, use a tool to mine
//! > the grammar from the resulting sequences, and use the mined grammar
//! > for generating longer and more complex sequences that contain
//! > recursive structures. [...] Indeed, the stumbling block in using a
//! > tool such as AutoGram right now is the lack of valid and diverse
//! > inputs."
//!
//! pFuzzer removes that stumbling block: its outputs are valid and
//! diverse by construction. This crate closes the loop:
//!
//! 1. [`mine`] — rebuild the *parse structure* of each valid input from
//!    the same instrumentation pFuzzer already records: every comparison
//!    carries the input index it touched and the recursive-descent stack
//!    depth it ran at (AutoGram derives structure from dynamic taints in
//!    just this way). Nested depth regions become nonterminals, keyed by
//!    the static site of their first comparison, so the `value` inside
//!    `[1, [2]]` and the outer `value` share a nonterminal — which is
//!    what makes the mined grammar *recursive*.
//! 2. [`gen`] — expand the mined grammar with a depth-bounded random
//!    walk, yielding inputs far longer and more deeply nested than the
//!    fuzzer's own outputs.
//! 3. [`pipeline`] — glue: fuzz, mine, generate, validate (every
//!    generated input is re-run through the subject in one
//!    fast-failure batch; the report keeps only accepted ones and the
//!    acceptance rate).
//! 4. [`codec`] — persist a grammar plus learned generation weights as
//!    `pdf-grammar v1` text (count + digest integrity), the format
//!    behind `evalrunner --grammar-out` / `--grammar-in` and the input
//!    to the compiled generator in `pdf-gen`.
//!
//! # Example
//!
//! ```
//! use pdf_grammar::pipeline::{run_pipeline, PipelineConfig};
//!
//! let subject = pdf_subjects::arith::subject();
//! let report = run_pipeline(subject, &PipelineConfig {
//!     seed: 1,
//!     fuzz_execs: 3_000,
//!     generate: 50,
//!     ..PipelineConfig::default()
//! });
//! assert!(!report.generated_valid.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod gen;
pub mod mine;
pub mod pipeline;

pub use codec::{GrammarError, GrammarFile};
pub use gen::Generator;
pub use mine::{mine_corpus, Grammar, Label, Sym, START};
pub use pipeline::{run_pipeline, PipelineConfig, PipelineReport};

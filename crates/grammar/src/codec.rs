//! The `pdf-grammar v1` text codec: a mined [`Grammar`] plus its
//! learned per-alternative weights, persisted with the same count +
//! digest integrity conventions as `pdf-dict v1` (pdf-tokens).
//!
//! A [`GrammarFile`] couples a grammar with one `u32` weight per
//! alternative — the state the evolutionary weighting layer in
//! `pdf-gen` learns and the compiled generator samples from. Weights
//! are stored parallel to the grammar's canonical rule order
//! ([`Grammar::labels`], sorted) so a file round-tripped through its
//! text encoding drives generation byte-identically.
//!
//! Format, line-oriented:
//!
//! ```text
//! pdf-grammar v1 rules=2 alts=3 digest=8f3a... (16 hex)
//! rule label=0000000000000000 alts=2
//! alt w=3 lit=28 ref=00000000000000aa lit=29
//! alt w=1
//! rule label=00000000000000aa alts=1
//! alt w=2 lit=31
//! ```
//!
//! Rules appear in strictly increasing label order (the canonical
//! order); literal bytes are hex-encoded so arbitrary bytes survive the
//! line-oriented format; the header's rule count, alternative count and
//! digest are all verified on decode, so a torn or hand-edited file is
//! rejected instead of silently generating a different distribution.

use std::fmt;
use std::path::Path;

use pdf_runtime::Digest;

use crate::mine::{Grammar, Label, Sym};

/// A grammar plus per-alternative weights — the unit `evalrunner
/// --grammar-out` writes and `--grammar-in` reads.
///
/// # Example
///
/// ```
/// use pdf_grammar::{Grammar, GrammarFile, Label, Sym, START};
///
/// let mut g = Grammar::default();
/// g.add_alternative(START, vec![Sym::Lit(b"1".to_vec())]);
/// let file = GrammarFile::uniform(g);
/// let back = GrammarFile::decode(&file.encode()).unwrap();
/// assert_eq!(back, file);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrammarFile {
    grammar: Grammar,
    /// One weight vector per rule, parallel to [`Grammar::labels`]
    /// order; `weights[r][a]` weights alternative `a` of rule `r`.
    weights: Vec<Vec<u32>>,
}

/// Errors decoding or assembling a `pdf-grammar v1` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The header line is missing or not `pdf-grammar v1`.
    Header(String),
    /// A record line could not be parsed.
    Parse {
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file's counts or digest do not match its records, or a
    /// weight table does not match the grammar's shape.
    Integrity(String),
    /// The file could not be read or written.
    Io(String),
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Header(m) => write!(f, "bad grammar header: {m}"),
            GrammarError::Parse { line, message } => {
                write!(f, "bad grammar record at line {line}: {message}")
            }
            GrammarError::Integrity(m) => write!(f, "grammar integrity check failed: {m}"),
            GrammarError::Io(m) => write!(f, "grammar io error: {m}"),
        }
    }
}

impl std::error::Error for GrammarError {}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string {s:?}"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.as_bytes().chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit in {s:?}"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit in {s:?}"))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

impl GrammarFile {
    /// Wraps a grammar with uniform weights (`1` per alternative) — the
    /// state before any evolutionary epoch has run. Uniform weights
    /// sample exactly like the recursive [`Generator`](crate::Generator).
    pub fn uniform(grammar: Grammar) -> Self {
        let weights = grammar
            .labels()
            .map(|l| vec![1u32; grammar.alts(l).len()])
            .collect();
        GrammarFile { grammar, weights }
    }

    /// Wraps a grammar with explicit weights.
    ///
    /// # Errors
    ///
    /// [`GrammarError::Integrity`] when the weight table's shape does
    /// not match the grammar (one `u32` per alternative, in
    /// [`Grammar::labels`] order) or any weight is zero — a zero weight
    /// would zero a rule's total and break the sampling contract.
    pub fn with_weights(grammar: Grammar, weights: Vec<Vec<u32>>) -> Result<Self, GrammarError> {
        Self::check_shape(&grammar, &weights)?;
        Ok(GrammarFile { grammar, weights })
    }

    fn check_shape(grammar: &Grammar, weights: &[Vec<u32>]) -> Result<(), GrammarError> {
        if weights.len() != grammar.len() {
            return Err(GrammarError::Integrity(format!(
                "{} weight rows for {} rules",
                weights.len(),
                grammar.len()
            )));
        }
        for (label, row) in grammar.labels().zip(weights) {
            if row.len() != grammar.alts(label).len() {
                return Err(GrammarError::Integrity(format!(
                    "rule {:016x} has {} alternatives but {} weights",
                    label.0,
                    grammar.alts(label).len(),
                    row.len()
                )));
            }
            if row.contains(&0) {
                return Err(GrammarError::Integrity(format!(
                    "rule {:016x} has a zero weight",
                    label.0
                )));
            }
        }
        Ok(())
    }

    /// The wrapped grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Consumes the file into its grammar, dropping the weights.
    pub fn into_grammar(self) -> Grammar {
        self.grammar
    }

    /// The weight rows, parallel to [`Grammar::labels`] order.
    pub fn weights(&self) -> &[Vec<u32>] {
        &self.weights
    }

    /// The weight row of one rule, when it exists.
    pub fn weights_for(&self, label: Label) -> Option<&[u32]> {
        self.grammar
            .labels()
            .position(|l| l == label)
            .map(|i| self.weights[i].as_slice())
    }

    /// Replaces the weights (the write-back path of an evolutionary
    /// epoch).
    ///
    /// # Errors
    ///
    /// Shape errors, as in [`with_weights`](Self::with_weights).
    pub fn set_weights(&mut self, weights: Vec<Vec<u32>>) -> Result<(), GrammarError> {
        Self::check_shape(&self.grammar, &weights)?;
        self.weights = weights;
        Ok(())
    }

    /// Total number of alternatives (= total number of weights).
    pub fn alt_count(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }

    /// FNV-1a digest over the grammar structure *and* the weights, so
    /// two files that drive generation identically digest equally and a
    /// re-weighting epoch changes the digest.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("pdf-grammar-v1");
        d.write_u64(self.grammar.digest());
        d.write_u64(self.weights.len() as u64);
        for row in &self.weights {
            d.write_u64(row.len() as u64);
            for &w in row {
                d.write_u64(u64::from(w));
            }
        }
        d.finish()
    }

    /// Encodes the file as `pdf-grammar v1` text (see the module docs
    /// for the format).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pdf-grammar v1 rules={} alts={} digest={:016x}\n",
            self.grammar.len(),
            self.alt_count(),
            self.digest()
        ));
        for (label, row) in self.grammar.labels().zip(&self.weights) {
            let alts = self.grammar.alts(label);
            out.push_str(&format!(
                "rule label={:016x} alts={}\n",
                label.0,
                alts.len()
            ));
            for (alt, &w) in alts.iter().zip(row) {
                out.push_str(&format!("alt w={w}"));
                for sym in alt {
                    match sym {
                        Sym::Lit(bytes) => out.push_str(&format!(" lit={}", to_hex(bytes))),
                        Sym::Ref(r) => out.push_str(&format!(" ref={:016x}", r.0)),
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Decodes `pdf-grammar v1` text. `decode(encode(f)) == f` for
    /// every file; rule order, per-rule alternative counts, the header
    /// counts and the digest are all verified.
    pub fn decode(text: &str) -> Result<Self, GrammarError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| GrammarError::Header("empty file".to_string()))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("pdf-grammar") || parts.next() != Some("v1") {
            return Err(GrammarError::Header(format!(
                "expected `pdf-grammar v1 ...`, got {header:?}"
            )));
        }
        let mut want_rules: Option<usize> = None;
        let mut want_alts: Option<usize> = None;
        let mut want_digest: Option<u64> = None;
        for part in parts {
            if let Some(n) = part.strip_prefix("rules=") {
                want_rules =
                    Some(n.parse().map_err(|_| {
                        GrammarError::Header(format!("bad rule count in {header:?}"))
                    })?);
            } else if let Some(n) = part.strip_prefix("alts=") {
                want_alts = Some(n.parse().map_err(|_| {
                    GrammarError::Header(format!("bad alternative count in {header:?}"))
                })?);
            } else if let Some(h) = part.strip_prefix("digest=") {
                want_digest = Some(
                    u64::from_str_radix(h, 16)
                        .map_err(|_| GrammarError::Header(format!("bad digest in {header:?}")))?,
                );
            }
        }
        // (label, expected alt count, alternatives with weights)
        type RawRule = (Label, usize, Vec<(Vec<Sym>, u32)>);
        let mut rules: Vec<RawRule> = Vec::new();
        for (i, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let parse_err = |message: String| GrammarError::Parse {
                line: i + 1,
                message,
            };
            if let Some(rest) = line.strip_prefix("rule ") {
                let mut label = None;
                let mut count = None;
                for field in rest.split_whitespace() {
                    if let Some(h) = field.strip_prefix("label=") {
                        label = Some(Label(
                            u64::from_str_radix(h, 16)
                                .map_err(|_| parse_err(format!("bad rule label {h:?}")))?,
                        ));
                    } else if let Some(n) = field.strip_prefix("alts=") {
                        count = Some(
                            n.parse::<usize>()
                                .map_err(|_| parse_err(format!("bad alt count {n:?}")))?,
                        );
                    } else {
                        return Err(parse_err(format!("unknown rule field {field:?}")));
                    }
                }
                let label = label.ok_or_else(|| parse_err("rule without label=".to_string()))?;
                let count = count.ok_or_else(|| parse_err("rule without alts=".to_string()))?;
                if let Some((last, _, _)) = rules.last() {
                    if *last >= label {
                        return Err(parse_err(format!(
                            "rule {:016x} out of order after {:016x} (canonical order is \
                             strictly increasing)",
                            label.0, last.0
                        )));
                    }
                }
                rules.push((label, count, Vec::new()));
            } else if let Some(rest) = line.strip_prefix("alt ") {
                let (_, _, alts) = rules
                    .last_mut()
                    .ok_or_else(|| parse_err("alt record before any rule".to_string()))?;
                let mut fields = rest.split_whitespace();
                let w_field = fields
                    .next()
                    .ok_or_else(|| parse_err("alt without w= field".to_string()))?;
                let w: u32 = w_field
                    .strip_prefix("w=")
                    .ok_or_else(|| parse_err(format!("expected w= first, got {w_field:?}")))?
                    .parse()
                    .map_err(|_| parse_err(format!("bad weight in {w_field:?}")))?;
                if w == 0 {
                    return Err(parse_err("zero weight".to_string()));
                }
                let mut body = Vec::new();
                for field in fields {
                    if let Some(h) = field.strip_prefix("lit=") {
                        let bytes = from_hex(h).map_err(parse_err)?;
                        if bytes.is_empty() {
                            return Err(parse_err("empty literal".to_string()));
                        }
                        body.push(Sym::Lit(bytes));
                    } else if let Some(h) = field.strip_prefix("ref=") {
                        body.push(Sym::Ref(Label(
                            u64::from_str_radix(h, 16)
                                .map_err(|_| parse_err(format!("bad ref label {h:?}")))?,
                        )));
                    } else {
                        return Err(parse_err(format!("unknown alt field {field:?}")));
                    }
                }
                if alts.iter().any(|(existing, _)| *existing == body) {
                    return Err(GrammarError::Integrity("duplicate alternative".to_string()));
                }
                alts.push((body, w));
            } else if line == "alt" {
                // `alt w=1` with trailing whitespace stripped still has
                // its weight field; a bare `alt` lost it
                return Err(parse_err("alt without w= field".to_string()));
            } else {
                return Err(parse_err(format!(
                    "expected `rule ...` or `alt ...`, got {line:?}"
                )));
            }
        }
        let mut grammar = Grammar::default();
        let mut weights = Vec::with_capacity(rules.len());
        for (label, count, alts) in rules {
            if alts.len() != count {
                return Err(GrammarError::Integrity(format!(
                    "rule {:016x} claims {count} alternatives, file holds {}",
                    label.0,
                    alts.len()
                )));
            }
            let mut row = Vec::with_capacity(alts.len());
            for (body, w) in alts {
                grammar.add_alternative(label, body);
                row.push(w);
            }
            weights.push(row);
        }
        let file = GrammarFile { grammar, weights };
        if let Some(n) = want_rules {
            if n != file.grammar.len() {
                return Err(GrammarError::Integrity(format!(
                    "header claims {n} rules, file holds {}",
                    file.grammar.len()
                )));
            }
        }
        if let Some(n) = want_alts {
            if n != file.alt_count() {
                return Err(GrammarError::Integrity(format!(
                    "header claims {n} alternatives, file holds {}",
                    file.alt_count()
                )));
            }
        }
        if let Some(h) = want_digest {
            if h != file.digest() {
                return Err(GrammarError::Integrity(format!(
                    "header digest {:016x} does not match content digest {:016x}",
                    h,
                    file.digest()
                )));
            }
        }
        Ok(file)
    }

    /// Writes [`encode`](Self::encode) to a file.
    ///
    /// # Errors
    ///
    /// [`GrammarError::Io`] on the underlying write error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GrammarError> {
        std::fs::write(path, self.encode()).map_err(|e| GrammarError::Io(e.to_string()))
    }

    /// Reads and [`decode`](Self::decode)s a file.
    ///
    /// # Errors
    ///
    /// [`GrammarError::Io`] when the file cannot be read, plus every
    /// decode error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GrammarError> {
        let text = std::fs::read_to_string(path).map_err(|e| GrammarError::Io(e.to_string()))?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::START;

    fn sample() -> GrammarFile {
        let mut g = Grammar::default();
        let num = Label(0xaa);
        g.add_alternative(
            START,
            vec![
                Sym::Lit(b"(".to_vec()),
                Sym::Ref(num),
                Sym::Lit(b")".to_vec()),
            ],
        );
        g.add_alternative(START, vec![Sym::Ref(num)]);
        g.add_alternative(START, Vec::new());
        g.add_alternative(num, vec![Sym::Lit(b"1".to_vec())]);
        g.add_alternative(num, vec![Sym::Lit(b"\n\x00\xff".to_vec())]);
        GrammarFile::with_weights(g, vec![vec![3, 1, 1], vec![2, 5]]).unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let file = sample();
        let back = GrammarFile::decode(&file.encode()).unwrap();
        assert_eq!(back, file);
        assert_eq!(back.digest(), file.digest());
    }

    #[test]
    fn empty_file_round_trips() {
        let file = GrammarFile::default();
        assert_eq!(GrammarFile::decode(&file.encode()).unwrap(), file);
    }

    #[test]
    fn uniform_weights_match_shape() {
        let file = GrammarFile::uniform(sample().into_grammar());
        assert_eq!(file.weights().len(), 2);
        assert_eq!(file.weights_for(START), Some(&[1u32, 1, 1][..]));
        assert_eq!(file.weights_for(Label(0xaa)), Some(&[1u32, 1][..]));
        assert_eq!(file.weights_for(Label(0xbb)), None);
    }

    #[test]
    fn with_weights_rejects_bad_shapes() {
        let g = sample().into_grammar();
        assert!(matches!(
            GrammarFile::with_weights(g.clone(), vec![vec![1, 1, 1]]),
            Err(GrammarError::Integrity(_))
        ));
        assert!(matches!(
            GrammarFile::with_weights(g.clone(), vec![vec![1, 1], vec![1, 1]]),
            Err(GrammarError::Integrity(_))
        ));
        assert!(matches!(
            GrammarFile::with_weights(g, vec![vec![1, 0, 1], vec![1, 1]]),
            Err(GrammarError::Integrity(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_header() {
        assert!(matches!(
            GrammarFile::decode("pdf-dict v1\n"),
            Err(GrammarError::Header(_))
        ));
        assert!(matches!(
            GrammarFile::decode(""),
            Err(GrammarError::Header(_))
        ));
        assert!(matches!(
            GrammarFile::decode("pdf-grammar v1 rules=x\n"),
            Err(GrammarError::Header(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_records() {
        let head = "pdf-grammar v1\n";
        for bad in [
            "nope\n",
            "alt w=1 lit=31\n",                        // alt before rule
            "rule label=00 alts=1\nalt lit=31\n",      // missing weight
            "rule label=00 alts=1\nalt w=0 lit=31\n",  // zero weight
            "rule label=00 alts=1\nalt w=1 lit=\n",    // empty literal
            "rule label=00 alts=1\nalt w=1 lit=zz\n",  // bad hex
            "rule label=00 alts=1\nalt w=1 lit=abc\n", // odd hex
            "rule label=00 alts=1\nalt w=1 wat=1\n",   // unknown field
            "rule label=zz alts=1\nalt w=1 lit=31\n",  // bad label
            "rule alts=1\nalt w=1 lit=31\n",           // missing label
        ] {
            let text = format!("{head}{bad}");
            assert!(
                matches!(GrammarFile::decode(&text), Err(GrammarError::Parse { .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_out_of_order_and_duplicate_rules() {
        let text = "pdf-grammar v1\n\
                    rule label=00000000000000aa alts=1\nalt w=1 lit=31\n\
                    rule label=0000000000000000 alts=1\nalt w=1 lit=32\n";
        assert!(matches!(
            GrammarFile::decode(text),
            Err(GrammarError::Parse { .. })
        ));
        let text = "pdf-grammar v1\n\
                    rule label=0000000000000000 alts=1\nalt w=1 lit=31\n\
                    rule label=0000000000000000 alts=1\nalt w=1 lit=32\n";
        assert!(matches!(
            GrammarFile::decode(text),
            Err(GrammarError::Parse { .. })
        ));
    }

    #[test]
    fn decode_rejects_duplicate_alternatives() {
        let text = "pdf-grammar v1\n\
                    rule label=0000000000000000 alts=2\n\
                    alt w=1 lit=31\nalt w=2 lit=31\n";
        assert!(matches!(
            GrammarFile::decode(text),
            Err(GrammarError::Integrity(_))
        ));
    }

    #[test]
    fn decode_rejects_count_and_digest_drift() {
        let file = sample();
        let encoded = file.encode();
        // torn file: header plus first rule only
        let torn: String = encoded.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            GrammarFile::decode(&torn),
            Err(GrammarError::Integrity(_))
        ));
        // edited literal: digest no longer matches
        let edited = encoded.replace("lit=31", "lit=32");
        assert!(matches!(
            GrammarFile::decode(&edited),
            Err(GrammarError::Integrity(_))
        ));
        // edited weight: digest covers weights too
        let edited = encoded.replace("w=5", "w=6");
        assert!(matches!(
            GrammarFile::decode(&edited),
            Err(GrammarError::Integrity(_))
        ));
    }

    #[test]
    fn digest_covers_weights() {
        let file = sample();
        let mut other = file.clone();
        other.set_weights(vec![vec![3, 1, 2], vec![2, 5]]).unwrap();
        assert_ne!(file.digest(), other.digest());
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("pdf-grammar-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.grammar");
        let file = sample();
        file.save(&path).unwrap();
        assert_eq!(GrammarFile::load(&path).unwrap(), file);
        std::fs::remove_file(&path).ok();
    }
}

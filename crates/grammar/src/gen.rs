//! Grammar-based generation from a mined grammar.

use std::collections::BTreeMap;

use pdf_runtime::Rng;

use crate::mine::{Grammar, Label, Sym, START};

/// Depth-bounded random expander over a mined [`Grammar`].
///
/// Below the depth bound, alternatives are chosen uniformly (favouring
/// recursion and therefore longer outputs); once the bound is reached,
/// the expander switches to each nonterminal's *cheapest* alternative
/// (fewest references), so expansion always terminates.
///
/// # Example
///
/// ```
/// use pdf_grammar::{mine_corpus, Generator};
/// use pdf_runtime::Rng;
///
/// let subject = pdf_subjects::arith::subject();
/// let corpus = vec![b"1".to_vec(), b"(1)".to_vec(), b"1+2".to_vec()];
/// let grammar = mine_corpus(subject, &corpus);
/// let mut generator = Generator::new(&grammar, 8);
/// let mut rng = Rng::new(7);
/// let input = generator.generate(&mut rng);
/// assert!(!input.is_empty());
/// ```
#[derive(Debug)]
pub struct Generator<'g> {
    grammar: &'g Grammar,
    max_depth: usize,
    cheapest: BTreeMap<Label, usize>,
}

impl<'g> Generator<'g> {
    /// Creates a generator over `grammar` with the given recursion
    /// bound.
    pub fn new(grammar: &'g Grammar, max_depth: usize) -> Self {
        let mut generator = Generator {
            grammar,
            max_depth,
            cheapest: BTreeMap::new(),
        };
        generator.index_cheapest();
        generator
    }

    /// Index of the alternative with the fewest nonterminal references
    /// per label (the termination choice).
    fn index_cheapest(&mut self) {
        let labels: Vec<Label> = std::iter::once(START).chain(self.all_labels()).collect();
        for label in labels {
            let alts = self.grammar.alts(label);
            let best = alts
                .iter()
                .enumerate()
                .min_by_key(|(_, alt)| alt.iter().filter(|s| matches!(s, Sym::Ref(_))).count())
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.cheapest.insert(label, best);
        }
    }

    fn all_labels(&self) -> Vec<Label> {
        let mut labels = Vec::new();
        let mut stack = vec![START];
        while let Some(l) = stack.pop() {
            for alt in self.grammar.alts(l) {
                for sym in alt {
                    if let Sym::Ref(r) = sym {
                        if !labels.contains(r) {
                            labels.push(*r);
                            stack.push(*r);
                        }
                    }
                }
            }
        }
        labels
    }

    /// Generates one input.
    pub fn generate(&mut self, rng: &mut Rng) -> Vec<u8> {
        let mut out = Vec::new();
        self.generate_into(rng, &mut out);
        out
    }

    /// Generates one input into `out`, clearing it first. The buffer's
    /// capacity survives across calls (`ExecArena` conventions), so a
    /// caller reusing one buffer generates allocation-free once the
    /// high-water mark is reached.
    pub fn generate_into(&mut self, rng: &mut Rng, out: &mut Vec<u8>) {
        out.clear();
        self.expand(START, 0, rng, out);
    }

    fn expand(&self, label: Label, depth: usize, rng: &mut Rng, out: &mut Vec<u8>) {
        let alts = self.grammar.alts(label);
        if alts.is_empty() {
            return;
        }
        let index = if depth >= self.max_depth {
            self.cheapest.get(&label).copied().unwrap_or(0)
        } else {
            rng.gen_range(0, alts.len())
        };
        // clone the symbol list index-wise to avoid borrowing issues
        for sym in &alts[index] {
            match sym {
                Sym::Lit(bytes) => out.extend_from_slice(bytes),
                Sym::Ref(r) => self.expand(*r, depth + 1, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::mine_corpus;

    fn arith_generator_corpus() -> Vec<Vec<u8>> {
        [&b"1"[..], b"(1)", b"((2))", b"1+2", b"(1+2)-3"]
            .iter()
            .map(|c| c.to_vec())
            .collect()
    }

    #[test]
    fn generation_terminates_and_is_deterministic() {
        let grammar = mine_corpus(pdf_subjects::arith::subject(), &arith_generator_corpus());
        let mut generator = Generator::new(&grammar, 10);
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(5);
        for _ in 0..50 {
            assert_eq!(generator.generate(&mut r1), generator.generate(&mut r2));
        }
    }

    #[test]
    fn generated_inputs_are_mostly_valid() {
        let subject = pdf_subjects::arith::subject();
        let grammar = mine_corpus(subject, &arith_generator_corpus());
        let mut generator = Generator::new(&grammar, 8);
        let mut rng = Rng::new(3);
        let mut valid = 0;
        const N: usize = 200;
        for _ in 0..N {
            let input = generator.generate(&mut rng);
            if subject.run(&input).valid {
                valid += 1;
            }
        }
        assert!(valid * 2 > N, "only {valid}/{N} generated inputs valid");
    }

    #[test]
    fn recursion_produces_longer_inputs_than_corpus() {
        let subject = pdf_subjects::arith::subject();
        let corpus = arith_generator_corpus();
        let max_corpus_len = corpus.iter().map(Vec::len).max().unwrap();
        let grammar = mine_corpus(subject, &corpus);
        let mut generator = Generator::new(&grammar, 14);
        let mut rng = Rng::new(11);
        let longest = (0..500)
            .map(|_| generator.generate(&mut rng).len())
            .max()
            .unwrap();
        assert!(
            longest > max_corpus_len,
            "longest generated {longest} <= corpus max {max_corpus_len}"
        );
    }

    #[test]
    fn generate_into_matches_generate_and_reuses_capacity() {
        let grammar = mine_corpus(pdf_subjects::arith::subject(), &arith_generator_corpus());
        let mut g1 = Generator::new(&grammar, 10);
        let mut g2 = Generator::new(&grammar, 10);
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        let mut buf = Vec::new();
        let mut prev_cap = 0;
        for _ in 0..50 {
            g1.generate_into(&mut r1, &mut buf);
            assert_eq!(buf, g2.generate(&mut r2));
            // capacity never shrinks: the buffer is cleared, not dropped
            assert!(buf.capacity() >= prev_cap);
            prev_cap = buf.capacity();
        }
        assert_eq!(r1.draw_count(), r2.draw_count());
    }

    #[test]
    fn depth_zero_uses_cheapest_alternatives() {
        let grammar = mine_corpus(pdf_subjects::arith::subject(), &arith_generator_corpus());
        let mut generator = Generator::new(&grammar, 0);
        let mut rng = Rng::new(1);
        // all expansions pick the cheapest alternative: output fixed
        let a = generator.generate(&mut rng);
        let b = generator.generate(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_grammar_generates_empty() {
        let grammar = Grammar::default();
        let mut generator = Generator::new(&grammar, 5);
        let mut rng = Rng::new(1);
        assert!(generator.generate(&mut rng).is_empty());
    }
}

//! AFL's mutation stages: deterministic passes, havoc and splicing.

use pdf_runtime::Rng;

/// AFL's "interesting" byte values.
const INTERESTING8: [u8; 9] = [0, 1, 16, 32, 64, 100, 127, 128, 255];

/// The havoc mutation operators, mirroring AFL's repertoire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Insert a dictionary token at a random position (AFL's `-x`).
    InsertDict,
    /// Overwrite bytes with a dictionary token.
    OverwriteDict,
    /// Flip one random bit.
    BitFlip,
    /// Overwrite a byte with a random value.
    RandomByte,
    /// Add or subtract a small amount from a byte.
    Arith,
    /// Overwrite a byte with an "interesting" value.
    Interesting,
    /// Delete a random block.
    DeleteBlock,
    /// Duplicate a random block.
    DupBlock,
    /// Insert a random byte.
    InsertByte,
    /// Overwrite a block with a repeated byte.
    OverwriteBlock,
}

const ALL_OPS: [MutationOp; 8] = [
    MutationOp::BitFlip,
    MutationOp::RandomByte,
    MutationOp::Arith,
    MutationOp::Interesting,
    MutationOp::DeleteBlock,
    MutationOp::DupBlock,
    MutationOp::InsertByte,
    MutationOp::OverwriteBlock,
];

const ALL_OPS_DICT: [MutationOp; 10] = [
    MutationOp::BitFlip,
    MutationOp::RandomByte,
    MutationOp::Arith,
    MutationOp::Interesting,
    MutationOp::DeleteBlock,
    MutationOp::DupBlock,
    MutationOp::InsertByte,
    MutationOp::OverwriteBlock,
    MutationOp::InsertDict,
    MutationOp::OverwriteDict,
];

/// Applies one random havoc operator in place.
pub fn apply_op(op: MutationOp, input: &mut Vec<u8>, dict: &[Vec<u8>], rng: &mut Rng) {
    match op {
        MutationOp::InsertDict => {
            if !dict.is_empty() {
                let token = rng.pick(dict).clone();
                let at = rng.gen_range(0, input.len() + 1);
                for (k, b) in token.into_iter().enumerate() {
                    input.insert(at + k, b);
                }
            }
        }
        MutationOp::OverwriteDict => {
            if !dict.is_empty() && !input.is_empty() {
                let token = rng.pick(dict).clone();
                let at = rng.gen_range(0, input.len());
                for (k, b) in token.into_iter().enumerate() {
                    if at + k < input.len() {
                        input[at + k] = b;
                    } else {
                        input.push(b);
                    }
                }
            }
        }
        MutationOp::BitFlip => {
            if !input.is_empty() {
                let i = rng.gen_range(0, input.len());
                input[i] ^= 1 << rng.gen_range(0, 8);
            }
        }
        MutationOp::RandomByte => {
            if !input.is_empty() {
                let i = rng.gen_range(0, input.len());
                input[i] = rng.byte_any();
            }
        }
        MutationOp::Arith => {
            if !input.is_empty() {
                let i = rng.gen_range(0, input.len());
                let delta = rng.gen_range(1, 36) as u8;
                input[i] = if rng.chance(1, 2) {
                    input[i].wrapping_add(delta)
                } else {
                    input[i].wrapping_sub(delta)
                };
            }
        }
        MutationOp::Interesting => {
            if !input.is_empty() {
                let i = rng.gen_range(0, input.len());
                input[i] = *rng.pick(&INTERESTING8);
            }
        }
        MutationOp::DeleteBlock => {
            if input.len() >= 2 {
                let start = rng.gen_range(0, input.len());
                let len = rng.gen_range(1, input.len() - start + 1);
                input.drain(start..start + len);
            }
        }
        MutationOp::DupBlock => {
            if !input.is_empty() {
                let start = rng.gen_range(0, input.len());
                let len = rng.gen_range(1, (input.len() - start).min(8) + 1);
                let block: Vec<u8> = input[start..start + len].to_vec();
                let at = rng.gen_range(0, input.len() + 1);
                for (k, b) in block.into_iter().enumerate() {
                    input.insert(at + k, b);
                }
            }
        }
        MutationOp::InsertByte => {
            let at = rng.gen_range(0, input.len() + 1);
            input.insert(at, rng.byte_any());
        }
        MutationOp::OverwriteBlock => {
            if !input.is_empty() {
                let start = rng.gen_range(0, input.len());
                let len = rng.gen_range(1, (input.len() - start).min(8) + 1);
                let b = rng.byte_any();
                for slot in &mut input[start..start + len] {
                    *slot = b;
                }
            }
        }
    }
}

/// AFL's havoc stage: `stack` random operators applied in sequence.
/// Dictionary operators join the rotation only when `dict` is non-empty
/// (AFL with `-x`).
pub fn havoc(base: &[u8], stack: u32, max_len: usize, dict: &[Vec<u8>], rng: &mut Rng) -> Vec<u8> {
    let mut out = base.to_vec();
    let n = 1 + rng.gen_range(0, stack as usize);
    for _ in 0..n {
        let op = if dict.is_empty() {
            *rng.pick(&ALL_OPS)
        } else {
            *rng.pick(&ALL_OPS_DICT)
        };
        apply_op(op, &mut out, dict, rng);
        if out.len() > max_len {
            out.truncate(max_len);
        }
    }
    out
}

/// Token-preserving havoc: the plain havoc stack first, then exactly one
/// dictionary operator *last*, so the token survives into the generated
/// case instead of being shredded by later byte-level mutations (the
/// `preserving_tokens` schedule of LibAFL-style token-discovery
/// fuzzers). With an empty dictionary this is plain [`havoc`].
///
/// ```
/// use pdf_afl::havoc_preserving;
/// use pdf_runtime::Rng;
///
/// let dict = vec![b"while".to_vec()];
/// let mut rng = Rng::new(7);
/// let mut hit = false;
/// for _ in 0..50 {
///     let out = havoc_preserving(b"x = 1;", 6, 64, &dict, &mut rng);
///     hit |= out.windows(5).any(|w| w == b"while");
/// }
/// assert!(hit, "the final dictionary stage plants whole tokens");
/// ```
pub fn havoc_preserving(
    base: &[u8],
    stack: u32,
    max_len: usize,
    dict: &[Vec<u8>],
    rng: &mut Rng,
) -> Vec<u8> {
    // byte-level stack with the dictionary withheld from the rotation
    let mut out = havoc(base, stack, max_len, &[], rng);
    if !dict.is_empty() {
        let op = if rng.chance(1, 2) {
            MutationOp::InsertDict
        } else {
            MutationOp::OverwriteDict
        };
        apply_op(op, &mut out, dict, rng);
        if out.len() > max_len {
            out.truncate(max_len);
        }
    }
    out
}

/// AFL's splice stage: the head of one input glued to the tail of
/// another.
pub fn splice(a: &[u8], b: &[u8], rng: &mut Rng) -> Vec<u8> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    let cut_a = rng.gen_range(0, a.len());
    let cut_b = rng.gen_range(0, b.len());
    let mut out = a[..cut_a].to_vec();
    out.extend_from_slice(&b[cut_b..]);
    out
}

/// The deterministic stages AFL runs once per queue entry: walking bit
/// flips, byte flips, arithmetic and interesting values. Returns the
/// mutated cases (bounded for long inputs, as AFL's effector map would).
pub fn deterministic_cases(base: &[u8]) -> Vec<Vec<u8>> {
    let mut cases = Vec::new();
    let limit = base.len().min(64); // effector-style bound
                                    // walking bit flips
    for i in 0..limit {
        for bit in 0..8 {
            let mut c = base.to_vec();
            c[i] ^= 1 << bit;
            cases.push(c);
        }
    }
    // byte flips
    for i in 0..limit {
        let mut c = base.to_vec();
        c[i] ^= 0xff;
        cases.push(c);
    }
    // arithmetic ±1..8
    for i in 0..limit {
        for d in 1..=8u8 {
            let mut c = base.to_vec();
            c[i] = c[i].wrapping_add(d);
            cases.push(c);
            let mut c = base.to_vec();
            c[i] = c[i].wrapping_sub(d);
            cases.push(c);
        }
    }
    // interesting values
    for i in 0..limit {
        for &v in &INTERESTING8 {
            let mut c = base.to_vec();
            c[i] = v;
            cases.push(c);
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn havoc_is_deterministic_per_seed() {
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(5);
        assert_eq!(
            havoc(b"hello", 6, 64, &[], &mut r1),
            havoc(b"hello", 6, 64, &[], &mut r2)
        );
    }

    #[test]
    fn havoc_respects_max_len() {
        let mut rng = Rng::new(1);
        for _ in 0..200 {
            let out = havoc(b"0123456789", 8, 12, &[], &mut rng);
            assert!(out.len() <= 12 + 1, "len {}", out.len());
        }
    }

    #[test]
    fn havoc_on_empty_input_can_grow() {
        let mut rng = Rng::new(2);
        let mut grew = false;
        for _ in 0..100 {
            if !havoc(b"", 6, 64, &[], &mut rng).is_empty() {
                grew = true;
                break;
            }
        }
        assert!(grew, "insert op never fired on empty input");
    }

    #[test]
    fn splice_combines_head_and_tail() {
        let mut rng = Rng::new(3);
        let out = splice(b"aaaa", b"bbbb", &mut rng);
        assert!(!out.is_empty());
        assert!(out.iter().all(|&b| b == b'a' || b == b'b'));
    }

    #[test]
    fn splice_with_empty_sides() {
        let mut rng = Rng::new(4);
        assert_eq!(splice(b"", b"xy", &mut rng), b"xy".to_vec());
        assert_eq!(splice(b"xy", b"", &mut rng), b"xy".to_vec());
    }

    #[test]
    fn deterministic_cases_cover_all_positions() {
        let cases = deterministic_cases(b"ab");
        // every case differs from the base
        assert!(cases
            .iter()
            .all(|c| c != b"ab" || c.len() != 2 || c != &b"ab".to_vec()));
        // bit flips alone: 2 bytes * 8 bits
        assert!(cases.len() >= 16);
        // a single bit flip of 'a' (0x61) to 'c' (0x63) must be present
        assert!(cases.contains(&b"cb".to_vec()));
    }

    #[test]
    fn deterministic_cases_bounded_for_long_inputs() {
        let long = vec![b'x'; 10_000];
        let cases = deterministic_cases(&long);
        assert!(cases.len() < 64 * 40);
    }

    #[test]
    fn all_ops_run_without_panicking() {
        let mut rng = Rng::new(9);
        let dict = vec![b"true".to_vec()];
        for op in ALL_OPS_DICT {
            for base in [&b""[..], b"a", b"hello world"] {
                let mut input = base.to_vec();
                apply_op(op, &mut input, &dict, &mut rng);
            }
        }
    }

    #[test]
    fn dictionary_tokens_get_inserted() {
        let mut rng = Rng::new(21);
        let dict = vec![b"while".to_vec()];
        let mut hit = false;
        for _ in 0..300 {
            let out = havoc(b"xx", 8, 64, &dict, &mut rng);
            if out.windows(5).any(|w| w == b"while") {
                hit = true;
                break;
            }
        }
        assert!(hit, "dictionary token never inserted");
    }

    #[test]
    fn preserving_havoc_ends_with_a_whole_token() {
        // the dictionary stage runs last, so cases carry intact tokens
        // far more reliably than the mixed rotation
        let dict = vec![b"instanceof".to_vec()];
        let mut rng = Rng::new(17);
        let mut intact = 0;
        const ROUNDS: usize = 200;
        for _ in 0..ROUNDS {
            let out = havoc_preserving(b"a+b", 6, 64, &dict, &mut rng);
            if out.windows(10).any(|w| w == b"instanceof") {
                intact += 1;
            }
        }
        assert!(
            intact > ROUNDS / 4,
            "only {intact}/{ROUNDS} cases kept the token intact"
        );
    }

    #[test]
    fn preserving_havoc_with_empty_dict_is_plain_havoc() {
        let mut r1 = Rng::new(41);
        let mut r2 = Rng::new(41);
        for _ in 0..50 {
            assert_eq!(
                havoc_preserving(b"abc", 6, 64, &[], &mut r1),
                havoc(b"abc", 6, 64, &[], &mut r2)
            );
        }
    }

    #[test]
    fn preserving_havoc_is_deterministic_per_seed() {
        let dict = vec![b"null".to_vec(), b"true".to_vec()];
        let mut r1 = Rng::new(23);
        let mut r2 = Rng::new(23);
        for _ in 0..50 {
            assert_eq!(
                havoc_preserving(b"xy", 4, 32, &dict, &mut r1),
                havoc_preserving(b"xy", 4, 32, &dict, &mut r2)
            );
        }
    }

    #[test]
    fn empty_dictionary_never_picks_dict_ops() {
        // with an empty dict, havoc must be identical to the plain rotation
        let mut r1 = Rng::new(33);
        let mut r2 = Rng::new(33);
        for _ in 0..50 {
            assert_eq!(
                havoc(b"abc", 6, 64, &[], &mut r1),
                havoc(b"abc", 6, 64, &[], &mut r2)
            );
        }
    }
}

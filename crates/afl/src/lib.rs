//! An AFL-style coverage-guided mutational fuzzer — the "lexical"
//! baseline of the pFuzzer evaluation (Section 5).
//!
//! Reproduces the behavioural signature of AFL that the paper's
//! comparison rests on:
//!
//! - an **edge-coverage bitmap** with hit-count bucketing; inputs that
//!   light up new bitmap bits enter the seed queue,
//! - **deterministic stages** (bit flips, byte flips, arithmetic,
//!   interesting values) followed by **havoc** (stacked random
//!   mutations) and **splicing**,
//! - no comparison feedback of any kind: AFL sees coverage only, which
//!   is exactly why it finds `{`/`+`/`<` quickly but virtually never
//!   composes `while` (1 : 26⁵, as the paper computes),
//! - seeded with a single space character, the paper's Section 5.1
//!   setup.
//!
//! # Example
//!
//! ```
//! use pdf_afl::{AflConfig, AflFuzzer};
//!
//! let subject = pdf_subjects::ini::subject();
//! let config = AflConfig { seed: 1, max_execs: 2_000, ..AflConfig::default() };
//! let report = AflFuzzer::new(subject, config).run();
//! assert!(report.execs <= 2_000);
//! // ini accepts almost anything, so AFL finds valid inputs fast
//! assert!(!report.valid_inputs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod mutate;

pub use bitmap::CoverageBitmap;
pub use mutate::{havoc, havoc_preserving, splice, MutationOp};

use pdf_runtime::{BranchSet, CovExecution, Digest, PhaseClock, Rng, RunStats, Subject};

/// AFL driver configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AflConfig {
    /// RNG seed; equal seeds give identical campaigns.
    pub seed: u64,
    /// Execution budget (number of subject runs).
    pub max_execs: u64,
    /// Initial seed inputs. Defaults to a single space — the paper gives
    /// AFL "one space character as starting point".
    pub seeds: Vec<Vec<u8>>,
    /// Stacked mutations per havoc case.
    pub havoc_stack: u32,
    /// Havoc cases generated per queue entry per cycle.
    pub havoc_cases: u32,
    /// Run the deterministic stages on fresh queue entries.
    pub deterministic: bool,
    /// Generated inputs are truncated to this length.
    pub max_input_len: usize,
    /// Dictionary tokens (AFL's `-x`): when non-empty, havoc also
    /// inserts and overwrites with these tokens. Used by the ablation
    /// that revisits the paper's AFL-CTP discussion (Section 6).
    pub dictionary: Vec<Vec<u8>>,
    /// Schedule dictionary mutations *last* in each havoc case
    /// ([`havoc_preserving`]) instead of mixing them into the rotation,
    /// so planted tokens survive the byte-level stack (the
    /// `preserving_tokens` preset of token-discovery fuzzers). No effect
    /// with an empty dictionary.
    pub preserve_tokens: bool,
}

impl Default for AflConfig {
    fn default() -> Self {
        AflConfig {
            seed: 0,
            max_execs: 100_000,
            seeds: vec![b" ".to_vec()],
            havoc_stack: 6,
            havoc_cases: 64,
            deterministic: true,
            max_input_len: 256,
            dictionary: Vec::new(),
            preserve_tokens: false,
        }
    }
}

impl AflConfig {
    /// 64-bit digest of the campaign-shaping fields. The RNG seed and
    /// the execution budget are excluded: a record/replay journal cell
    /// stores those separately, and the hash identifies the
    /// *configuration* a recording ran under so drift is detected.
    pub fn config_hash(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("afl-config-v1");
        d.write_u64(self.seeds.len() as u64);
        for s in &self.seeds {
            d.write_bytes(s);
        }
        d.write_u64(u64::from(self.havoc_stack));
        d.write_u64(u64::from(self.havoc_cases));
        d.write_u8(u8::from(self.deterministic));
        d.write_u64(self.max_input_len as u64);
        d.write_u64(self.dictionary.len() as u64);
        for t in &self.dictionary {
            d.write_bytes(t);
        }
        // Folded in only when set, so hashes recorded before the
        // preserving schedule existed keep verifying byte-for-byte.
        if self.preserve_tokens {
            d.write_str("preserve-tokens");
            d.write_u8(1);
        }
        d.finish()
    }
}

/// The outcome of an AFL campaign.
#[derive(Debug, Clone)]
pub struct AflReport {
    /// Valid inputs that covered new branches, in discovery order (the
    /// paper determines AFL's valid inputs by exit code afterwards; we
    /// record them online, deduplicated by coverage like KLEE's
    /// only-new-coverage output mode to keep the set manageable).
    pub valid_inputs: Vec<Vec<u8>>,
    /// Execution count at which each valid input was found (parallel to
    /// `valid_inputs`).
    pub valid_found_at: Vec<u64>,
    /// Subject executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs.
    pub valid_branches: BranchSet,
    /// Branches covered by any run.
    pub all_branches: BranchSet,
    /// Queue entries discovered (AFL's "paths").
    pub paths: usize,
    /// Total count of valid executions (including ones that added no
    /// coverage) — AFL generates "1,000 times more inputs than pFuzzer".
    pub valid_execs: u64,
    /// Observability counters and timings for the campaign.
    pub stats: RunStats,
}

/// The AFL-style fuzzer.
#[derive(Debug)]
pub struct AflFuzzer {
    subject: Subject,
    cfg: AflConfig,
    rng: Rng,
}

impl AflFuzzer {
    /// Creates a fuzzer for `subject`.
    pub fn new(subject: Subject, cfg: AflConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        AflFuzzer { subject, cfg, rng }
    }

    /// Runs the campaign to completion.
    pub fn run(mut self) -> AflReport {
        let _span = pdf_obs::span("afl.campaign");
        let mut report = AflReport {
            valid_inputs: Vec::new(),
            valid_found_at: Vec::new(),
            execs: 0,
            valid_branches: BranchSet::new(),
            all_branches: BranchSet::new(),
            paths: 0,
            valid_execs: 0,
            stats: RunStats::default(),
        };
        let mut clock = PhaseClock::new();
        let mut bitmap = CoverageBitmap::new();
        let mut queue: Vec<Vec<u8>> = Vec::new();

        // seed corpus
        for seed in self.cfg.seeds.clone() {
            if report.execs >= self.cfg.max_execs {
                break;
            }
            let exec = self.execute(&mut report, &seed, &mut clock, "seeds");
            if bitmap.record_branches(exec.cov.branch_seq.iter().copied()) {
                queue.push(seed);
                report.paths += 1;
            } else if queue.is_empty() {
                // keep at least one seed so mutation has a base
                queue.push(seed);
            }
        }

        let mut det_done = 0usize; // deterministic stages run for queue[..det_done]
        let mut cursor = 0usize;
        while report.execs < self.cfg.max_execs && !queue.is_empty() {
            pdf_obs::record(|m| {
                let depth = queue.len() as u64;
                m.queue_depth.observe(depth);
                m.queue_depth_now.set(depth);
            });
            // deterministic stages for entries that have not had them
            if self.cfg.deterministic && det_done < queue.len() {
                let base = queue[det_done].clone();
                det_done += 1;
                for case in mutate::deterministic_cases(&base) {
                    if report.execs >= self.cfg.max_execs {
                        break;
                    }
                    self.try_case(
                        case,
                        &mut report,
                        &mut bitmap,
                        &mut queue,
                        &mut clock,
                        "deterministic",
                    );
                }
                continue;
            }
            // havoc + splice over the queue, round robin
            let base = queue[cursor % queue.len()].clone();
            cursor += 1;
            for _ in 0..self.cfg.havoc_cases {
                if report.execs >= self.cfg.max_execs {
                    break;
                }
                let case = self.havoc_case(&base);
                self.try_case(
                    case,
                    &mut report,
                    &mut bitmap,
                    &mut queue,
                    &mut clock,
                    "havoc",
                );
            }
            if queue.len() >= 2 && report.execs < self.cfg.max_execs {
                let other = queue[self.rng.gen_range(0, queue.len())].clone();
                let case = splice(&base, &other, &mut self.rng);
                let case = self.havoc_case(&case);
                self.try_case(
                    case,
                    &mut report,
                    &mut bitmap,
                    &mut queue,
                    &mut clock,
                    "havoc",
                );
            }
        }
        report.stats.executions = report.execs;
        report.stats.valid_inputs = report.valid_inputs.len() as u64;
        report.stats.queue_depth = queue.len();
        // AFL's mutation engine draws from the RNG far too often to
        // journal every byte; a draw count plus rolling stream digest is
        // enough to verify a replay consumed the identical stream.
        report.stats.decisions = self.rng.draw_count();
        report.stats.decision_digest = self.rng.stream_digest();
        let (wall, phases) = clock.finish();
        report.stats.wall_secs = wall;
        report.stats.phases = phases;
        report
    }

    /// One havoc case under the configured schedule: the mixed rotation
    /// by default, the token-preserving schedule (dictionary operator
    /// last) when [`AflConfig::preserve_tokens`] is set.
    fn havoc_case(&mut self, base: &[u8]) -> Vec<u8> {
        if self.cfg.preserve_tokens && !self.cfg.dictionary.is_empty() {
            pdf_obs::record(|m| m.tokens_dict_mutations.inc());
            mutate::havoc_preserving(
                base,
                self.cfg.havoc_stack,
                self.cfg.max_input_len,
                &self.cfg.dictionary,
                &mut self.rng,
            )
        } else {
            havoc(
                base,
                self.cfg.havoc_stack,
                self.cfg.max_input_len,
                &self.cfg.dictionary,
                &mut self.rng,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_case(
        &mut self,
        mut case: Vec<u8>,
        report: &mut AflReport,
        bitmap: &mut CoverageBitmap,
        queue: &mut Vec<Vec<u8>>,
        clock: &mut PhaseClock,
        phase: &'static str,
    ) {
        case.truncate(self.cfg.max_input_len);
        let exec = self.execute(report, &case, clock, phase);
        if bitmap.record_branches(exec.cov.branch_seq.iter().copied()) {
            queue.push(case);
            report.paths += 1;
        }
    }

    fn execute(
        &mut self,
        report: &mut AflReport,
        input: &[u8],
        clock: &mut PhaseClock,
        phase: &'static str,
    ) -> CovExecution {
        report.execs += 1;
        let subject = &self.subject;
        let exec = clock.time(phase, || subject.run_coverage(input));
        report.stats.events += exec.cov.events;
        if exec.verdict.is_hang() {
            report.stats.hangs += 1;
        }
        if exec.verdict.is_crash() {
            report.stats.crashes += 1;
        }
        report.all_branches.union_with(&exec.cov.branches);
        if exec.valid {
            report.valid_execs += 1;
            let new_branches = exec.cov.branches.difference_size(&report.valid_branches);
            if new_branches > 0 {
                pdf_obs::record(|m| {
                    m.valid_inputs.inc();
                    m.new_branches.add(new_branches as u64);
                });
                report.valid_branches.union_with(&exec.cov.branches);
                report.valid_inputs.push(input.to_vec());
                report.valid_found_at.push(report.execs);
            }
        }
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(subject: Subject, seed: u64, execs: u64) -> AflReport {
        let cfg = AflConfig {
            seed,
            max_execs: execs,
            ..AflConfig::default()
        };
        AflFuzzer::new(subject, cfg).run()
    }

    #[test]
    fn finds_valid_ini_inputs_quickly() {
        let report = run(pdf_subjects::ini::subject(), 1, 2_000);
        assert!(!report.valid_inputs.is_empty());
        let subject = pdf_subjects::ini::subject();
        for input in &report.valid_inputs {
            assert!(subject.run(input).valid);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = run(pdf_subjects::csv::subject(), 3, 1_500);
        let b = run(pdf_subjects::csv::subject(), 3, 1_500);
        assert_eq!(a.valid_inputs, b.valid_inputs);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn respects_budget() {
        let report = run(pdf_subjects::json::subject(), 2, 500);
        assert!(report.execs <= 500);
    }

    #[test]
    fn covers_shallow_json_punctuation() {
        // AFL excels at single characters: digits and brackets appear fast
        let report = run(pdf_subjects::json::subject(), 5, 15_000);
        let corpus: Vec<String> = report
            .valid_inputs
            .iter()
            .map(|i| String::from_utf8_lossy(i).into_owned())
            .collect();
        let joined = corpus.join("\n");
        assert!(
            joined.contains('[')
                || joined.contains('{')
                || joined.chars().any(|c| c.is_ascii_digit()),
            "no shallow JSON structure found: {corpus:?}"
        );
    }

    #[test]
    fn decision_stream_is_reproducible() {
        let a = run(pdf_subjects::csv::subject(), 9, 1_500);
        let b = run(pdf_subjects::csv::subject(), 9, 1_500);
        assert!(a.stats.decisions > 0);
        assert_eq!(a.stats.decisions, b.stats.decisions);
        assert_eq!(a.stats.decision_digest, b.stats.decision_digest);
        let c = run(pdf_subjects::csv::subject(), 10, 1_500);
        assert_ne!(
            (a.stats.decisions, a.stats.decision_digest),
            (c.stats.decisions, c.stats.decision_digest),
            "different seeds should draw different streams"
        );
    }

    #[test]
    fn config_hash_ignores_seed_and_budget() {
        let base = AflConfig::default();
        let reseeded = AflConfig {
            seed: 99,
            max_execs: 1,
            ..base.clone()
        };
        assert_eq!(base.config_hash(), reseeded.config_hash());
        let reshaped = AflConfig {
            havoc_stack: base.havoc_stack + 1,
            ..base.clone()
        };
        assert_ne!(base.config_hash(), reshaped.config_hash());
        let with_dict = AflConfig {
            dictionary: vec![b"while".to_vec()],
            ..base.clone()
        };
        assert_ne!(base.config_hash(), with_dict.config_hash());
        let preserving = AflConfig {
            preserve_tokens: true,
            ..with_dict.clone()
        };
        assert_ne!(with_dict.config_hash(), preserving.config_hash());
    }

    #[test]
    fn preserving_campaign_is_deterministic_per_seed() {
        let cfg = AflConfig {
            seed: 13,
            max_execs: 1_500,
            dictionary: vec![b"true".to_vec(), b"null".to_vec()],
            preserve_tokens: true,
            ..AflConfig::default()
        };
        let a = AflFuzzer::new(pdf_subjects::json::subject(), cfg.clone()).run();
        let b = AflFuzzer::new(pdf_subjects::json::subject(), cfg).run();
        assert_eq!(a.valid_inputs, b.valid_inputs);
        assert_eq!(a.stats.decision_digest, b.stats.decision_digest);
    }

    #[test]
    fn preserving_schedule_finds_json_keywords() {
        // the point of the preserving schedule: whole keywords survive
        // into cases, so a keyword-bearing valid input shows up inside a
        // budget where the mixed rotation rarely composes one
        let cfg = AflConfig {
            seed: 2,
            max_execs: 20_000,
            dictionary: vec![b"true".to_vec(), b"false".to_vec(), b"null".to_vec()],
            preserve_tokens: true,
            ..AflConfig::default()
        };
        let report = AflFuzzer::new(pdf_subjects::json::subject(), cfg).run();
        let joined: Vec<String> = report
            .valid_inputs
            .iter()
            .map(|i| String::from_utf8_lossy(i).into_owned())
            .collect();
        assert!(
            joined
                .iter()
                .any(|s| s.contains("true") || s.contains("false") || s.contains("null")),
            "no keyword-bearing valid input: {joined:?}"
        );
    }

    #[test]
    fn valid_execs_counts_all_valid_runs() {
        let report = run(pdf_subjects::csv::subject(), 7, 2_000);
        assert!(report.valid_execs >= report.valid_inputs.len() as u64);
    }

    #[test]
    fn paths_grow_with_coverage() {
        let report = run(pdf_subjects::json::subject(), 9, 5_000);
        assert!(report.paths >= 1);
    }

    #[test]
    fn stats_are_populated() {
        let report = run(pdf_subjects::json::subject(), 11, 2_000);
        assert_eq!(report.stats.executions, report.execs);
        assert!(report.stats.events > 0);
        assert!(report.stats.wall_secs > 0.0);
        assert!(report
            .stats
            .phases
            .iter()
            .any(|(name, _)| *name == "havoc" || *name == "deterministic"));
    }

    #[test]
    fn chaos_hangs_and_crashes_are_counted() {
        use pdf_subjects::chaos::{self, ChaosConfig};
        let cfg = ChaosConfig {
            panic_per_mille: 500,
            hang_per_mille: 500,
            ..ChaosConfig::silent(11)
        };
        let subject = chaos::wrap(pdf_subjects::ini::subject(), cfg);
        let report = run(subject, 1, 300);
        assert!(report.stats.crashes > 0, "some executions crash");
        assert!(report.stats.hangs > 0, "some executions hang");
        assert_eq!(report.stats.hangs + report.stats.crashes, report.execs);
    }
}

//! AFL's edge-coverage bitmap with hit-count bucketing.

use pdf_runtime::{BranchId, Event, ExecLog};

/// Bitmap size (AFL uses 64 KiB).
pub const MAP_SIZE: usize = 1 << 16;

/// The classic AFL coverage map: edges between consecutive branch
/// events, with hit counts classified into the 8 AFL buckets. An input
/// is "interesting" when it sets a (edge, bucket) bit never seen before.
///
/// # Example
///
/// ```
/// use pdf_afl::CoverageBitmap;
///
/// let subject = pdf_subjects::arith::subject();
/// let mut map = CoverageBitmap::new();
/// let first = subject.run(b"1");
/// assert!(map.record(&first.log));   // new edges
/// let again = subject.run(b"1");
/// assert!(!map.record(&again.log));  // nothing new
/// ```
#[derive(Debug, Clone)]
pub struct CoverageBitmap {
    virgin: Vec<u8>,
}

impl Default for CoverageBitmap {
    fn default() -> Self {
        Self::new()
    }
}

/// AFL's hit-count bucketing: 1, 2, 3, 4–7, 8–15, 16–31, 32–127, 128+.
fn bucket(count: u32) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

impl CoverageBitmap {
    /// Creates an empty (all-virgin) map.
    pub fn new() -> Self {
        CoverageBitmap {
            virgin: vec![0; MAP_SIZE],
        }
    }

    /// Records an execution's edge profile; returns `true` if any new
    /// (edge, bucket) bit appeared.
    pub fn record(&mut self, log: &ExecLog) -> bool {
        self.record_branches(log.events.iter().filter_map(|e| match e {
            Event::Branch(b, _) => Some(*b),
            _ => None,
        }))
    }

    /// Records an edge profile from a branch sequence (as produced by
    /// the streaming [`CoverageOnly`](pdf_runtime::CoverageOnly) sink);
    /// returns `true` if any new (edge, bucket) bit appeared.
    pub fn record_branches(&mut self, seq: impl IntoIterator<Item = BranchId>) -> bool {
        let mut local = std::collections::HashMap::new();
        let mut prev: u64 = 0;
        for b in seq {
            let cur = b.site.0 ^ u64::from(b.outcome);
            let edge = ((cur ^ (prev >> 1)) % MAP_SIZE as u64) as usize;
            *local.entry(edge).or_insert(0u32) += 1;
            prev = cur;
        }
        let mut interesting = false;
        for (edge, count) in local {
            let b = bucket(count);
            if self.virgin[edge] & b != b {
                self.virgin[edge] |= b;
                interesting = true;
            }
        }
        interesting
    }

    /// Number of bitmap bytes with at least one bit set (AFL's map
    /// density numerator).
    pub fn covered_bytes(&self) -> usize {
        self.virgin.iter().filter(|&&b| b != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_runtime::{BranchId, SiteId};

    fn log_of(sites: &[(u64, bool)]) -> ExecLog {
        ExecLog {
            events: sites
                .iter()
                .map(|&(s, o)| Event::Branch(BranchId::new(SiteId::from_raw(s), o), 0))
                .collect(),
            input_len: 0,
        }
    }

    #[test]
    fn first_run_is_interesting() {
        let mut m = CoverageBitmap::new();
        assert!(m.record(&log_of(&[(1, true), (2, true)])));
    }

    #[test]
    fn identical_run_is_boring() {
        let mut m = CoverageBitmap::new();
        let log = log_of(&[(1, true), (2, true)]);
        assert!(m.record(&log));
        assert!(!m.record(&log));
    }

    #[test]
    fn new_edge_is_interesting() {
        let mut m = CoverageBitmap::new();
        assert!(m.record(&log_of(&[(1, true), (2, true)])));
        assert!(m.record(&log_of(&[(1, true), (3, true)])));
    }

    #[test]
    fn changed_hit_count_bucket_is_interesting() {
        let mut m = CoverageBitmap::new();
        assert!(m.record(&log_of(&[(1, true), (2, true)])));
        // same edges, but the 1→2 edge now fires twice (bucket 1 → 2)
        assert!(m.record(&log_of(&[(1, true), (2, true), (1, true), (2, true)])));
    }

    #[test]
    fn branch_outcome_distinguishes_edges() {
        let mut m = CoverageBitmap::new();
        assert!(m.record(&log_of(&[(1, true)])));
        assert!(m.record(&log_of(&[(1, false)])));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 4);
        assert_eq!(bucket(4), 8);
        assert_eq!(bucket(7), 8);
        assert_eq!(bucket(8), 16);
        assert_eq!(bucket(16), 32);
        assert_eq!(bucket(32), 64);
        assert_eq!(bucket(127), 64);
        assert_eq!(bucket(128), 128);
        assert_eq!(bucket(100_000), 128);
    }

    #[test]
    fn record_and_record_branches_agree() {
        let log = log_of(&[(1, true), (2, false), (1, true), (7, true)]);
        let seq: Vec<BranchId> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Branch(b, _) => Some(*b),
                _ => None,
            })
            .collect();
        let mut by_log = CoverageBitmap::new();
        let mut by_seq = CoverageBitmap::new();
        assert_eq!(
            by_log.record(&log),
            by_seq.record_branches(seq.iter().copied())
        );
        assert_eq!(by_log.covered_bytes(), by_seq.covered_bytes());
        assert_eq!(
            by_log.record(&log),
            by_seq.record_branches(seq.iter().copied())
        );
    }

    #[test]
    fn covered_bytes_counts() {
        let mut m = CoverageBitmap::new();
        assert_eq!(m.covered_bytes(), 0);
        m.record(&log_of(&[(1, true), (2, true)]));
        assert!(m.covered_bytes() >= 1);
    }
}

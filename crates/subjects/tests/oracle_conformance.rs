//! Table-driven conformance suite: for every subject that has an
//! independent oracle, a hand-written table of accepted and rejected
//! inputs is asserted against **both** the instrumented parser and the
//! oracle. A table entry that either implementation disputes is a
//! conformance bug in one of them — the table is the tie-breaker, since
//! it encodes the intended language directly.

use pdf_subjects::oracle::oracle_for;

struct ConformanceTable {
    subject: &'static str,
    accept: &'static [&'static [u8]],
    reject: &'static [&'static [u8]],
}

fn tables() -> Vec<ConformanceTable> {
    vec![
        ConformanceTable {
            subject: "csv",
            accept: &[
                b"",
                b"a",
                b"a,b",
                b"a,b,c",
                b"a\n",
                b"a\nb",
                b"a,b\nc,d",
                b"\"q\"",
                b"\"a,b\"",
                b"\"a\nb\"",
                b"\"\"",
                b"\"a\"\"b\"",
                b",",
                b",\n",
                b"a,",
                b",a",
                b"a b c",
                b"1,2\n3,4\n",
                b"\"a\",b",
                b"a,\"b\"",
                b"\r\n",
                b"a\r\n",
                b"a\r\nb",
                b"  ",
                b"a,,b",
                b"\"\",\"\"",
                b"x\ny\nz",
            ],
            reject: &[
                b"\"",
                b"\"a",
                b"a\"",
                b"a\"b",
                b"\"a\"b",
                b"\"a\" ",
                b"\r",
                b"a\r",
                b"\ra",
                b"a,b\r",
                b"\"a\n",
                b"\"\"\"",
                b"ab\"cd",
                b",\"",
                b"\"a\"x",
                b"a\rb",
                b"\"a\"\"",
                b"x,\"y",
                b"\rx\n",
                b"a\"\n",
                b"\"abc",
                b"one,two\"",
                b"q\"q,\"x\"",
                b"\r\r",
                b"\"unterminated,field",
            ],
        },
        ConformanceTable {
            subject: "ini",
            accept: &[
                b"",
                b"\n",
                b"; comment",
                b"  ; indented comment",
                b"[s]",
                b"[section]",
                b"[]",
                b"[ s ]",
                b"[a.b]",
                b"[s]  ",
                b"[s] ; trailing",
                b"a=b",
                b"a = b",
                b"key=value",
                b"k:v",
                b"k : v",
                b"a=b\nc=d",
                b"[s]\na=b",
                b"[s]\na=b\n[t]\nc=d",
                b"  a=b",
                b"a=",
                b"a=b=c",
                b"a==b",
                b"name = value ; inline",
                b"\n\n\n",
                b"x:y\n; c\n[z]",
                b"a=b ; c",
            ],
            reject: &[
                b"[",
                b"[s",
                b"[s]x",
                b"[s] a=b",
                b"[s]]",
                b"=v",
                b"=",
                b":v",
                b"novalue",
                b"justtext",
                b"x;y",
                b"[s]\nnovalue",
                b"a=b\n[",
                b" = ",
                b"\t=x",
                b"hello world",
                b"[unclosed\na=b",
                b"a\n=b",
                b"ok=1\nbad",
                b"[s][t]",
                b"[a] [b]",
                b"= ; comment",
                b"word\n",
                b"a b\nc=d",
                b"[s]extra ; c",
            ],
        },
        ConformanceTable {
            subject: "cjson",
            accept: &[
                b"1",
                b"0",
                b"-1",
                b"1.5",
                b"1e2",
                b"1E+2",
                b"0.5e-3",
                b"-0",
                b"123",
                b"true",
                b"false",
                b"null",
                b"\"\"",
                b"\"a\"",
                b"\"\\n\"",
                b"\"\\u0041\"",
                b"\"\\ud83d\\ude00\"",
                b"[]",
                b"[1]",
                b"[1,2,3]",
                b"[[]]",
                b"[true,false,null]",
                b"{}",
                b"{\"a\":1}",
                b"{\"a\":{\"b\":[]}}",
                b" 1 ",
                b"[ 1 , 2 ]",
                b"{\"a\":\"b\",\"c\":2}",
            ],
            reject: &[
                b"",
                b"[",
                b"]",
                b"{",
                b"}",
                b"01",
                b"1.",
                b".5",
                b"1e",
                b"+1",
                b"-",
                b"tru",
                b"True",
                b"nul",
                b"\"",
                b"\"\\x\"",
                b"\"\n\"",
                b"\"\\ud83d\"",
                b"[1,]",
                b"[,1]",
                b"{\"a\"}",
                b"{\"a\":}",
                b"{a:1}",
                b"{\"a\":1,}",
                b"1 2",
                b"[1 2]",
                b"{\"a\" 1}",
            ],
        },
        ConformanceTable {
            subject: "arith",
            accept: &[
                b"1",
                b"9",
                b"10",
                b"123",
                b"100",
                b"1+2",
                b"1-2",
                b"-1",
                b"+1",
                b"+9",
                b"-12",
                b"1+2-3",
                b"1-2-3-4",
                b"12+34",
                b"(1)",
                b"(1+2)",
                b"((1))",
                b"(((9)))",
                b"1+(2)",
                b"(1)+2",
                b"-(1)",
                b"(-1)",
                b"((1+2)-3)",
                b"1+(2-(3))",
                b"(10)+(20)",
            ],
            reject: &[
                b"", b"0", b"01", b"0+1", b"2+0", b"a", b"1+", b"+", b"-", b"1++2", b"1+-2",
                b"--1", b"(", b")", b"()", b"(1", b"1)", b"1 + 2", b"1.5", b"(+)", b"1*2", b"(1))",
                b"((1)", b"1+()", b"12a",
            ],
        },
        ConformanceTable {
            subject: "dyck",
            accept: &[
                b"()",
                b"[]",
                b"{}",
                b"<>",
                b"()()",
                b"([])",
                b"{[()]}",
                b"<()>",
                b"(())",
                b"[[]]",
                b"{}{}",
                b"<><>",
                b"<<>>",
                b"([]{})",
                b"{<>}",
                b"((()))",
                b"[(){}<>]",
                b"()[]{}<>",
                b"(<>)",
                b"[{}]",
                b"<[]>",
                b"({[<>]})",
                b"()()()",
                b"[()]",
                b"{()}",
            ],
            reject: &[
                b"", b"(", b")", b"[", b"]", b"{", b"}", b"<", b">", b"(]", b"([)]", b"(()",
                b"())", b"a", b"()a", b"a()", b"( )", b"<(", b")(", b"][", b"{)", b"(>", b"[}",
                b"()<", b"(((",
            ],
        },
        ConformanceTable {
            subject: "mjs-lexer",
            accept: &[
                b"",
                b" ",
                b"x",
                b"if",
                b"else",
                b"1",
                b"0",
                b"3.14",
                b"1e5",
                b"0x10",
                b".5",
                b"1.2.3",
                b"'s'",
                b"\"s\"",
                b"'a\\'b'",
                b";",
                b"{}",
                b"()",
                b"+",
                b"== != <= >=",
                b">>>=",
                b"a b",
                b"x=1;",
                b"// line comment",
                b"/* block */",
                b"foo123",
                b"_bar",
                b"$",
                b"if ) 1.5 'str' >>>= foo",
            ],
            reject: &[
                b"@",
                b"#",
                b"\\",
                b"`",
                b"\x80",
                b"\xff",
                b"a@",
                b"@a",
                b"x # y",
                b"1.",
                b"9.",
                b"12.",
                b"1e",
                b"1e+",
                b"1e-",
                b"'",
                b"\"",
                b"'abc",
                b"\"abc",
                b"'a\nb'",
                b"\"a\nb\"",
                b"/* never closed",
                b"/*",
                b"/* a",
                b"foo @ bar",
            ],
        },
    ]
}

#[test]
fn tables_meet_the_size_floor() {
    for t in tables() {
        assert!(
            t.accept.len() >= 25,
            "{}: only {} accept cases",
            t.subject,
            t.accept.len()
        );
        assert!(
            t.reject.len() >= 25,
            "{}: only {} reject cases",
            t.subject,
            t.reject.len()
        );
    }
}

#[test]
fn parser_conforms_to_the_tables() {
    for t in tables() {
        let info = pdf_subjects::by_name(t.subject).expect("subject registered");
        for &input in t.accept {
            let exec = info.subject.run(input);
            assert!(
                exec.valid,
                "{} parser rejected {:?}: {:?}",
                t.subject,
                String::from_utf8_lossy(input),
                exec.error
            );
        }
        for &input in t.reject {
            assert!(
                !info.subject.run(input).valid,
                "{} parser accepted {:?}",
                t.subject,
                String::from_utf8_lossy(input)
            );
        }
    }
}

#[test]
fn oracle_conforms_to_the_tables() {
    for t in tables() {
        let oracle = oracle_for(t.subject).expect("oracle registered");
        for &input in t.accept {
            assert!(
                oracle.accepts(input),
                "{} oracle rejected {:?}",
                t.subject,
                String::from_utf8_lossy(input)
            );
        }
        for &input in t.reject {
            assert!(
                !oracle.accepts(input),
                "{} oracle accepted {:?}",
                t.subject,
                String::from_utf8_lossy(input)
            );
        }
    }
}

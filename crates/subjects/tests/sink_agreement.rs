//! Property tests for the streaming sinks: on any input and any
//! subject, the `CoverageOnly` and `LastFailure` sinks must report
//! exactly what a reduction of the `FullLog` event vector reports —
//! same branch set, same EOF access, same rejection index, same
//! substitution candidates.

use proptest::prelude::*;

/// Checks every subject against the full-log reference reductions.
fn assert_sinks_agree(input: &[u8]) {
    for info in pdf_subjects::all_subjects() {
        let full = info.subject.run(input);
        let cov = info.subject.run_coverage(input);
        let fail = info.subject.run_last_failure(input);

        assert_eq!(cov.valid, full.valid, "{}: verdicts differ", info.name);
        assert_eq!(fail.valid, full.valid, "{}: verdicts differ", info.name);
        assert_eq!(cov.error, full.error, "{}: errors differ", info.name);
        assert_eq!(fail.error, full.error, "{}: errors differ", info.name);

        let cov_ref = full.log.coverage_summary();
        let fail_ref = full.log.failure_summary();
        assert_eq!(cov.cov, cov_ref, "{}: coverage summary differs", info.name);
        assert_eq!(
            fail.failure, fail_ref,
            "{}: failure summary differs",
            info.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sinks_agree_on_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..32)) {
        assert_sinks_agree(&input);
    }

    #[test]
    fn sinks_agree_on_printable_prefixes(input in "[ -~]{0,24}") {
        // printable inputs parse deeper, exercising the candidate and
        // rejection-index paths rather than bailing at byte 0
        assert_sinks_agree(input.as_bytes());
    }

    #[test]
    fn sinks_agree_on_near_valid_inputs(
        prefix in prop_oneof![
            Just("[a]\nk=v".to_string()),
            Just("a,b\nc".to_string()),
            Just("{\"k\": [1,".to_string()),
            Just("{i=1; while".to_string()),
            Just("x = \"str".to_string()),
            Just("((([{<".to_string()),
        ],
        tail in "[ -~]{0,6}",
    ) {
        // rejection typically lands deep inside the input here
        let input = format!("{prefix}{tail}");
        assert_sinks_agree(input.as_bytes());
    }
}

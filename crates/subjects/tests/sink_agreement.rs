//! Property tests for the streaming sinks: on any input and any
//! subject, the `CoverageOnly`, `LastFailure` and `FastFailure` sinks
//! must report exactly what a reduction of the `FullLog` event vector
//! reports — same branch set, same EOF access, same rejection index,
//! same substitution candidates, same last-comparison fingerprint.

use pdf_runtime::ExecArena;
use proptest::prelude::*;

/// Checks every subject against the full-log reference reductions.
fn assert_sinks_agree(input: &[u8]) {
    let mut arena = ExecArena::new();
    for info in pdf_subjects::all_subjects() {
        let full = info.subject.run(input);
        let cov = info.subject.run_coverage(input);
        let fail = info.subject.run_last_failure(input);
        let fast = info.subject.run_fast_failure(input);

        assert_eq!(cov.valid, full.valid, "{}: verdicts differ", info.name);
        assert_eq!(fail.valid, full.valid, "{}: verdicts differ", info.name);
        assert_eq!(fast.valid, full.valid, "{}: verdicts differ", info.name);
        assert_eq!(cov.error, full.error, "{}: errors differ", info.name);
        assert_eq!(fail.error, full.error, "{}: errors differ", info.name);
        assert_eq!(fast.error(), full.error, "{}: errors differ", info.name);

        let cov_ref = full.log.coverage_summary();
        let fail_ref = full.log.failure_summary();
        let fast_ref = full.log.fast_summary();
        assert_eq!(cov.cov, cov_ref, "{}: coverage summary differs", info.name);
        assert_eq!(
            fail.failure, fail_ref,
            "{}: failure summary differs",
            info.name
        );
        assert_eq!(fast.fast, fast_ref, "{}: fast summary differs", info.name);

        // the fast-failure reduction keeps exactly the two signals the
        // tiered driver filters on, so they must match the streaming
        // LastFailure summary bit for bit
        assert_eq!(
            fast.fast.rejection_index, fail_ref.rejection_index,
            "{}: rejection index differs between fast and last-failure",
            info.name
        );
        assert_eq!(
            fast.fast.last_cmp_fingerprint, fail_ref.last_cmp_fingerprint,
            "{}: last-comparison fingerprint differs between fast and last-failure",
            info.name
        );
        assert_eq!(fast.fast.eof_access, fail_ref.eof_access, "{}", info.name);

        // arena reuse must not change a single field of the summary
        let arena_run = info.subject.run_fast_failure_arena(&mut arena, input);
        assert_eq!(arena_run.valid, fast.valid, "{}", info.name);
        assert_eq!(arena_run.verdict, fast.verdict, "{}", info.name);
        assert_eq!(arena_run.fast, fast.fast, "{}", info.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sinks_agree_on_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..32)) {
        assert_sinks_agree(&input);
    }

    #[test]
    fn sinks_agree_on_printable_prefixes(input in "[ -~]{0,24}") {
        // printable inputs parse deeper, exercising the candidate and
        // rejection-index paths rather than bailing at byte 0
        assert_sinks_agree(input.as_bytes());
    }

    #[test]
    fn sinks_agree_on_near_valid_inputs(
        prefix in prop_oneof![
            Just("[a]\nk=v".to_string()),
            Just("a,b\nc".to_string()),
            Just("{\"k\": [1,".to_string()),
            Just("{i=1; while".to_string()),
            Just("x = \"str".to_string()),
            Just("((([{<".to_string()),
        ],
        tail in "[ -~]{0,6}",
    ) {
        // rejection typically lands deep inside the input here
        let input = format!("{prefix}{tail}");
        assert_sinks_agree(input.as_bytes());
    }

    #[test]
    fn batched_fast_failure_agrees_with_single_runs(
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24),
            0..8,
        ),
    ) {
        // one arena across the whole batch: buffer reuse must be
        // invisible in the results, in any order, for every subject
        let mut arena = ExecArena::new();
        for info in pdf_subjects::all_subjects() {
            let batch = info.subject.exec_batch_fast(&mut arena, &inputs);
            prop_assert_eq!(batch.len(), inputs.len());
            for (exec, input) in batch.iter().zip(&inputs) {
                let single = info.subject.run_fast_failure(input);
                prop_assert_eq!(exec.valid, single.valid, "{}", info.name);
                prop_assert_eq!(&exec.verdict, &single.verdict, "{}", info.name);
                prop_assert_eq!(&exec.fast, &single.fast, "{}", info.name);
            }
        }
    }
}

//! Property-based tests over the subject parsers: acceptance must match
//! the intended language, and generated members of each language must
//! be accepted.

use proptest::prelude::*;

use pdf_subjects::{csv, dyck, ini, json, mjs, tinyc};

/// Renders a random JSON value as text; by construction the subject
/// must accept it.
fn json_value(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("true".to_string()),
        Just("false".to_string()),
        Just("null".to_string()),
        (0u32..1000).prop_map(|n| n.to_string()),
        "[a-z]{0,6}".prop_map(|s| format!("{s:?}")),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|items| format!("[{}]", items.join(","))),
            proptest::collection::vec(("[a-z]{1,4}", inner), 0..4).prop_map(|props| {
                let body: Vec<String> = props
                    .into_iter()
                    .map(|(k, v)| format!("{k:?}: {v}"))
                    .collect();
                format!("{{{}}}", body.join(", "))
            }),
        ]
    })
    .boxed()
}

proptest! {
    #[test]
    fn json_subject_accepts_generated_json(value in json_value(3)) {
        let exec = json::subject().run(value.as_bytes());
        prop_assert!(exec.valid, "{value}: {:?}", exec.error);
    }

    #[test]
    fn json_trailing_garbage_rejected(value in json_value(2), garbage in "[a-z!@]{1,3}") {
        // a value followed by a non-whitespace tail must be rejected
        let text = format!("{value} {garbage}");
        prop_assert!(!json::subject().run(text.as_bytes()).valid, "{text}");
    }

    #[test]
    fn dyck_accepts_balanced(depth in 1usize..8, width in 1usize..4) {
        let mut s = String::new();
        for _ in 0..width {
            let mut part = String::from("()");
            for d in 0..depth {
                let (open, close) = [('(', ')'), ('[', ']'), ('<', '>'), ('{', '}')][d % 4];
                part = format!("{open}{part}{close}");
            }
            s.push_str(&part);
        }
        prop_assert!(dyck::subject().run(s.as_bytes()).valid, "{s}");
    }

    #[test]
    fn dyck_rejects_any_prefix(depth in 1usize..8) {
        // every proper prefix of a balanced string is invalid
        let mut s = String::from("()");
        for d in 0..depth {
            let (open, close) = [('(', ')'), ('[', ']'), ('<', '>'), ('{', '}')][d % 4];
            s = format!("{open}{s}{close}");
        }
        for cut in 1..s.len() {
            let prefix = &s[..cut];
            prop_assert!(!dyck::subject().run(prefix.as_bytes()).valid, "{prefix}");
        }
    }

    #[test]
    fn ini_accepts_generated_files(
        sections in proptest::collection::vec(("[a-z]{1,6}", proptest::collection::vec(("[a-z]{1,5}", "[a-z0-9 ]{0,8}"), 0..3)), 0..3)
    ) {
        let mut text = String::new();
        for (name, pairs) in &sections {
            text.push_str(&format!("[{name}]\n"));
            for (k, v) in pairs {
                text.push_str(&format!("{k}={v}\n"));
            }
        }
        let exec = ini::subject().run(text.as_bytes());
        prop_assert!(exec.valid, "{text}: {:?}", exec.error);
    }

    #[test]
    fn csv_accepts_generated_tables(
        rows in proptest::collection::vec(proptest::collection::vec("[a-z0-9 ]{0,6}", 1..4), 1..4)
    ) {
        let text: String = rows
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        prop_assert!(csv::subject().run(text.as_bytes()).valid, "{text}");
    }

    #[test]
    fn csv_quoted_fields_roundtrip(content in "[a-z,\n]{0,10}") {
        // any content is expressible inside a quoted field (quotes doubled)
        let quoted = format!("\"{}\"", content.replace('"', "\"\""));
        prop_assert!(csv::subject().run(quoted.as_bytes()).valid, "{quoted}");
    }

    #[test]
    fn tinyc_accepts_generated_statements(
        assigns in proptest::collection::vec(("[a-z]", 0u32..100), 1..5)
    ) {
        let mut text = String::from("{");
        for (var, value) in &assigns {
            text.push_str(&format!("{var}={value};"));
        }
        text.push('}');
        let exec = tinyc::subject().run(text.as_bytes());
        prop_assert!(exec.valid, "{text}: {:?}", exec.error);
    }

    #[test]
    fn tinyc_rejects_missing_semicolons(var in "[a-z]", value in 0u32..100) {
        let text = format!("{var}={value}");
        prop_assert!(!tinyc::subject().run(text.as_bytes()).valid);
    }

    #[test]
    fn mjs_accepts_generated_expression_statements(
        terms in proptest::collection::vec((0u32..100, prop_oneof![Just("+"), Just("-"), Just("*"), Just("&&")]), 1..5),
        last in 0u32..100
    ) {
        let mut text = String::from("x = ");
        for (n, op) in &terms {
            text.push_str(&format!("{n} {op} "));
        }
        text.push_str(&format!("{last};"));
        let exec = mjs::subject().run(text.as_bytes());
        prop_assert!(exec.valid, "{text}: {:?}", exec.error);
    }

    #[test]
    fn mjs_string_literals_roundtrip(content in "[a-zA-Z0-9 ]{0,12}") {
        let text = format!("x = \"{content}\";");
        prop_assert!(mjs::subject().run(text.as_bytes()).valid, "{text}");
    }

    #[test]
    fn subjects_never_accept_and_reject_based_on_fuel_nondeterminism(
        input in proptest::collection::vec(any::<u8>(), 0..40)
    ) {
        // verdicts are pure functions of the input
        for info in pdf_subjects::all_subjects() {
            let a = info.subject.run(&input).valid;
            let b = info.subject.run(&input).valid;
            prop_assert_eq!(a, b, "{} flaky", info.name);
        }
    }
}

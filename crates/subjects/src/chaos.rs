//! Deterministic fault injection: the chaos subject.
//!
//! Robustness claims need a subject that *actually misbehaves*. A
//! [`ChaosConfig`] wraps any existing subject and injects three fault
//! classes — panics, fuel-burning hang loops and flaky rejections — on a
//! schedule that is a pure function of `(chaos seed, input bytes)`.
//! Determinism is the whole point: a chaos-wrapped campaign is exactly
//! as replayable and checkpointable as a healthy one (equal seeds give
//! equal digests), so every supervisor and recovery path can be tested
//! under fire without giving up the workspace's replay contracts.
//!
//! Wrapped subjects go through the same [`Subject`] machinery as real
//! ones, so injected panics are caught by the runtime's isolation layer
//! and classified as [`Verdict::Crash`](pdf_runtime::Verdict::Crash),
//! and burned fuel surfaces as [`Verdict::Hang`](pdf_runtime::Verdict::Hang).
//!
//! # Implementation note
//!
//! [`Subject`] stores plain `fn` pointers, which cannot capture the
//! wrapped subject. Wrapping therefore allocates one of a fixed set of
//! process-global *chaos slots* and mints the entry points from
//! const-generic functions (`chaos_full::<I>` is a distinct `fn` item
//! per slot index). Re-wrapping the same subject with the same config
//! reuses its slot, so the table only bounds the number of *distinct*
//! chaos subjects per process.
//!
//! # Example
//!
//! ```
//! use pdf_subjects::chaos::{wrap, ChaosConfig};
//!
//! // all-faults-off chaos is a transparent proxy
//! let quiet = wrap(pdf_subjects::arith::subject(), ChaosConfig::silent(7));
//! assert!(quiet.run(b"1+1").valid);
//!
//! // at panic rate 1000‰ every input crashes — deterministically
//! let cfg = ChaosConfig { panic_per_mille: 1000, ..ChaosConfig::silent(7) };
//! let noisy = wrap(pdf_subjects::arith::subject(), cfg);
//! assert!(noisy.run(b"1+1").verdict.is_crash());
//! ```

use std::sync::{Mutex, OnceLock};

use pdf_runtime::{
    cov, CoverageOnly, CoverageSubjectFn, EventSink, ExecCtx, FastFailure, FastFailureSubjectFn,
    FullLog, LastFailure, LastFailureSubjectFn, ParseError, Subject, SubjectFn,
};

/// Fault schedule for a chaos-wrapped subject. Rates are per-mille and
/// checked in order (panic, hang, flaky) against a hash of the seed and
/// the input bytes, so each concrete input always takes the same fault
/// (or none) — across runs, sink flavours, threads and processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule; different seeds fault different
    /// inputs at the same rates.
    pub seed: u64,
    /// Per-mille of inputs that panic inside the subject.
    pub panic_per_mille: u16,
    /// Per-mille of inputs that burn all execution fuel (a hang).
    pub hang_per_mille: u16,
    /// Per-mille of inputs spuriously rejected regardless of validity.
    pub flaky_per_mille: u16,
}

impl ChaosConfig {
    /// All fault rates zero: the wrapper becomes a transparent proxy
    /// (useful as a baseline and for overriding individual rates).
    pub fn silent(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_per_mille: 0,
            hang_per_mille: 0,
            flaky_per_mille: 0,
        }
    }

    /// The default supervision-test mix: 2.5% panics, 1.5% hangs, 6%
    /// flaky rejections — enough faults that every campaign meets each
    /// class, while most executions still make search progress.
    pub fn stormy(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_per_mille: 25,
            hang_per_mille: 15,
            flaky_per_mille: 60,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Fault {
    Panic,
    Hang,
    Flaky,
    Pass,
}

/// The fault decision: FNV-1a over seed then input, reduced per-mille.
fn decide(cfg: &ChaosConfig, input: &[u8]) -> Fault {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cfg
        .seed
        .to_le_bytes()
        .into_iter()
        .chain(input.iter().copied())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let v = (h % 1000) as u16;
    if v < cfg.panic_per_mille {
        Fault::Panic
    } else if v < cfg.panic_per_mille + cfg.hang_per_mille {
        Fault::Hang
    } else if v < cfg.panic_per_mille + cfg.hang_per_mille + cfg.flaky_per_mille {
        Fault::Flaky
    } else {
        Fault::Pass
    }
}

/// How many distinct (subject, config) chaos wrappers one process can
/// hold. Slots are reused on identical re-wraps, so this bounds variety,
/// not call count.
pub const CHAOS_SLOTS: usize = 16;

#[derive(Clone, Copy)]
struct Slot {
    inner: Subject,
    cfg: ChaosConfig,
    name: &'static str,
}

static SLOTS: OnceLock<Mutex<Vec<Slot>>> = OnceLock::new();

fn slots() -> &'static Mutex<Vec<Slot>> {
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn slot(i: usize) -> Slot {
    slots().lock().expect("chaos slot table poisoned")[i]
}

fn chaos_run<S: EventSink>(
    cfg: &ChaosConfig,
    ctx: &mut ExecCtx<S>,
    inner: fn(&mut ExecCtx<S>) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    match decide(cfg, ctx.input()) {
        Fault::Panic => {
            // a coverage point before the panic gives the crash a
            // non-empty site tail, so its dedup key is stable
            cov!(ctx);
            panic!("chaos: injected panic");
        }
        Fault::Hang => {
            cov!(ctx);
            while ctx.tick() {}
            // fuel is gone; the runtime classifies the exhausted context
            // as a hang no matter what we return here
            Err(ctx.reject("chaos: fuel burned"))
        }
        Fault::Flaky => Err(ctx.reject("chaos: flaky rejection")),
        Fault::Pass => inner(ctx),
    }
}

fn chaos_full<const I: usize>(ctx: &mut ExecCtx<FullLog>) -> Result<(), ParseError> {
    let s = slot(I);
    chaos_run(&s.cfg, ctx, s.inner.entry())
}

fn chaos_cov<const I: usize>(ctx: &mut ExecCtx<CoverageOnly>) -> Result<(), ParseError> {
    let s = slot(I);
    let inner = s
        .inner
        .coverage_entry()
        .expect("slot registered without a coverage entry");
    chaos_run(&s.cfg, ctx, inner)
}

fn chaos_lf<const I: usize>(ctx: &mut ExecCtx<LastFailure>) -> Result<(), ParseError> {
    let s = slot(I);
    let inner = s
        .inner
        .last_failure_entry()
        .expect("slot registered without a last-failure entry");
    chaos_run(&s.cfg, ctx, inner)
}

fn chaos_ff<const I: usize>(ctx: &mut ExecCtx<FastFailure>) -> Result<(), ParseError> {
    let s = slot(I);
    let inner = s
        .inner
        .fast_failure_entry()
        .expect("slot registered without a fast-failure entry");
    chaos_run(&s.cfg, ctx, inner)
}

macro_rules! fn_table {
    ($f:ident, $t:ty) => {{
        const T: [$t; CHAOS_SLOTS] = [
            $f::<0>, $f::<1>, $f::<2>, $f::<3>, $f::<4>, $f::<5>, $f::<6>, $f::<7>, $f::<8>,
            $f::<9>, $f::<10>, $f::<11>, $f::<12>, $f::<13>, $f::<14>, $f::<15>,
        ];
        T
    }};
}

/// Wraps `inner` in a deterministic fault injector.
///
/// The returned subject is named `chaos-<inner name>` and mirrors the
/// inner subject's fuel budget and registered sink flavours. Wrapping
/// the same subject with the same config again returns an equivalent
/// subject backed by the same slot.
///
/// # Panics
///
/// Panics when more than [`CHAOS_SLOTS`] distinct (subject, config)
/// pairs are wrapped in one process.
pub fn wrap(inner: Subject, cfg: ChaosConfig) -> Subject {
    let full: [SubjectFn; CHAOS_SLOTS] = fn_table!(chaos_full, SubjectFn);
    let covs: [CoverageSubjectFn; CHAOS_SLOTS] = fn_table!(chaos_cov, CoverageSubjectFn);
    let lfs: [LastFailureSubjectFn; CHAOS_SLOTS] = fn_table!(chaos_lf, LastFailureSubjectFn);
    let ffs: [FastFailureSubjectFn; CHAOS_SLOTS] = fn_table!(chaos_ff, FastFailureSubjectFn);

    let (idx, name) = {
        let mut table = slots().lock().expect("chaos slot table poisoned");
        match table
            .iter()
            .position(|s| s.inner.name() == inner.name() && s.cfg == cfg)
        {
            Some(i) => (i, table[i].name),
            None => {
                assert!(
                    table.len() < CHAOS_SLOTS,
                    "chaos slot table exhausted: at most {CHAOS_SLOTS} distinct \
                     wrapped subjects per process"
                );
                // leaked once per slot; names feed journal/checkpoint
                // line framing, so they must stay free of whitespace
                // and '=' — subject names already are
                let name: &'static str =
                    Box::leak(format!("chaos-{}", inner.name()).into_boxed_str());
                table.push(Slot { inner, cfg, name });
                (table.len() - 1, name)
            }
        }
    };

    let mut subject = Subject::new(name, full[idx]).with_fuel(inner.fuel());
    if inner.coverage_entry().is_some() {
        subject = subject.with_coverage_entry(covs[idx]);
    }
    if inner.last_failure_entry().is_some() {
        subject = subject.with_last_failure_entry(lfs[idx]);
    }
    if inner.fast_failure_entry().is_some() {
        subject = subject.with_fast_failure_entry(ffs[idx]);
    }
    subject
}

/// The five evaluation subjects, each chaos-wrapped with `cfg` (the
/// chaos-supervision matrix runs on these). Reference corpora pass
/// through untouched: they describe the *language*, which chaos does not
/// change — only whether a given run survives to judge it.
pub fn chaos_evaluation_subjects(cfg: ChaosConfig) -> Vec<crate::SubjectInfo> {
    crate::evaluation_subjects()
        .into_iter()
        .map(|mut info| {
            let wrapped = wrap(info.subject, cfg);
            info.subject = wrapped;
            info.name = wrapped.name();
            info
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arith_chaos(cfg: ChaosConfig) -> Subject {
        wrap(crate::arith::subject(), cfg)
    }

    #[test]
    fn silent_chaos_is_a_transparent_proxy() {
        let subject = arith_chaos(ChaosConfig::silent(1));
        assert_eq!(subject.name(), "chaos-arith");
        for input in crate::arith::reference_corpus() {
            assert!(subject.run(input).valid, "{:?}", input);
            assert!(subject.run_coverage(input).valid);
            assert!(subject.run_last_failure(input).valid);
        }
        assert!(!subject.run(b"+").valid);
    }

    #[test]
    fn full_panic_rate_crashes_every_input() {
        let cfg = ChaosConfig {
            panic_per_mille: 1000,
            ..ChaosConfig::silent(2)
        };
        let subject = arith_chaos(cfg);
        for input in [b"1".as_slice(), b"1+1", b"anything"] {
            let exec = subject.run(input);
            assert!(exec.verdict.is_crash(), "{:?}: {:?}", input, exec.verdict);
            assert_eq!(exec.error.as_deref(), Some("crash: chaos: injected panic"));
        }
    }

    #[test]
    fn full_hang_rate_hangs_every_input() {
        let cfg = ChaosConfig {
            hang_per_mille: 1000,
            ..ChaosConfig::silent(3)
        };
        let subject = arith_chaos(cfg);
        let exec = subject.run(b"1+1");
        assert!(exec.verdict.is_hang(), "{:?}", exec.verdict);
        assert!(subject.run_last_failure(b"1+1").verdict.is_hang());
    }

    #[test]
    fn fault_decision_is_deterministic_and_seed_dependent() {
        let stormy = ChaosConfig::stormy(7);
        // per-input decisions repeat exactly
        for i in 0..200u32 {
            let input = i.to_le_bytes();
            assert_eq!(decide(&stormy, &input), decide(&stormy, &input));
        }
        // and over many inputs every class occurs
        let mut seen = std::collections::HashSet::new();
        for i in 0..4000u32 {
            seen.insert(decide(&stormy, &i.to_le_bytes()));
        }
        assert!(seen.contains(&Fault::Panic));
        assert!(seen.contains(&Fault::Hang));
        assert!(seen.contains(&Fault::Flaky));
        assert!(seen.contains(&Fault::Pass));
        // a different seed faults a different subset
        let other = ChaosConfig::stormy(8);
        let differs = (0..4000u32)
            .any(|i| decide(&stormy, &i.to_le_bytes()) != decide(&other, &i.to_le_bytes()));
        assert!(differs);
    }

    #[test]
    fn verdicts_agree_across_sink_flavours() {
        let subject = arith_chaos(ChaosConfig::stormy(11));
        for i in 0..300u32 {
            let input = format!("{i}");
            let full = subject.run(input.as_bytes()).verdict;
            let lf = subject.run_last_failure(input.as_bytes()).verdict;
            let cov = subject.run_coverage(input.as_bytes()).verdict;
            let ff = subject.run_fast_failure(input.as_bytes()).verdict;
            assert_eq!(full, lf, "input {input:?}");
            assert_eq!(full, cov, "input {input:?}");
            assert_eq!(full, ff, "input {input:?}");
        }
    }

    #[test]
    fn rewrapping_reuses_the_slot() {
        let before = slots().lock().unwrap().len();
        let a = arith_chaos(ChaosConfig::stormy(21));
        let b = arith_chaos(ChaosConfig::stormy(21));
        let after = slots().lock().unwrap().len();
        assert_eq!(after, before + 1);
        assert_eq!(a.name(), b.name());
        assert_eq!(a.run(b"1").verdict, b.run(b"1").verdict);
    }

    #[test]
    fn chaos_evaluation_subjects_cover_table1() {
        let subjects = chaos_evaluation_subjects(ChaosConfig::stormy(5));
        let names: Vec<&str> = subjects.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "chaos-ini",
                "chaos-csv",
                "chaos-cjson",
                "chaos-tinyC",
                "chaos-mjs"
            ]
        );
        for info in &subjects {
            assert_eq!(info.subject.name(), info.name);
        }
    }
}

//! The balanced-bracket (Dyck) language of Section 3.
//!
//! Section 3 uses the parenthesis language to show why random choice
//! cannot close inputs (the 1/(n+1) Catalan argument) and Section 3.2
//! extends it to "different kinds of brackets (round, square, pointed,
//! ...)" to motivate the heuristic. This subject accepts well-balanced,
//! well-nested strings over four bracket pairs: `()`, `[]`, `<>`, `{}`.
//! The empty input is rejected (at least one bracket pair is required),
//! so the fuzzer has to both open and close something.

use pdf_runtime::{cov, lit, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented Dyck-language subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("dyck", parse)
}

/// Valid inputs covering all four bracket kinds and nesting.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"()",
        b"[]",
        b"<>",
        b"{}",
        b"()()",
        b"([])",
        b"<{[()]}>",
        b"(()())",
        b"{}{}<>",
    ]
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    if !group(ctx)? {
        return Err(ctx.reject("expected an opening bracket"));
    }
    while group(ctx)? {}
    ctx.expect_end()
}

/// Parses one bracketed group; returns `Ok(false)` if no opening bracket
/// is present at the cursor.
fn group<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<bool, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let close = if lit!(ctx, b'(') {
            b')'
        } else if lit!(ctx, b'[') {
            b']'
        } else if lit!(ctx, b'<') {
            b'>'
        } else if lit!(ctx, b'{') {
            b'}'
        } else {
            return Ok(false);
        };
        cov!(ctx);
        // zero or more nested groups
        while group(ctx)? {}
        if !lit!(ctx, close) {
            return Err(ctx.reject("unbalanced bracket"));
        }
        cov!(ctx);
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_unbalanced() {
        let s = subject();
        for input in [
            &b""[..],
            b"(",
            b")",
            b"(]",
            b"([)]",
            b"(()",
            b"())",
            b"x",
            b"<}",
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn open_prefix_wants_more_input() {
        let exec = subject().run(b"(()((");
        assert!(!exec.valid);
        assert!(exec.log.eof_access().is_some());
    }

    #[test]
    fn mismatched_close_suggests_matching_bracket() {
        let exec = subject().run(b"[}");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        let bytes: Vec<u8> = cands.iter().map(|c| c.bytes[0]).collect();
        assert!(bytes.contains(&b']'), "candidates: {cands:?}");
    }

    #[test]
    fn deep_nesting_tracks_stack_depth() {
        let exec = subject().run(b"((((x");
        // the comparison depth at the failure point reflects nesting
        let max_depth = exec.log.comparisons().map(|c| c.depth).max().unwrap();
        assert!(max_depth >= 4, "max depth {max_depth}");
    }
}

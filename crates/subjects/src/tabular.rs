//! A table-driven LL(1) parser — the Section 7.1 challenge case.
//!
//! > "The coverage metric will not work on table-driven parsers out of
//! > the box as such a parser defines its state based on the table it
//! > reads rather the code it is currently executing. [...] the coverage
//! > metric still works as a general guidance — instead of code
//! > coverage, one could implement coverage of table elements."
//!
//! This subject implements exactly that: an LL(1) parser for a JSON-like
//! expression language driven by a parse table. The tiny interpreter
//! loop would give useless code coverage (every input walks the same
//! loop), so each *table cell* `(nonterminal, lookahead-class)` reports
//! itself as a coverage point through a synthetic [`SiteId`], and each
//! terminal match is a tracked comparison — making pFuzzer's guidance
//! work unchanged, as the paper predicts.
//!
//! Grammar:
//!
//! ```text
//! value ::= list | pair | NUMBER | 'true' | 'false'
//! list  ::= '[' inner ']'
//! inner ::= value tail | ε
//! tail  ::= ',' value tail | ε
//! pair  ::= '<' value ':' value '>'
//! ```

use pdf_runtime::{cov, kw, lit, peek_is, range, EventSink, ExecCtx, ParseError, SiteId, Subject};

/// The instrumented table-driven subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("tabular", parse)
}

/// Valid inputs covering every production.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"1",
        b"42",
        b"true",
        b"false",
        b"[]",
        b"[1]",
        b"[1,2,3]",
        b"[[true],[]]",
        b"<1:2>",
        b"<[1]:<true:false>>",
    ]
}

/// Nonterminals of the grammar (rows of the parse table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Nt {
    Value,
    List,
    Inner,
    Tail,
    Pair,
}

/// Grammar symbols pushed on the parser stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    N(Nt),
    /// A terminal byte.
    T(u8),
    /// The NUMBER terminal (one or more digits).
    Number,
    /// The `true` keyword terminal.
    True,
    /// The `false` keyword terminal.
    False,
}

/// Lookahead classes (columns of the parse table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum La {
    Digit,
    TrueKw,
    FalseKw,
    LBracket,
    RBracket,
    LAngle,
    RAngle,
    Comma,
    Colon,
    Eof,
    Other,
}

fn classify<S: EventSink>(ctx: &mut ExecCtx<S>) -> La {
    // classification itself is tracked: these are the (non-consuming)
    // comparisons the table-driven parser makes against the lookahead
    if range!(ctx, b'0', b'9') {
        return La::Digit;
    }
    if peek_is!(ctx, b'[') {
        return La::LBracket;
    }
    if peek_is!(ctx, b']') {
        return La::RBracket;
    }
    if peek_is!(ctx, b'<') {
        return La::LAngle;
    }
    if peek_is!(ctx, b'>') {
        return La::RAngle;
    }
    if peek_is!(ctx, b',') {
        return La::Comma;
    }
    if peek_is!(ctx, b':') {
        return La::Colon;
    }
    if ctx.peek().is_none() {
        return La::Eof;
    }
    if peek_is!(ctx, b't') {
        // first-letter probe; the keyword itself is matched (and
        // tracked) when the table selects the production
        return La::TrueKw;
    }
    if peek_is!(ctx, b'f') {
        return La::FalseKw;
    }
    La::Other
}

/// The LL(1) parse table: `(nonterminal, lookahead) → production`.
/// Returns the symbols to push (reversed below), or `None` for a table
/// error. Every *consulted cell* registers a synthetic coverage site —
/// "coverage of table elements".
fn table<S: EventSink>(ctx: &mut ExecCtx<S>, nt: Nt, la: La) -> Option<&'static [Symbol]> {
    const VALUE_NUM: &[Symbol] = &[Symbol::Number];
    const VALUE_TRUE: &[Symbol] = &[Symbol::True];
    const VALUE_FALSE: &[Symbol] = &[Symbol::False];
    const VALUE_LIST: &[Symbol] = &[Symbol::N(Nt::List)];
    const VALUE_PAIR: &[Symbol] = &[Symbol::N(Nt::Pair)];
    const LIST: &[Symbol] = &[Symbol::T(b'['), Symbol::N(Nt::Inner), Symbol::T(b']')];
    const INNER_VALUE: &[Symbol] = &[Symbol::N(Nt::Value), Symbol::N(Nt::Tail)];
    const INNER_EMPTY: &[Symbol] = &[];
    const TAIL_COMMA: &[Symbol] = &[Symbol::T(b','), Symbol::N(Nt::Value), Symbol::N(Nt::Tail)];
    const TAIL_EMPTY: &[Symbol] = &[];
    const PAIR: &[Symbol] = &[
        Symbol::T(b'<'),
        Symbol::N(Nt::Value),
        Symbol::T(b':'),
        Symbol::N(Nt::Value),
        Symbol::T(b'>'),
    ];

    let cell = |nt: Nt, la: La| -> u64 {
        // stable synthetic id per table cell
        0x7AB1_0000 + (nt as u64) * 16 + la as u64
    };
    let production: Option<&'static [Symbol]> = match (nt, la) {
        (Nt::Value, La::Digit) => Some(VALUE_NUM),
        (Nt::Value, La::TrueKw) => Some(VALUE_TRUE),
        (Nt::Value, La::FalseKw) => Some(VALUE_FALSE),
        (Nt::Value, La::LBracket) => Some(VALUE_LIST),
        (Nt::Value, La::LAngle) => Some(VALUE_PAIR),
        (Nt::List, La::LBracket) => Some(LIST),
        (Nt::Pair, La::LAngle) => Some(PAIR),
        (Nt::Inner, La::RBracket) => Some(INNER_EMPTY),
        (Nt::Inner, _) => Some(INNER_VALUE),
        (Nt::Tail, La::Comma) => Some(TAIL_COMMA),
        (Nt::Tail, La::RBracket) => Some(TAIL_EMPTY),
        _ => None,
    };
    if production.is_some() {
        // table-element coverage: the consulted cell is the "branch"
        ctx.cov(SiteId::from_raw(cell(nt, la)));
    }
    production
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    let mut stack: Vec<Symbol> = vec![Symbol::N(Nt::Value)];
    while let Some(top) = stack.pop() {
        if !ctx.tick() {
            return Err(ctx.reject("hang: table loop out of fuel"));
        }
        match top {
            Symbol::N(nt) => {
                let la = ctx.frame(classify);
                let Some(production) = table(ctx, nt, la) else {
                    return Err(ctx.reject("table error"));
                };
                for sym in production.iter().rev() {
                    stack.push(*sym);
                }
            }
            Symbol::T(expected) => {
                if !lit!(ctx, expected) {
                    return Err(ctx.reject("unexpected terminal"));
                }
            }
            Symbol::Number => {
                if !range!(ctx, b'0', b'9') {
                    return Err(ctx.reject("expected a number"));
                }
                ctx.advance();
                while range!(ctx, b'0', b'9') {
                    ctx.advance();
                }
            }
            Symbol::True => {
                if !kw!(ctx, "true") {
                    return Err(ctx.reject("expected 'true'"));
                }
            }
            Symbol::False => {
                if !kw!(ctx, "false") {
                    return Err(ctx.reject("expected 'false'"));
                }
            }
        }
    }
    ctx.expect_end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_runtime::Event;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b""[..],
            b"[",
            b"[1",
            b"[1,]",
            b"<1>",
            b"<1:2",
            b"tru",
            b"x",
            b"1]",
            b"[,1]",
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn table_cells_are_coverage_points() {
        // different productions consult different cells
        let flat = subject().run(b"1");
        let nested = subject().run(b"[1,2]");
        let flat_branches = flat.log.branches();
        let nested_branches = nested.log.branches();
        assert!(nested_branches.len() > flat_branches.len());
        // at least one synthetic table site appears
        let has_table_site = nested
            .log
            .events
            .iter()
            .any(|e| matches!(e, Event::Branch(b, _) if b.site.0 & 0xFFFF_0000 == 0x7AB1_0000));
        assert!(has_table_site);
    }

    #[test]
    fn keyword_rejection_suggests_suffix() {
        let exec = subject().run(b"tX");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        assert!(
            cands.iter().any(|c| c.bytes == b"rue".to_vec()),
            "candidates: {cands:?}"
        );
    }
}

//! The arithmetic-expression parser used as the running example in
//! Figure 1 and Section 2 of the paper.
//!
//! Grammar (inferred from the comparisons shown in Figure 1):
//!
//! ```text
//! input ::= expr
//! expr  ::= ('+' | '-')? operand (('+' | '-') operand)*
//! operand ::= number | '(' expr ')'
//! number  ::= [1-9] [0-9]*
//! ```
//!
//! The valid inputs of equation (1) in the paper — `1`, `11`, `+1`, `-1`,
//! `1+1`, `1-1`, `(1)` — are all accepted, as is the worked example
//! `(2-94)`.

use pdf_runtime::{cov, lit, lit_range, one_of, range, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented arithmetic-expression subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("arith", parse)
}

/// Valid inputs covering the grammar (equation (1) of the paper plus the
/// Figure 1 example).
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"1",
        b"11",
        b"+1",
        b"-1",
        b"1+1",
        b"1-1",
        b"(1)",
        b"(2-94)",
        b"((3))",
        b"-(5+6)-7",
    ]
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    expr(ctx)?;
    ctx.expect_end()
}

fn expr<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        // optional leading sign
        if one_of!(ctx, b"+-") {
            cov!(ctx);
            ctx.advance();
        }
        operand(ctx)?;
        loop {
            if one_of!(ctx, b"+-") {
                cov!(ctx);
                ctx.advance();
                operand(ctx)?;
            } else {
                break;
            }
        }
        Ok(())
    })
}

fn operand<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if lit!(ctx, b'(') {
            cov!(ctx);
            expr(ctx)?;
            if !lit!(ctx, b')') {
                return Err(ctx.reject("expected ')'"));
            }
            cov!(ctx);
            Ok(())
        } else if range!(ctx, b'1', b'9') {
            cov!(ctx);
            ctx.advance();
            while lit_range!(ctx, b'0', b'9') {
                cov!(ctx);
            }
            Ok(())
        } else {
            Err(ctx.reject("expected operand"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_inputs() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn accepts_worked_example() {
        assert!(subject().run(b"(2-94)").valid);
    }

    #[test]
    fn rejects_bad_inputs() {
        let s = subject();
        for input in [
            &b"A"[..],
            b"",
            b"(",
            b"(2",
            b"(2-",
            b"1+",
            b"()",
            b"0",     // numbers may not start with 0
            b"1)",    // trailing input
            b"++1",   // only one leading sign
            b"1 + 1", // no whitespace in this toy grammar
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejection_of_a_reports_figure1_comparisons() {
        // Figure 1: on input "A" the parser compares index 0 against
        // '(' , '+', '-' and the digits.
        let exec = subject().run(b"A");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        let mut bytes: Vec<u8> = cands.iter().map(|c| c.bytes[0]).collect();
        bytes.sort_unstable();
        // '(' from operand, '+','-' from the sign checks, digits 1..9
        assert!(bytes.contains(&b'('));
        assert!(bytes.contains(&b'+'));
        assert!(bytes.contains(&b'-'));
        for d in b'1'..=b'9' {
            assert!(bytes.contains(&d), "missing digit {}", d as char);
        }
        assert!(!bytes.contains(&b'0'), "leading zero must not be suggested");
    }

    #[test]
    fn valid_prefix_detects_eof() {
        // "(" is a valid prefix: the parser wants more input.
        let exec = subject().run(b"(");
        assert!(!exec.valid);
        assert!(exec.log.eof_access().is_some());
    }

    #[test]
    fn trailing_paren_comparisons_point_at_index_1() {
        let exec = subject().run(b"1)");
        assert!(!exec.valid);
        assert_eq!(exec.log.rejection_index(), Some(1));
    }
}

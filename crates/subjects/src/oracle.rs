//! Independent reference recognizers ("oracles") for the subjects.
//!
//! Every oracle answers one question — *does the subject's language
//! contain this input?* — but is written in a deliberately different
//! style from the instrumented parser it checks: table-driven DFAs and
//! iterative stack machines instead of recursive descent, line splitting
//! instead of streaming. Sharing no code (and no bugs) with the
//! parsers is the point: an accept/reject disagreement between parser
//! and oracle found by the differential harness in [`crate::diff`] is
//! evidence that one of the two mis-implements the language.
//!
//! Oracles are *recognizers only*: they never see instrumentation,
//! taints or coverage, and they must stay cheap enough to run over
//! tens of thousands of generated inputs.

/// A reference recognizer for one subject language.
pub trait Oracle {
    /// Name of the subject this oracle checks (matches the instrumented
    /// subject's name).
    fn name(&self) -> &'static str;
    /// Whether `input` is a sentence of the language.
    fn accepts(&self, input: &[u8]) -> bool;
}

/// Looks up the oracle for a subject by name. Covered subjects: `csv`,
/// `ini`, `cjson`, `arith`, `dyck` and `mjs-lexer`.
pub fn oracle_for(name: &str) -> Option<Box<dyn Oracle>> {
    match name {
        "csv" => Some(Box::new(CsvOracle)),
        "ini" => Some(Box::new(IniOracle)),
        "cjson" => Some(Box::new(JsonOracle)),
        "arith" => Some(Box::new(ArithOracle)),
        "dyck" => Some(Box::new(DyckOracle)),
        "mjs-lexer" => Some(Box::new(MjsLexOracle)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// csv — a five-state DFA (the parser is recursive descent)
// ---------------------------------------------------------------------

/// RFC-4180-style CSV recognizer as a single-pass DFA.
pub struct CsvOracle;

#[derive(Clone, Copy, PartialEq)]
enum CsvState {
    /// At the start of a field (or of the whole input / a record).
    FieldStart,
    /// Inside an unquoted field.
    Unquoted,
    /// Inside a quoted field.
    Quoted,
    /// Just saw a `"` inside a quoted field: either an escape (`""`) or
    /// the field's closing quote.
    QuoteSeen,
    /// Just saw a bare CR: only LF may follow.
    AfterCr,
}

impl Oracle for CsvOracle {
    fn name(&self) -> &'static str {
        "csv"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        use CsvState::*;
        let mut st = FieldStart;
        for &b in input {
            st = match (st, b) {
                (FieldStart, b'"') => Quoted,
                (FieldStart, b',' | b'\n') => FieldStart,
                (FieldStart, b'\r') => AfterCr,
                (FieldStart, _) => Unquoted,
                (Unquoted, b'"') => return false, // bare quote in field
                (Unquoted, b',' | b'\n') => FieldStart,
                (Unquoted, b'\r') => AfterCr,
                (Unquoted, _) => Unquoted,
                (Quoted, b'"') => QuoteSeen,
                (Quoted, _) => Quoted,
                (QuoteSeen, b'"') => Quoted, // "" escape
                (QuoteSeen, b',' | b'\n') => FieldStart,
                (QuoteSeen, b'\r') => AfterCr,
                (QuoteSeen, _) => return false, // text after closing quote
                (AfterCr, b'\n') => FieldStart,
                (AfterCr, _) => return false, // CR without LF
            };
        }
        matches!(st, FieldStart | Unquoted | QuoteSeen)
    }
}

// ---------------------------------------------------------------------
// ini — whole-line splitting (the parser is a streaming scanner)
// ---------------------------------------------------------------------

/// inih-style INI recognizer: split into lines, classify each line.
pub struct IniOracle;

fn ini_line_ok(line: &[u8]) -> bool {
    let trimmed = {
        let mut l = line;
        while let [b' ' | b'\t', rest @ ..] = l {
            l = rest;
        }
        l
    };
    match trimmed.first() {
        None => true,       // blank line
        Some(b';') => true, // comment line
        Some(b'[') => {
            // `[anything]` then only trailing whitespace or a comment
            let Some(close) = trimmed.iter().position(|&b| b == b']') else {
                return false; // no closing bracket on this line
            };
            let mut rest = &trimmed[close + 1..];
            while let [b' ' | b'\t', r @ ..] = rest {
                rest = r;
            }
            rest.is_empty() || rest[0] == b';'
        }
        Some(_) => {
            // `name = value` / `name : value`; the name must be nonempty
            match trimmed.iter().position(|&b| b == b'=' || b == b':') {
                Some(sep) => sep > 0,
                None => false,
            }
        }
    }
}

impl Oracle for IniOracle {
    fn name(&self) -> &'static str {
        "ini"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        input.split(|&b| b == b'\n').all(ini_line_ok)
    }
}

// ---------------------------------------------------------------------
// cjson — iterative stack machine (the parser is recursive descent)
// ---------------------------------------------------------------------

/// Full-JSON recognizer as an explicit-stack value validator.
pub struct JsonOracle;

fn json_skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn json_scan_hex4(b: &[u8], i: usize) -> Option<(u16, usize)> {
    if i + 4 > b.len() {
        return None;
    }
    let mut v: u16 = 0;
    for &h in &b[i..i + 4] {
        let d = match h {
            b'0'..=b'9' => h - b'0',
            b'a'..=b'f' => h - b'a' + 10,
            b'A'..=b'F' => h - b'A' + 10,
            _ => return None,
        };
        v = (v << 4) | u16::from(d);
    }
    Some((v, i + 4))
}

/// Scans a string starting at `i` (which must hold `"`); returns the
/// index just past the closing quote.
fn json_scan_string(b: &[u8], mut i: usize) -> Option<usize> {
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    loop {
        match b.get(i)? {
            b'"' => return Some(i + 1),
            b'\\' => {
                i += 1;
                match b.get(i)? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => i += 1,
                    b'u' => {
                        let (v, j) = json_scan_hex4(b, i + 1)?;
                        i = j;
                        if (0xD800..0xDC00).contains(&v) {
                            // high surrogate: a `\uDC00..\uDFFF` must follow
                            if b.get(i) != Some(&b'\\') || b.get(i + 1) != Some(&b'u') {
                                return None;
                            }
                            let (w, k) = json_scan_hex4(b, i + 2)?;
                            if !(0xDC00..0xE000).contains(&w) {
                                return None;
                            }
                            i = k;
                        } else if (0xDC00..0xE000).contains(&v) {
                            return None; // unpaired low surrogate
                        }
                    }
                    _ => return None,
                }
            }
            c if *c < 0x20 => return None, // raw control character
            _ => i += 1,
        }
    }
}

fn json_scan_number(b: &[u8], mut i: usize) -> Option<usize> {
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    match b.get(i)? {
        b'0' => i += 1,
        b'1'..=b'9' => {
            i += 1;
            while b.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        }
        _ => return None,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let frac = i;
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == frac {
            return None;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let exp = i;
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == exp {
            return None;
        }
    }
    Some(i)
}

/// Scans an object key plus `:` and returns the index where the member's
/// value starts.
fn json_scan_member_head(b: &[u8], i: usize) -> Option<usize> {
    let i = json_scan_string(b, i)?;
    let i = json_skip_ws(b, i);
    if b.get(i) != Some(&b':') {
        return None;
    }
    Some(json_skip_ws(b, i + 1))
}

fn json_valid(b: &[u8]) -> bool {
    #[derive(Clone, Copy)]
    enum Frame {
        Arr,
        Obj,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = json_skip_ws(b, 0);
    'value: loop {
        // one value starts at i
        let Some(&c) = b.get(i) else { return false };
        match c {
            b'{' => {
                i = json_skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    i += 1; // empty object is a complete value
                } else {
                    let Some(j) = json_scan_member_head(b, i) else {
                        return false;
                    };
                    i = j;
                    stack.push(Frame::Obj);
                    continue 'value;
                }
            }
            b'[' => {
                i = json_skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    i += 1; // empty array is a complete value
                } else {
                    stack.push(Frame::Arr);
                    continue 'value;
                }
            }
            b'"' => match json_scan_string(b, i) {
                Some(j) => i = j,
                None => return false,
            },
            b't' => {
                if !b[i..].starts_with(b"true") {
                    return false;
                }
                i += 4;
            }
            b'f' => {
                if !b[i..].starts_with(b"false") {
                    return false;
                }
                i += 5;
            }
            b'n' => {
                if !b[i..].starts_with(b"null") {
                    return false;
                }
                i += 4;
            }
            _ => match json_scan_number(b, i) {
                Some(j) => i = j,
                None => return false,
            },
        }
        // a value just completed: unwind containers / continue lists
        loop {
            i = json_skip_ws(b, i);
            match stack.last() {
                None => return i == b.len(),
                Some(Frame::Arr) => match b.get(i) {
                    Some(b',') => {
                        i = json_skip_ws(b, i + 1);
                        continue 'value;
                    }
                    Some(b']') => {
                        stack.pop();
                        i += 1;
                    }
                    _ => return false,
                },
                Some(Frame::Obj) => match b.get(i) {
                    Some(b',') => {
                        let Some(j) = json_scan_member_head(b, json_skip_ws(b, i + 1)) else {
                            return false;
                        };
                        i = j;
                        continue 'value;
                    }
                    Some(b'}') => {
                        stack.pop();
                        i += 1;
                    }
                    _ => return false,
                },
            }
        }
    }
}

impl Oracle for JsonOracle {
    fn name(&self) -> &'static str {
        "cjson"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        json_valid(input)
    }
}

// ---------------------------------------------------------------------
// arith — flat state machine with a depth counter (parser is recursive)
// ---------------------------------------------------------------------

/// Recognizer for the Figure 1 arithmetic grammar, with parenthesis
/// nesting tracked as a counter instead of recursion.
pub struct ArithOracle;

impl Oracle for ArithOracle {
    fn name(&self) -> &'static str {
        "arith"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            /// Start of an expression: a sign or an operand may come.
            ExprStart,
            /// After a sign or infix operator: an operand must come.
            NeedOperand,
            /// After a complete operand: operator, `)` or end.
            AfterOperand,
        }
        let mut st = St::ExprStart;
        let mut depth = 0usize;
        let mut i = 0;
        while i < input.len() {
            let b = input[i];
            match st {
                St::ExprStart | St::NeedOperand => match b {
                    b'+' | b'-' if st == St::ExprStart => st = St::NeedOperand,
                    b'(' => {
                        depth += 1;
                        st = St::ExprStart;
                    }
                    b'1'..=b'9' => {
                        while i + 1 < input.len() && input[i + 1].is_ascii_digit() {
                            i += 1;
                        }
                        st = St::AfterOperand;
                    }
                    _ => return false,
                },
                St::AfterOperand => match b {
                    b'+' | b'-' => st = St::NeedOperand,
                    b')' => {
                        if depth == 0 {
                            return false;
                        }
                        depth -= 1;
                    }
                    _ => return false,
                },
            }
            i += 1;
        }
        st == St::AfterOperand && depth == 0
    }
}

// ---------------------------------------------------------------------
// dyck — closer stack (parser is recursive descent)
// ---------------------------------------------------------------------

/// Balanced-bracket recognizer over `()[]<>{}` via an explicit stack of
/// expected closers.
pub struct DyckOracle;

impl Oracle for DyckOracle {
    fn name(&self) -> &'static str {
        "dyck"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        if input.is_empty() {
            return false; // at least one pair is required
        }
        let mut closers: Vec<u8> = Vec::new();
        for &b in input {
            match b {
                b'(' => closers.push(b')'),
                b'[' => closers.push(b']'),
                b'<' => closers.push(b'>'),
                b'{' => closers.push(b'}'),
                _ => {
                    if closers.pop() != Some(b) {
                        return false;
                    }
                }
            }
        }
        closers.is_empty()
    }
}

// ---------------------------------------------------------------------
// mjs lexer — index-based munching recognizer (the lexer streams
// through ExecCtx with tainted comparisons)
// ---------------------------------------------------------------------

/// Recognizer for the mjs token stream: accepts inputs that tokenize
/// end to end. Keywords need no special handling — a keyword and an
/// identifier are both one word token.
pub struct MjsLexOracle;

const MJS_OPERATOR_CHARS: &[u8] = b"{}()[];,:?.~+-*/%&|^!=<>";

fn mjs_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

/// Consumes one number token; `i` starts on a digit.
fn mjs_scan_number(b: &[u8], mut i: usize) -> Option<usize> {
    while b.get(i).is_some_and(u8::is_ascii_digit) {
        i += 1;
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let frac = i;
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == frac {
            return None; // digits required after the decimal point
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let exp = i;
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == exp {
            return None; // exponent digits required
        }
    }
    Some(i)
}

/// Consumes one string token; `i` starts just past the opening quote.
fn mjs_scan_string(b: &[u8], mut i: usize, quote: u8) -> Option<usize> {
    loop {
        let c = *b.get(i)?;
        if c == quote {
            return Some(i + 1);
        }
        match c {
            b'\\' => {
                i += 1;
                match b.get(i)? {
                    b'n' | b'r' | b't' | b'\\' | b'"' | b'\'' | b'0' => i += 1,
                    _ => return None,
                }
            }
            b'\n' => return None,
            _ => i += 1,
        }
    }
}

impl Oracle for MjsLexOracle {
    fn name(&self) -> &'static str {
        "mjs-lexer"
    }

    fn accepts(&self, input: &[u8]) -> bool {
        let b = input;
        let mut i = 0;
        loop {
            // trivia: whitespace and comments
            match b.get(i) {
                Some(b' ' | b'\t' | b'\n' | b'\r') => {
                    i += 1;
                    continue;
                }
                Some(b'/') if b.get(i + 1) == Some(&b'/') => {
                    i += 2;
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                }
                Some(b'/') if b.get(i + 1) == Some(&b'*') => {
                    let Some(end) = b[i + 2..].windows(2).position(|w| w == b"*/") else {
                        return false; // unterminated block comment
                    };
                    i += 2 + end + 2;
                    continue;
                }
                None => return true,
                Some(_) => {}
            }
            let c = b[i];
            if c.is_ascii_digit() {
                match mjs_scan_number(b, i) {
                    Some(j) => i = j,
                    None => return false,
                }
            } else if mjs_word_byte(c) {
                while b.get(i).copied().is_some_and(mjs_word_byte) {
                    i += 1;
                }
            } else if c == b'"' || c == b'\'' {
                match mjs_scan_string(b, i + 1, c) {
                    Some(j) => i = j,
                    None => return false,
                }
            } else if MJS_OPERATOR_CHARS.contains(&c) {
                // every compound operator's proper prefixes and suffixes
                // are themselves tokens, so munch length cannot change
                // whether the input tokenizes
                i += 1;
            } else {
                return false; // '@', '#', '`', '\\', bytes >= 0x80, ...
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_and_only_known_names() {
        for name in ["csv", "ini", "cjson", "arith", "dyck", "mjs-lexer"] {
            let o = oracle_for(name).unwrap_or_else(|| panic!("no oracle for {name}"));
            assert_eq!(o.name(), name);
        }
        assert!(oracle_for("tinyC").is_none());
        assert!(oracle_for("mjs").is_none());
    }

    #[test]
    fn csv_smoke() {
        let o = CsvOracle;
        assert!(o.accepts(b""));
        assert!(o.accepts(b"a,b\n\"c\"\"d\"\r\n"));
        assert!(!o.accepts(b"\"open"));
        assert!(!o.accepts(b"a\rb"));
    }

    #[test]
    fn ini_smoke() {
        let o = IniOracle;
        assert!(o.accepts(b"[s]\nk=v ; c\n"));
        assert!(!o.accepts(b"=v\n"));
        assert!(!o.accepts(b"[open\n"));
    }

    #[test]
    fn json_smoke() {
        let o = JsonOracle;
        assert!(o.accepts(b"{\"a\": [1, -2.5e3, \"\\ud83d\\ude00\"]}"));
        assert!(!o.accepts(b"{\"a\":}"));
        assert!(!o.accepts(b"01"));
    }

    #[test]
    fn arith_smoke() {
        let o = ArithOracle;
        assert!(o.accepts(b"-(5+6)-7"));
        assert!(!o.accepts(b"1+"));
        assert!(!o.accepts(b"0"));
    }

    #[test]
    fn dyck_smoke() {
        let o = DyckOracle;
        assert!(o.accepts(b"<{[()]}>"));
        assert!(!o.accepts(b""));
        assert!(!o.accepts(b"([)]"));
    }

    #[test]
    fn mjs_lexer_smoke() {
        let o = MjsLexOracle;
        assert!(o.accepts(b"x >>>= 'a\\n' /* c */ 1.5e-2;"));
        assert!(!o.accepts(b"1."));
        assert!(!o.accepts(b"@"));
    }
}

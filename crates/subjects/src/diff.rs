//! The differential harness: instrumented parser vs. independent oracle.
//!
//! For each covered subject, the harness feeds the same inputs —
//! corpus entries, mutated corpus entries and random byte strings — to
//! the instrumented parser and to its [`Oracle`] reference recognizer
//! and reports every accept/reject disagreement, each with a minimized
//! witness. Zero disagreements over a large seeded corpus is the
//! evidence (in the spirit of the differential checks of "Building Fast
//! Fuzzers") that the subjects implement the languages they claim to.

use pdf_runtime::{Rng, Subject};

use crate::oracle::{oracle_for, Oracle};

/// A subject paired with its oracle and a seed corpus for mutation.
pub struct DiffPair {
    /// Subject/oracle name.
    pub name: &'static str,
    /// The instrumented parser.
    pub subject: Subject,
    /// The independent reference recognizer.
    pub oracle: Box<dyn Oracle>,
    /// Valid inputs to mutate from.
    pub corpus: Vec<&'static [u8]>,
}

/// Every subject with an oracle, paired up for differential testing.
pub fn differential_pairs() -> Vec<DiffPair> {
    let entries: [(&'static str, Subject, Vec<&'static [u8]>); 6] = [
        ("csv", crate::csv::subject(), crate::csv::reference_corpus()),
        ("ini", crate::ini::subject(), crate::ini::reference_corpus()),
        (
            "cjson",
            crate::json::subject(),
            crate::json::reference_corpus(),
        ),
        (
            "arith",
            crate::arith::subject(),
            crate::arith::reference_corpus(),
        ),
        (
            "dyck",
            crate::dyck::subject(),
            crate::dyck::reference_corpus(),
        ),
        (
            "mjs-lexer",
            crate::mjs::lexer_subject(),
            crate::mjs::reference_corpus(),
        ),
    ];
    entries
        .into_iter()
        .map(|(name, subject, corpus)| DiffPair {
            name,
            subject,
            oracle: oracle_for(name).expect("oracle registered"),
            corpus,
        })
        .collect()
}

/// How the differential campaign generates inputs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// RNG seed; equal seeds generate identical input sequences.
    pub seed: u64,
    /// Number of generated inputs per subject.
    pub cases: usize,
    /// Length cap for generated inputs.
    pub max_len: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            seed: 0,
            cases: 2_000,
            max_len: 64,
        }
    }
}

/// A parser/oracle disagreement on one input.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The generated input that exposed the disagreement.
    pub input: Vec<u8>,
    /// The same disagreement shrunk to a minimal witness.
    pub witness: Vec<u8>,
    /// The instrumented parser's verdict on `witness`.
    pub parser_accepts: bool,
    /// The oracle's verdict on `witness`.
    pub oracle_accepts: bool,
}

impl Disagreement {
    /// One-line human-readable description.
    pub fn describe(&self, subject: &str) -> String {
        format!(
            "{}: parser={} oracle={} witness={:?} (from input {:?})",
            subject,
            self.parser_accepts,
            self.oracle_accepts,
            String::from_utf8_lossy(&self.witness),
            String::from_utf8_lossy(&self.input),
        )
    }
}

fn disagrees(subject: &Subject, oracle: &dyn Oracle, input: &[u8]) -> bool {
    subject.run(input).valid != oracle.accepts(input)
}

/// Shrinks `input` to a smaller input on which parser and oracle still
/// disagree: repeated single-byte deletion to a fixpoint (a light ddmin).
fn minimize(subject: &Subject, oracle: &dyn Oracle, input: &[u8]) -> Vec<u8> {
    let mut witness = input.to_vec();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let mut i = 0;
        while i < witness.len() {
            let mut shorter = witness.clone();
            shorter.remove(i);
            if disagrees(subject, oracle, &shorter) {
                witness = shorter;
                shrunk = true;
            } else {
                i += 1;
            }
        }
    }
    witness
}

/// Draws a generated input: a fresh random string or a mutated corpus
/// entry.
fn generate(rng: &mut Rng, corpus: &[&'static [u8]], max_len: usize) -> Vec<u8> {
    let random_byte = |rng: &mut Rng| {
        if rng.chance(1, 8) {
            rng.byte_any() // occasionally leave ASCII entirely
        } else {
            rng.byte_ascii()
        }
    };
    if corpus.is_empty() || rng.chance(1, 3) {
        let len = rng.gen_range(0, max_len + 1);
        return (0..len).map(|_| random_byte(rng)).collect();
    }
    let mut input = rng.pick(corpus).to_vec();
    for _ in 0..rng.gen_range(1, 5) {
        match rng.gen_range(0, 5) {
            0 if !input.is_empty() => {
                // replace a byte
                let at = rng.gen_range(0, input.len());
                input[at] = random_byte(rng);
            }
            1 => {
                // insert a byte
                let at = rng.gen_range(0, input.len() + 1);
                input.insert(at, random_byte(rng));
            }
            2 if !input.is_empty() => {
                // delete a byte
                input.remove(rng.gen_range(0, input.len()));
            }
            3 if !input.is_empty() => {
                // duplicate a slice in place
                let from = rng.gen_range(0, input.len());
                let to = rng.gen_range(from, input.len()) + 1;
                let slice = input[from..to].to_vec();
                input.extend_from_slice(&slice);
            }
            _ => {
                // splice with another corpus entry
                let other = rng.pick(corpus);
                let cut = rng.gen_range(0, input.len() + 1);
                input.truncate(cut);
                input.extend_from_slice(&other[rng.gen_range(0, other.len() + 1)..]);
            }
        }
    }
    input.truncate(max_len);
    input
}

/// Runs one subject's differential campaign: corpus + generated inputs
/// through parser and oracle, returning every disagreement (minimized).
pub fn run_differential(pair: &DiffPair, cfg: &DiffConfig) -> Vec<Disagreement> {
    let mut rng = Rng::new(cfg.seed);
    let mut found = Vec::new();
    let mut report = |input: Vec<u8>, pair: &DiffPair| {
        let witness = minimize(&pair.subject, pair.oracle.as_ref(), &input);
        let parser_accepts = pair.subject.run(&witness).valid;
        let oracle_accepts = pair.oracle.accepts(&witness);
        found.push(Disagreement {
            input,
            witness,
            parser_accepts,
            oracle_accepts,
        });
    };
    for entry in &pair.corpus {
        if disagrees(&pair.subject, pair.oracle.as_ref(), entry) {
            report(entry.to_vec(), pair);
        }
    }
    for _ in 0..cfg.cases {
        let input = generate(&mut rng, &pair.corpus, cfg.max_len);
        if disagrees(&pair.subject, pair.oracle.as_ref(), &input) {
            report(input, pair);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_all_oracle_subjects() {
        let pairs = differential_pairs();
        let names: Vec<&str> = pairs.iter().map(|p| p.name).collect();
        assert_eq!(names, ["csv", "ini", "cjson", "arith", "dyck", "mjs-lexer"]);
        for p in &pairs {
            assert_eq!(p.subject.name(), p.name);
            assert_eq!(p.oracle.name(), p.name);
            assert!(!p.corpus.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let corpus = crate::arith::reference_corpus();
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..200 {
            assert_eq!(generate(&mut a, &corpus, 32), generate(&mut b, &corpus, 32));
        }
    }

    #[test]
    fn quick_differential_smoke_finds_nothing() {
        // the full 10k-per-subject sweep lives in tests/; this is a
        // fast in-crate guard
        let cfg = DiffConfig {
            seed: 1,
            cases: 300,
            max_len: 48,
        };
        for pair in differential_pairs() {
            let disagreements = run_differential(&pair, &cfg);
            assert!(
                disagreements.is_empty(),
                "{}",
                disagreements
                    .iter()
                    .map(|d| d.describe(pair.name))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn minimize_shrinks_a_synthetic_disagreement() {
        // dyck parser vs a deliberately wrong "oracle" that accepts
        // everything: every input disagrees unless the parser accepts
        struct YesOracle;
        impl Oracle for YesOracle {
            fn name(&self) -> &'static str {
                "yes"
            }
            fn accepts(&self, _input: &[u8]) -> bool {
                true
            }
        }
        // the minimal rejected dyck input is the empty string
        let subject = crate::dyck::subject();
        let w = minimize(&subject, &YesOracle, b"((((x))))");
        assert!(w.is_empty(), "expected the empty witness, got {w:?}");
    }
}

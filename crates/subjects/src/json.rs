//! The `cjson` subject, modelled on DaveGamble's *cJSON* (Table 1:
//! 2,483 LoC).
//!
//! A complete JSON value parser: objects, arrays, strings with escapes
//! (including `\uXXXX` UTF-16 literals with surrogate pairs), numbers
//! with fraction/exponent, and the keywords `true`, `false` and `null`
//! matched `strncmp`-style, which is what lets pFuzzer synthesize them
//! from a single rejected character.
//!
//! **Faithful taint gap:** cJSON's UTF-16 → UTF-8 conversion consumes the
//! hex digits through an *implicit* information flow, which the paper's
//! prototype cannot taint ("we never reach the parts of the code
//! comparing the input with the UTF16 encoding"). We reproduce that gap:
//! inside `\u` escapes the hex digits are compared with *untracked* raw
//! reads (only coverage is recorded, no comparison events), so pFuzzer
//! sees no candidates there while AFL/KLEE can still cover the code.

use pdf_runtime::{cov, kw, lit, one_of, peek_is, range, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented cJSON subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("cjson", parse)
}

/// Valid inputs covering every value kind, escapes and nesting.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"1",
        b"-2.5e3",
        b"0.125",
        b"true",
        b"false",
        b"null",
        b"\"\"",
        b"\"hello\\n\"",
        b"\"\\u0041\"",
        b"\"\\ud83d\\ude00\"",
        b"[]",
        b"[1, 2, 3]",
        b"{}",
        b"{\"a\": 1}",
        b"{\"a\": [true, null], \"b\": {\"c\": \"d\"}}",
    ]
}

const WS: &[u8] = b" \t\n\r";

fn skip_ws<S: EventSink>(ctx: &mut ExecCtx<S>) {
    while one_of!(ctx, WS) {
        ctx.advance();
    }
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    skip_ws(ctx);
    value(ctx)?;
    skip_ws(ctx);
    ctx.expect_end()
}

fn value<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if peek_is!(ctx, b'{') {
            return object(ctx);
        }
        if peek_is!(ctx, b'[') {
            return array(ctx);
        }
        if peek_is!(ctx, b'"') {
            return string(ctx);
        }
        if kw!(ctx, "true") {
            cov!(ctx);
            return Ok(());
        }
        if kw!(ctx, "false") {
            cov!(ctx);
            return Ok(());
        }
        if kw!(ctx, "null") {
            cov!(ctx);
            return Ok(());
        }
        if peek_is!(ctx, b'-') || range!(ctx, b'0', b'9') {
            return number(ctx);
        }
        Err(ctx.reject("expected a JSON value"))
    })
}

fn object<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if !lit!(ctx, b'{') {
            return Err(ctx.reject("expected '{'"));
        }
        skip_ws(ctx);
        if lit!(ctx, b'}') {
            cov!(ctx); // empty object
            return Ok(());
        }
        loop {
            skip_ws(ctx);
            if !peek_is!(ctx, b'"') {
                return Err(ctx.reject("expected object key"));
            }
            string(ctx)?;
            skip_ws(ctx);
            if !lit!(ctx, b':') {
                return Err(ctx.reject("expected ':'"));
            }
            cov!(ctx);
            skip_ws(ctx);
            value(ctx)?;
            skip_ws(ctx);
            if lit!(ctx, b',') {
                cov!(ctx);
                continue;
            }
            if lit!(ctx, b'}') {
                cov!(ctx);
                return Ok(());
            }
            return Err(ctx.reject("expected ',' or '}'"));
        }
    })
}

fn array<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if !lit!(ctx, b'[') {
            return Err(ctx.reject("expected '['"));
        }
        skip_ws(ctx);
        if lit!(ctx, b']') {
            cov!(ctx); // empty array
            return Ok(());
        }
        loop {
            skip_ws(ctx);
            value(ctx)?;
            skip_ws(ctx);
            if lit!(ctx, b',') {
                cov!(ctx);
                continue;
            }
            if lit!(ctx, b']') {
                cov!(ctx);
                return Ok(());
            }
            return Err(ctx.reject("expected ',' or ']'"));
        }
    })
}

fn string<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if !lit!(ctx, b'"') {
            return Err(ctx.reject("expected '\"'"));
        }
        loop {
            match ctx.peek() {
                None => return Err(ctx.reject("unterminated string")),
                Some(_) => {
                    if lit!(ctx, b'"') {
                        cov!(ctx);
                        return Ok(());
                    }
                    if lit!(ctx, b'\\') {
                        cov!(ctx);
                        escape(ctx)?;
                        continue;
                    }
                    // control characters are invalid inside strings
                    if ctx.peek().is_some_and(|b| b < 0x20) {
                        return Err(ctx.reject("control character in string"));
                    }
                    ctx.advance();
                }
            }
        }
    })
}

fn escape<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if one_of!(ctx, b"\"\\/bfnrt") {
            cov!(ctx);
            ctx.advance();
            return Ok(());
        }
        if lit!(ctx, b'u') {
            cov!(ctx);
            return utf16_literal(ctx);
        }
        Err(ctx.reject("invalid escape"))
    })
}

/// `\uXXXX`, with surrogate-pair handling as in cJSON.
///
/// The hex digits are consumed through **untracked** reads — reproducing
/// the implicit-information-flow taint gap of the paper (Section 5.2,
/// json: "we never reach the parts of the code comparing the input with
/// the UTF16 encoding").
fn utf16_literal<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let first = hex4_untracked(ctx)?;
        if (0xD800..0xDC00).contains(&first) {
            cov!(ctx); // high surrogate: a low surrogate must follow
            if !lit!(ctx, b'\\') {
                return Err(ctx.reject("expected low surrogate"));
            }
            if !lit!(ctx, b'u') {
                return Err(ctx.reject("expected low surrogate"));
            }
            let second = hex4_untracked(ctx)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(ctx.reject("invalid low surrogate"));
            }
            cov!(ctx);
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(ctx.reject("unpaired low surrogate"));
        } else {
            cov!(ctx); // BMP code point, converted directly
        }
        Ok(())
    })
}

/// Reads four hex digits with raw (untainted) comparisons.
fn hex4_untracked<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<u16, ParseError> {
    let mut v: u16 = 0;
    for _ in 0..4 {
        let Some(b) = ctx.peek() else {
            return Err(ctx.reject("unterminated \\u escape"));
        };
        // plain Rust comparisons: no Cmp events, deliberately
        let d = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return Err(ctx.reject("invalid hex digit in \\u escape")),
        };
        cov!(ctx);
        v = (v << 4) | u16::from(d);
        ctx.advance();
    }
    Ok(v)
}

fn number<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if lit!(ctx, b'-') {
            cov!(ctx);
        }
        // integer part: 0 alone or [1-9][0-9]*
        if lit!(ctx, b'0') {
            cov!(ctx);
        } else if range!(ctx, b'1', b'9') {
            cov!(ctx);
            ctx.advance();
            while digit(ctx) {}
        } else {
            return Err(ctx.reject("expected digit"));
        }
        if lit!(ctx, b'.') {
            cov!(ctx);
            if !digit(ctx) {
                return Err(ctx.reject("expected fraction digit"));
            }
            while digit(ctx) {}
        }
        if one_of!(ctx, b"eE") {
            cov!(ctx);
            ctx.advance();
            if one_of!(ctx, b"+-") {
                cov!(ctx);
                ctx.advance();
            }
            if !digit(ctx) {
                return Err(ctx.reject("expected exponent digit"));
            }
            while digit(ctx) {}
        }
        Ok(())
    })
}

fn digit<S: EventSink>(ctx: &mut ExecCtx<S>) -> bool {
    if range!(ctx, b'0', b'9') {
        ctx.advance();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b""[..],
            b" ",
            b"{",
            b"[1,",
            b"tru",
            b"truex",
            b"nul",
            b"{\"a\"}",
            b"{\"a\":}",
            b"01",
            b"1.",
            b"1e",
            b"\"\\x\"",
            b"\"\\u12\"",
            b"\"\\ud800\"",        // unpaired high surrogate
            b"\"\\udc00\"",        // unpaired low surrogate
            b"\"\\ud800\\u0041\"", // high surrogate + non-surrogate
            b"[1] 2",
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn keyword_rejection_suggests_suffix() {
        // "t" at top level: kw!("true") matched 1 byte then hit EOF —
        // appending continues; "tX" diverges inside the keyword.
        let exec = subject().run(b"tX");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        assert!(
            cands.iter().any(|c| c.bytes == b"rue".to_vec()),
            "candidates: {cands:?}"
        );
    }

    #[test]
    fn utf16_hex_digits_produce_no_comparisons() {
        // The taint gap: a failing hex digit inside \u yields no
        // substitution candidates at its index.
        let exec = subject().run(b"\"\\uZ\"");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        // Candidates may exist from earlier indices (e.g. the escape
        // dispatch at the backslash), but none at the failing hex digit.
        let z_index = 3;
        assert!(
            cands.iter().all(|c| c.at_index != z_index),
            "unexpected candidates at the hex digit: {cands:?}"
        );
    }

    #[test]
    fn object_colon_suggested() {
        let exec = subject().run(b"{\"k\"x");
        let bytes: Vec<Vec<u8>> = exec
            .log
            .substitution_candidates()
            .into_iter()
            .map(|c| c.bytes)
            .collect();
        assert!(bytes.contains(&vec![b':']), "{bytes:?}");
    }

    #[test]
    fn nested_values() {
        assert!(subject().run(b"[[[[{\"a\":[null]}]]]]").valid);
    }

    #[test]
    fn whitespace_everywhere() {
        assert!(subject().run(b" { \"a\" : [ 1 , 2 ] } ").valid);
    }

    #[test]
    fn number_grammar_edge_cases() {
        let s = subject();
        assert!(s.run(b"0").valid);
        assert!(s.run(b"-0").valid);
        assert!(s.run(b"0.5").valid);
        assert!(s.run(b"1e+10").valid);
        assert!(s.run(b"1E-2").valid);
        assert!(!s.run(b"-").valid);
        assert!(!s.run(b"+1").valid);
        assert!(!s.run(b"1e+").valid);
    }
}

//! The `tinyC` subject, modelled on Marc Feeley's *Tiny-C* (Table 1:
//! 191 LoC).
//!
//! Grammar of the original:
//!
//! ```text
//! program    ::= statement
//! statement  ::= "if" paren_expr statement ["else" statement]
//!              | "while" paren_expr statement
//!              | "do" statement "while" paren_expr ";"
//!              | "{" statement* "}"
//!              | expr ";"
//!              | ";"
//! paren_expr ::= "(" expr ")"
//! expr       ::= test | id "=" expr
//! test       ::= sum ["<" sum]
//! sum        ::= term (("+"|"-") term)*
//! term       ::= id | int | paren_expr
//! ```
//!
//! Identifiers are single lowercase letters (26 variables); integers are
//! digit sequences. Like the original, the tokenizer is interleaved with
//! the parser and recognises keywords by reading a whole word into a
//! buffer and `strcmp`-ing it against the keyword table — the taint-
//! preserving path pFuzzer exploits. Parser-level comparisons are on
//! token *kinds*, which (faithfully to Section 7.2) carry no taint.
//!
//! After a successful parse the program is executed by a tree-walking
//! interpreter under the execution fuel budget, so a generated
//! `while(9);` hangs the run and counts as invalid — the situation the
//! paper had to patch by hand.

use pdf_runtime::{
    cov, one_of, peek_is, range, strcmp, EventSink, ExecCtx, ParseError, Subject, TStr,
};

/// The instrumented tinyC subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("tinyC", run)
}

/// Valid inputs covering all statements, operators and the interpreter.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b";",
        b"1;",
        b"a=1;",
        b"a=b=3;",
        b"{a=1;b=2;}",
        b"if(1)a=2;",
        b"if(a<2)a=3;else a=4;",
        b"while(a<10)a=a+1;",
        b"do a=a+1; while(a<5);",
        b"{i=1;while(i<20)i=i+i;}",
        b"if(1<2){a=1;}else{a=2;}",
        b"a=(1+2)-3;",
    ]
}

// ---------------------------------------------------------------------------
// tokens
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Do,
    Else,
    If,
    While,
    Lbra,
    Rbra,
    Lpar,
    Rpar,
    Plus,
    Minus,
    Less,
    Semi,
    Equal,
    Id(u8),
    Int(i64),
    Eof,
}

struct Lexer {
    tok: Tok,
}

const KEYWORDS: [(&str, Tok); 4] = [
    ("do", Tok::Do),
    ("else", Tok::Else),
    ("if", Tok::If),
    ("while", Tok::While),
];

impl Lexer {
    fn new<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Self, ParseError> {
        let mut lx = Lexer { tok: Tok::Eof };
        lx.next_token(ctx)?;
        Ok(lx)
    }

    /// Reads the next token, recording tracked character comparisons
    /// (direct taint flow) and a tracked `strcmp` per keyword-table entry
    /// (taint preserved through the copy, as the paper's wrapped
    /// `strcpy`/`strcmp` do).
    fn next_token<S: EventSink>(&mut self, ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
        ctx.frame(|ctx| {
            cov!(ctx);
            while one_of!(ctx, b" \t\n\r") {
                ctx.advance();
            }
            if ctx.peek().is_none() {
                self.tok = Tok::Eof;
                return Ok(());
            }
            // integers
            if range!(ctx, b'0', b'9') {
                cov!(ctx);
                let mut v: i64 = 0;
                while let Some(b) = ctx.peek() {
                    if range!(ctx, b'0', b'9') {
                        v = v.saturating_mul(10).saturating_add(i64::from(b - b'0'));
                        ctx.advance();
                    } else {
                        break;
                    }
                }
                self.tok = Tok::Int(v);
                return Ok(());
            }
            // words: keywords or single-letter identifiers
            if range!(ctx, b'a', b'z') {
                cov!(ctx);
                let mut word = TStr::new();
                while let Some(b) = ctx.peek() {
                    if range!(ctx, b'a', b'z') {
                        word.push(b, ctx.pos());
                        ctx.advance();
                    } else {
                        break;
                    }
                }
                for (kw, tok) in KEYWORDS {
                    if strcmp!(ctx, &word, kw) {
                        cov!(ctx);
                        self.tok = tok;
                        return Ok(());
                    }
                }
                if word.len() == 1 {
                    cov!(ctx);
                    self.tok = Tok::Id(word.byte(0) - b'a');
                    return Ok(());
                }
                return Err(ctx.reject("unknown identifier"));
            }
            // single-character symbols
            let sym = [
                (b'{', Tok::Lbra),
                (b'}', Tok::Rbra),
                (b'(', Tok::Lpar),
                (b')', Tok::Rpar),
                (b'+', Tok::Plus),
                (b'-', Tok::Minus),
                (b'<', Tok::Less),
                (b';', Tok::Semi),
                (b'=', Tok::Equal),
            ];
            for (b, tok) in sym {
                if peek_is!(ctx, b) {
                    cov!(ctx);
                    ctx.advance();
                    self.tok = tok;
                    return Ok(());
                }
            }
            Err(ctx.reject("unexpected character"))
        })
    }
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Stmt {
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    DoWhile(Box<Stmt>, Expr),
    Block(Vec<Stmt>),
    Expr(Expr),
    Empty,
}

#[derive(Debug, Clone)]
enum Expr {
    Assign(u8, Box<Expr>),
    Less(Box<Expr>, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Var(u8),
    Lit(i64),
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

fn run<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    let mut lx = Lexer::new(ctx)?;
    let prog = statement(ctx, &mut lx)?;
    if lx.tok != Tok::Eof {
        return Err(ctx.reject("trailing input after program"));
    }
    cov!(ctx);
    // `ctx.expect_end` already happened implicitly: the lexer consumed to
    // EOF. Now execute the program (the paper's subjects "also execute").
    let mut vars = [0i64; 26];
    exec_stmt(ctx, &prog, &mut vars)?;
    Ok(())
}

fn statement<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Stmt, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        match lx.tok {
            Tok::If => {
                cov!(ctx);
                lx.next_token(ctx)?;
                let cond = paren_expr(ctx, lx)?;
                let then = Box::new(statement(ctx, lx)?);
                if lx.tok == Tok::Else {
                    cov!(ctx);
                    lx.next_token(ctx)?;
                    let els = Box::new(statement(ctx, lx)?);
                    Ok(Stmt::If(cond, then, Some(els)))
                } else {
                    Ok(Stmt::If(cond, then, None))
                }
            }
            Tok::While => {
                cov!(ctx);
                lx.next_token(ctx)?;
                let cond = paren_expr(ctx, lx)?;
                let body = Box::new(statement(ctx, lx)?);
                Ok(Stmt::While(cond, body))
            }
            Tok::Do => {
                cov!(ctx);
                lx.next_token(ctx)?;
                let body = Box::new(statement(ctx, lx)?);
                if lx.tok != Tok::While {
                    return Err(ctx.reject("expected 'while' after do-body"));
                }
                cov!(ctx);
                lx.next_token(ctx)?;
                let cond = paren_expr(ctx, lx)?;
                if lx.tok != Tok::Semi {
                    return Err(ctx.reject("expected ';' after do-while"));
                }
                lx.next_token(ctx)?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::Lbra => {
                cov!(ctx);
                lx.next_token(ctx)?;
                let mut stmts = Vec::new();
                while lx.tok != Tok::Rbra {
                    if lx.tok == Tok::Eof {
                        return Err(ctx.reject("unterminated block"));
                    }
                    stmts.push(statement(ctx, lx)?);
                }
                lx.next_token(ctx)?;
                Ok(Stmt::Block(stmts))
            }
            Tok::Semi => {
                cov!(ctx);
                lx.next_token(ctx)?;
                Ok(Stmt::Empty)
            }
            _ => {
                cov!(ctx);
                let e = expr(ctx, lx)?;
                if lx.tok != Tok::Semi {
                    return Err(ctx.reject("expected ';' after expression"));
                }
                lx.next_token(ctx)?;
                Ok(Stmt::Expr(e))
            }
        }
    })
}

fn paren_expr<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if lx.tok != Tok::Lpar {
            return Err(ctx.reject("expected '('"));
        }
        lx.next_token(ctx)?;
        let e = expr(ctx, lx)?;
        if lx.tok != Tok::Rpar {
            return Err(ctx.reject("expected ')'"));
        }
        lx.next_token(ctx)?;
        Ok(e)
    })
}

fn expr<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        // like the original: parse a test, then turn `var = ...` into an
        // assignment if an '=' follows
        let t = test(ctx, lx)?;
        if let Expr::Var(v) = t {
            if lx.tok == Tok::Equal {
                cov!(ctx);
                lx.next_token(ctx)?;
                let rhs = expr(ctx, lx)?;
                return Ok(Expr::Assign(v, Box::new(rhs)));
            }
        }
        Ok(t)
    })
}

fn test<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let lhs = sum(ctx, lx)?;
        if lx.tok == Tok::Less {
            cov!(ctx);
            lx.next_token(ctx)?;
            let rhs = sum(ctx, lx)?;
            Ok(Expr::Less(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    })
}

fn sum<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let mut acc = term(ctx, lx)?;
        loop {
            match lx.tok {
                Tok::Plus => {
                    cov!(ctx);
                    lx.next_token(ctx)?;
                    let rhs = term(ctx, lx)?;
                    acc = Expr::Add(Box::new(acc), Box::new(rhs));
                }
                Tok::Minus => {
                    cov!(ctx);
                    lx.next_token(ctx)?;
                    let rhs = term(ctx, lx)?;
                    acc = Expr::Sub(Box::new(acc), Box::new(rhs));
                }
                _ => return Ok(acc),
            }
        }
    })
}

fn term<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        match lx.tok {
            Tok::Id(v) => {
                cov!(ctx);
                lx.next_token(ctx)?;
                Ok(Expr::Var(v))
            }
            Tok::Int(n) => {
                cov!(ctx);
                lx.next_token(ctx)?;
                Ok(Expr::Lit(n))
            }
            Tok::Lpar => paren_expr(ctx, lx),
            _ => Err(ctx.reject("expected a term")),
        }
    })
}

// ---------------------------------------------------------------------------
// interpreter
// ---------------------------------------------------------------------------

fn exec_stmt<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    s: &Stmt,
    vars: &mut [i64; 26],
) -> Result<(), ParseError> {
    if !ctx.tick() {
        return Err(ctx.reject("hang: execution fuel exhausted"));
    }
    match s {
        Stmt::If(c, t, e) => {
            if eval(ctx, c, vars)? != 0 {
                exec_stmt(ctx, t, vars)
            } else if let Some(e) = e {
                exec_stmt(ctx, e, vars)
            } else {
                Ok(())
            }
        }
        Stmt::While(c, body) => {
            while eval(ctx, c, vars)? != 0 {
                exec_stmt(ctx, body, vars)?;
            }
            Ok(())
        }
        Stmt::DoWhile(body, c) => {
            loop {
                exec_stmt(ctx, body, vars)?;
                if eval(ctx, c, vars)? == 0 {
                    break;
                }
            }
            Ok(())
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                exec_stmt(ctx, s, vars)?;
            }
            Ok(())
        }
        Stmt::Expr(e) => {
            eval(ctx, e, vars)?;
            Ok(())
        }
        Stmt::Empty => Ok(()),
    }
}

fn eval<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    e: &Expr,
    vars: &mut [i64; 26],
) -> Result<i64, ParseError> {
    if !ctx.tick() {
        return Err(ctx.reject("hang: execution fuel exhausted"));
    }
    Ok(match e {
        Expr::Assign(v, rhs) => {
            let val = eval(ctx, rhs, vars)?;
            vars[usize::from(*v)] = val;
            val
        }
        Expr::Less(a, b) => i64::from(eval(ctx, a, vars)? < eval(ctx, b, vars)?),
        Expr::Add(a, b) => eval(ctx, a, vars)?.wrapping_add(eval(ctx, b, vars)?),
        Expr::Sub(a, b) => eval(ctx, a, vars)?.wrapping_sub(eval(ctx, b, vars)?),
        Expr::Var(v) => vars[usize::from(*v)],
        Expr::Lit(n) => *n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b""[..],
            b"a=1",       // missing ';'
            b"foo=1;",    // multi-letter identifier that is no keyword
            b"if a=1;",   // missing parens
            b"while()a;", // empty condition
            b"do a=1;",   // missing while
            b"{a=1;",     // unterminated block
            b"a=1;;b=2;", // trailing input after program (two statements)
            b"A=1;",      // uppercase identifier
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn space_seed_is_invalid_but_harmless() {
        // a single space is whitespace then EOF: no statement
        // (the original tinyC also errors on an empty program; AFL still
        // uses the seed for mutation)
        assert!(!subject().run(b" ").valid);
    }

    #[test]
    fn semicolon_is_shortest_valid_input() {
        assert!(subject().run(b";").valid);
    }

    #[test]
    fn keyword_prefix_suggests_suffix() {
        // "wh(" — the word "wh" strcmp'd against "while" suggests "ile"
        let exec = subject().run(b"wh(1);");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        assert!(
            cands.iter().any(|c| c.bytes == b"ile".to_vec()),
            "candidates: {cands:?}"
        );
    }

    #[test]
    fn infinite_loop_is_a_hang() {
        let exec = subject().run(b"while(9);");
        assert!(!exec.valid);
        assert!(exec.error.unwrap().contains("hang"));
    }

    #[test]
    fn terminating_loop_is_valid() {
        assert!(subject().run(b"while(0);").valid);
        assert!(subject().run(b"{i=0;while(i<3)i=i+1;}").valid);
    }

    #[test]
    fn do_while_executes_at_least_once() {
        assert!(subject().run(b"do i=i+1; while(i<1);").valid);
    }

    #[test]
    fn nested_statements() {
        assert!(
            subject()
                .run(b"{if(a<1){while(b<2)b=b+1;}else{do c=c-1; while(0);}}")
                .valid
        );
    }

    #[test]
    fn stack_depth_grows_with_expression_nesting() {
        let shallow = subject().run(b"a=1;");
        let deep = subject().run(b"a=((((1))));");
        let d1 = shallow.log.comparisons().map(|c| c.depth).max().unwrap();
        let d2 = deep.log.comparisons().map(|c| c.depth).max().unwrap();
        assert!(d2 > d1, "shallow {d1}, deep {d2}");
    }
}

//! The `csv` subject, modelled on JamesRamm's *csv_parser* (Table 1:
//! 297 LoC).
//!
//! RFC-4180-style CSV: rows separated by `\n` (optionally `\r\n`), fields
//! separated by commas, and quoted fields in which `""` escapes a quote.
//! Almost every input is valid — the paper notes that for ini and csv
//! "covering all combinations of two characters achieves perfect
//! coverage" — the only rejections are an unterminated quoted field,
//! text after a closing quote, and a bare quote inside an unquoted field.

use pdf_runtime::{cov, lit, peek_is, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented csv subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("csv", parse)
}

/// Valid inputs covering unquoted/quoted fields, escapes and CRLF.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"",
        b" ",
        b"a",
        b"a,b,c\n",
        b"a,b\nc,d\n",
        b"\"quoted\"",
        b"\"a,b\",c\n",
        b"\"he said \"\"hi\"\"\"\n",
        b"x,\"y\"\r\n",
        b",,\n",
    ]
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    while ctx.peek().is_some() {
        record(ctx)?;
    }
    Ok(())
}

/// One record: fields separated by commas, terminated by newline or EOF.
fn record<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        field(ctx)?;
        loop {
            if lit!(ctx, b',') {
                cov!(ctx);
                field(ctx)?;
                continue;
            }
            if lit!(ctx, b'\r') {
                cov!(ctx);
                if !lit!(ctx, b'\n') {
                    return Err(ctx.reject("CR without LF"));
                }
                return Ok(());
            }
            if lit!(ctx, b'\n') {
                cov!(ctx);
                return Ok(());
            }
            if ctx.peek().is_none() {
                return Ok(());
            }
            return Err(ctx.reject("unexpected character after field"));
        }
    })
}

fn field<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        if lit!(ctx, b'"') {
            cov!(ctx);
            return quoted_field(ctx);
        }
        // unquoted: anything except comma, newline, quote
        loop {
            match ctx.peek() {
                None => return Ok(()),
                Some(_) => {
                    if peek_is!(ctx, b',') || peek_is!(ctx, b'\n') || peek_is!(ctx, b'\r') {
                        return Ok(());
                    }
                    if peek_is!(ctx, b'"') {
                        return Err(ctx.reject("bare quote in unquoted field"));
                    }
                    ctx.advance();
                }
            }
        }
    })
}

fn quoted_field<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        loop {
            match ctx.peek() {
                None => return Err(ctx.reject("unterminated quoted field")),
                Some(_) => {
                    if lit!(ctx, b'"') {
                        // "" is an escaped quote, anything else ends the field
                        if lit!(ctx, b'"') {
                            cov!(ctx);
                            continue;
                        }
                        cov!(ctx);
                        return Ok(());
                    }
                    ctx.advance();
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b"\"unterminated"[..],
            b"\"a\"x", // garbage after closing quote
            b"ab\"cd", // bare quote inside unquoted field
            b"a\rb",   // CR without LF
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn space_seed_is_valid() {
        assert!(subject().run(b" ").valid);
    }

    #[test]
    fn unterminated_quote_wants_more_input() {
        let exec = subject().run(b"\"abc");
        assert!(!exec.valid);
        assert!(exec.log.eof_access().is_some());
    }

    #[test]
    fn garbage_after_quote_suggests_structural_chars() {
        let exec = subject().run(b"\"a\"x");
        let bytes: Vec<u8> = exec
            .log
            .substitution_candidates()
            .iter()
            .map(|c| c.bytes[0])
            .collect();
        assert!(bytes.contains(&b','), "candidates: {bytes:?}");
        assert!(bytes.contains(&b'\n'));
        assert!(bytes.contains(&b'"')); // "" escape continues the field
    }

    #[test]
    fn empty_fields_ok() {
        assert!(subject().run(b",\n,").valid);
    }
}

//! Instrumented subjects for the pFuzzer reproduction.
//!
//! The paper evaluates on five C parsers with increasing input complexity
//! (Table 1): inih, csvparser, cJSON, tinyC and mjs. This crate
//! re-implements each subject's *input language and parser structure* —
//! recursive descent, single-character lookahead, `strcmp`-style keyword
//! matching, and (for tinyC and mjs) an interleaved tokenizer that breaks
//! direct taint flow exactly as Section 7.2 of the paper describes — on
//! top of the [`pdf_runtime`] instrumentation substrate.
//!
//! Two additional subjects implement the paper's running examples: the
//! arithmetic-expression parser of Figure 1 / Section 2 ([`arith`]) and
//! the balanced-parenthesis (Dyck) language of Section 3 ([`dyck`]).
//!
//! Every subject module exports:
//! - `subject()` — the instrumented [`pdf_runtime::Subject`],
//! - `reference_corpus()` — hand-written valid inputs covering the
//!   language's features (used for the coverage universe and for tests).
//!
//! # Example
//!
//! ```
//! let json = pdf_subjects::json::subject();
//! assert!(json.run(b"{\"a\": [1, true, null]}").valid);
//! assert!(!json.run(b"{").valid);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod chaos;
pub mod csv;
pub mod diff;
pub mod dyck;
pub mod ini;
pub mod json;
pub mod mjs;
pub mod oracle;
pub mod tabular;
pub mod tinyc;

use pdf_runtime::Subject;

/// Static description of a subject, mirroring Table 1 of the paper.
#[derive(Debug, Clone, Copy)]
pub struct SubjectInfo {
    /// Subject name as used in the paper.
    pub name: &'static str,
    /// The date the paper's authors accessed the original source.
    pub accessed: &'static str,
    /// Lines of code of the original C implementation (Table 1).
    pub original_loc: usize,
    /// The instrumented re-implementation.
    pub subject: Subject,
    /// Reference corpus of valid inputs.
    pub corpus: fn() -> Vec<&'static [u8]>,
}

/// The five evaluation subjects of Table 1, in the paper's order.
pub fn evaluation_subjects() -> Vec<SubjectInfo> {
    vec![
        SubjectInfo {
            name: "ini",
            accessed: "2018-10-25",
            original_loc: 293,
            subject: ini::subject(),
            corpus: ini::reference_corpus,
        },
        SubjectInfo {
            name: "csv",
            accessed: "2018-10-25",
            original_loc: 297,
            subject: csv::subject(),
            corpus: csv::reference_corpus,
        },
        SubjectInfo {
            name: "cjson",
            accessed: "2018-10-25",
            original_loc: 2483,
            subject: json::subject(),
            corpus: json::reference_corpus,
        },
        SubjectInfo {
            name: "tinyC",
            accessed: "2018-10-25",
            original_loc: 191,
            subject: tinyc::subject(),
            corpus: tinyc::reference_corpus,
        },
        SubjectInfo {
            name: "mjs",
            accessed: "2018-06-21",
            original_loc: 10_920,
            subject: mjs::subject(),
            corpus: mjs::reference_corpus,
        },
    ]
}

/// All subjects including the running examples (`arith`, `dyck`).
pub fn all_subjects() -> Vec<SubjectInfo> {
    let mut v = evaluation_subjects();
    v.push(SubjectInfo {
        name: "arith",
        accessed: "-",
        original_loc: 0,
        subject: arith::subject(),
        corpus: arith::reference_corpus,
    });
    v.push(SubjectInfo {
        name: "dyck",
        accessed: "-",
        original_loc: 0,
        subject: dyck::subject(),
        corpus: dyck::reference_corpus,
    });
    v.push(SubjectInfo {
        name: "tabular",
        accessed: "-",
        original_loc: 0,
        subject: tabular::subject(),
        corpus: tabular::reference_corpus,
    });
    v.push(SubjectInfo {
        name: "mjs-lexer",
        accessed: "2018-06-21",
        original_loc: 0,
        subject: mjs::lexer_subject(),
        corpus: mjs::reference_corpus,
    });
    v
}

/// Looks a subject up by its paper name.
pub fn by_name(name: &str) -> Option<SubjectInfo> {
    all_subjects().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_evaluation_subjects_in_paper_order() {
        let names: Vec<&str> = evaluation_subjects().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["ini", "csv", "cjson", "tinyC", "mjs"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mjs").is_some());
        assert!(by_name("arith").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_reference_corpus_is_accepted() {
        for info in all_subjects() {
            for input in (info.corpus)() {
                let exec = info.subject.run(input);
                assert!(
                    exec.valid,
                    "{}: corpus input {:?} rejected: {:?}",
                    info.name,
                    String::from_utf8_lossy(input),
                    exec.error
                );
            }
        }
    }

    #[test]
    fn table1_locs_match_paper() {
        let locs: Vec<usize> = evaluation_subjects()
            .iter()
            .map(|s| s.original_loc)
            .collect();
        assert_eq!(locs, vec![293, 297, 2483, 191, 10_920]);
    }
}

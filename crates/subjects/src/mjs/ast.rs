//! mjs abstract syntax tree.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Ushr,
    Eq,
    StrictEq,
    NotEq,
    StrictNotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    And,
    Or,
    In,
    Instanceof,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    Neg,
    Plus,
    Not,
    BitNot,
    Typeof,
    Void,
    Delete,
}

/// Assignment operators (`=` and the compound forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Ushr,
}

use pdf_runtime::TStr;

/// Expressions.
#[derive(Debug, Clone)]
pub(crate) enum Expr {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Undefined,
    This,
    /// Identifier, kept tainted so global builtin lookup can `strcmp` it.
    Ident(TStr),
    Array(Vec<Expr>),
    Object(Vec<(String, Expr)>),
    Function(Vec<String>, Vec<Stmt>),
    Unary(UnOp, Box<Expr>),
    /// Pre- or post-increment/decrement; `inc` selects ++ vs --.
    Update {
        target: Box<Expr>,
        inc: bool,
        prefix: bool,
    },
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    New(Box<Expr>, Vec<Expr>),
    /// `obj.name` — the member name stays tainted so runtime property
    /// lookup can `strcmp` it against builtin method tables.
    Member(Box<Expr>, TStr),
    /// `obj[expr]`
    Index(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone)]
pub(crate) enum Stmt {
    Expr(Expr),
    /// `var`/`let`/`const` declaration list.
    Decl(Vec<(String, Option<Expr>)>),
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    DoWhile(Box<Stmt>, Expr),
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    ForIn {
        var: String,
        object: Expr,
        body: Box<Stmt>,
    },
    Block(Vec<Stmt>),
    Return(Option<Expr>),
    Break,
    Continue,
    Throw(Expr),
    Try {
        body: Vec<Stmt>,
        catch: Option<(String, Vec<Stmt>)>,
        finally: Option<Vec<Stmt>>,
    },
    Switch {
        scrutinee: Expr,
        cases: Vec<(Expr, Vec<Stmt>)>,
        default: Option<Vec<Stmt>>,
    },
    With(Expr, Box<Stmt>),
    FunctionDecl(String, Vec<String>, Vec<Stmt>),
    Debugger,
    Empty,
}

//! The `mjs` subject, modelled on Cesanta's *mjs* embedded JavaScript
//! engine (Table 1: 10,920 LoC) — the paper's most challenging subject.
//!
//! The implementation mirrors the original's architecture:
//!
//! - a **tokenizer** interleaved with the parser (`lexer`): identifier
//!   text is copied into a tainted buffer and `strcmp`-ed against the
//!   keyword table (taint-preserving, Section 7.2), single- and
//!   multi-character operators are matched with tracked character
//!   comparisons, and the parser itself compares token *kinds*, which
//!   carry no taint;
//! - a **recursive-descent parser** (`parser`) covering the statement
//!   and expression grammar of the mjs subset: `var`/`let`/`const`,
//!   `if`/`else`, `while`, `do`-`while`, `for` (classic and `for-in`),
//!   `switch`, `try`/`catch`/`finally`, `throw`, `with`, functions,
//!   and the full C-style operator ladder up to `?:` and the compound
//!   assignments, including `===`, `>>>` and `>>>=`;
//! - a **tree-walking interpreter** (`interp`) with JavaScript-ish
//!   values and the builtin objects (`JSON`, `Math`, `Object`, `String`,
//!   `Array`) whose property lookups `strcmp` tainted member names
//!   against method tables (`stringify`, `indexOf`, ...) — the runtime
//!   comparisons that let pFuzzer synthesize those names.
//!
//! As in the paper's setup, *semantic checking is disabled*: runtime type
//! errors evaluate to `undefined` rather than aborting, so validity is
//! decided by the parser (plus the fuel budget, which turns infinite
//! loops into rejections).

mod ast;
mod interp;
mod lexer;
mod parser;

use pdf_runtime::{cov, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented mjs subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("mjs", run)
}

/// The instrumented mjs *lexer* as a standalone subject: an input is
/// valid when it tokenizes end to end, with no parsing on top. This is
/// the counterpart the `mjs-lexer` oracle is differentially checked
/// against — token-level validity is oracle-checkable, while full-mjs
/// validity would require a second parser implementation.
pub fn lexer_subject() -> Subject {
    pdf_runtime::instrument_subject!("mjs-lexer", run_lexer)
}

/// Valid inputs covering statements, operators, literals and builtins.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"1;",
        b"x = 1 + 2;",
        b"var a = 3;",
        b"let b = \"str\";",
        b"const c = 'q';",
        b"if (x) y = 1; else y = 2;",
        b"while (false) x = 1;",
        b"do x = 1; while (false);",
        b"for (i = 0; i < 3; i++) x = x + i;",
        b"for (k in obj) x = k;",
        b"function f(a, b) { return a + b; } f(1, 2);",
        b"x = typeof 1;",
        b"delete a.b;",
        b"x = a === b;",
        b"x = 1 >>> 2;",
        b"x >>>= 1;",
        b"try { throw 1; } catch (e) { x = e; } finally { y = 1; }",
        b"switch (x) { case 1: break; default: y = 2; }",
        b"x = [1, 2, 3].indexOf(2);",
        b"x = JSON.stringify([1, true, null]);",
        b"x = \"abc\".length;",
        b"x = {a: 1, b: [2]};",
        b"x = a ? b : c;",
        b"x = new Object();",
        b"x = a instanceof Object;",
        b"with (o) x = 1;",
        b"x = void 0;",
        b"continue_later = undefined;",
        b"debugger;",
        b"x = NaN; y = this;",
        b"while (x < 3) { x += 1; if (x == 2) continue; }",
        b"for (;;) break;",
    ]
}

fn run<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    let program = parser::parse_program(ctx)?;
    cov!(ctx);
    interp::execute(ctx, &program)
}

fn run_lexer<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    let mut lx = lexer::Lexer::new(ctx)?;
    while lx.tok != lexer::Tok::Eof {
        lx.advance(ctx)?;
    }
    cov!(ctx);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            let exec = s.run(input);
            assert!(
                exec.valid,
                "{:?}: {:?}",
                String::from_utf8_lossy(input),
                exec.error
            );
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b""[..],
            b"if",
            b"if (",
            b"if (1",
            b"x = ;",
            b"function",
            b"function f(",
            b"var 1 = 2;",
            b"x = 1 +;",
            b"{",
            b"switch (x) {",
            b"try { }", // try needs catch or finally
            b"x = 'unterminated",
            b"@",
            b"x = 1", // no ASI in this subject: semicolon required
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn empty_statement_is_valid() {
        assert!(subject().run(b";").valid);
    }

    #[test]
    fn lexer_subject_accepts_token_soup() {
        let s = lexer_subject();
        // not a valid program, but every piece tokenizes
        assert!(s.run(b"if ) 1.5 'str' >>>= foo").valid);
        assert!(s.run(b"").valid);
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn lexer_subject_rejects_lex_errors() {
        let s = lexer_subject();
        for input in [&b"@"[..], b"1.", b"1e+", b"'open", b"/* open", b"\"a\nb\""] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn keyword_prefix_is_strcmped_against_typeof() {
        // "typ" is itself a valid identifier statement, but the lexer's
        // keyword table produced a partial "typeof" match whose suffix
        // pFuzzer can splice in (Algorithm 1 derives substitutions from
        // valid inputs too, via validInp → addInputs).
        let exec = subject().run(b"typ;");
        assert!(exec.valid);
        let cmp = exec
            .log
            .comparisons()
            .find(|c| matches!(&c.expected, pdf_runtime::CmpValue::Str { full, .. } if full == b"typeof"))
            .expect("typeof strcmp recorded");
        assert!(!cmp.outcome);
        let mut scratch = pdf_runtime::ReplacementScratch::default();
        cmp.expected.satisfying_replacements_into(&mut scratch);
        assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![&b"eof"[..]]);
    }

    #[test]
    fn runtime_member_lookup_compares_builtin_names() {
        // executing JSON.strin... produces a strcmp against "stringify"
        let exec = subject().run(b"x = JSON.strin;");
        assert!(exec.valid); // semantic checks disabled: lookup yields undefined
        let has_stringify_cmp = exec.log.comparisons().any(|c| {
            matches!(&c.expected, pdf_runtime::CmpValue::Str { full, .. } if full == b"stringify")
        });
        assert!(has_stringify_cmp);
    }

    #[test]
    fn infinite_loop_is_a_hang() {
        let exec = subject().run(b"for (;;) x = 1;");
        assert!(!exec.valid);
        assert!(exec.error.unwrap().contains("hang"));
    }

    #[test]
    fn for_loop_keyword_from_figure() {
        // "Being able to produce a for deserves a special recommendation"
        assert!(subject().run(b"for (x = 0; x < 2; x = x + 1) y = x;").valid);
    }
}

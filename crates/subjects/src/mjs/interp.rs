//! The mjs tree-walking interpreter.
//!
//! Runs the parsed program under the execution fuel budget. As in the
//! paper's setup, semantic checking is disabled: type errors, unknown
//! variables and uncaught exceptions all complete "successfully" (they
//! evaluate to `undefined`); only fuel exhaustion (a hang) rejects the
//! input.
//!
//! The interesting instrumentation happens in property and global
//! lookup: member names are tainted strings, and resolving them against
//! the builtin tables (`JSON.stringify`, `"".indexOf`, `Math.floor`, …)
//! performs tracked `strcmp`s — the runtime comparisons that let pFuzzer
//! synthesize those names character by character.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pdf_runtime::{cov, strcmp, EventSink, ExecCtx, ParseError, TStr};

use super::ast::{AssignOp, BinOp, Expr, Stmt, UnOp};

/// Runtime values.
#[derive(Debug, Clone)]
pub(crate) enum Value {
    Undefined,
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Rc<RefCell<Vec<Value>>>),
    Object(Rc<RefCell<BTreeMap<String, Value>>>),
    Func(Rc<FuncDef>),
    /// A builtin namespace object (`JSON`, `Math`, ...).
    Namespace(&'static str),
    /// A builtin function, optionally bound to a receiver.
    Builtin(&'static str, Option<Box<Value>>),
}

#[derive(Debug)]
pub(crate) struct FuncDef {
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

/// Non-local control flow (and the hang signal).
enum Interrupt {
    Break,
    Continue,
    Return(Value),
    Throw(Value),
    Hang(ParseError),
}

type R<T> = Result<T, Interrupt>;

struct Env {
    globals: BTreeMap<String, Value>,
    locals: Vec<BTreeMap<String, Value>>,
}

impl Env {
    fn new() -> Self {
        Env {
            globals: BTreeMap::new(),
            locals: Vec::new(),
        }
    }

    fn get_plain(&self, name: &str) -> Option<Value> {
        for frame in self.locals.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(v.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn set(&mut self, name: &str, v: Value) {
        for frame in self.locals.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(name) {
                *slot = v;
                return;
            }
        }
        self.globals.insert(name.to_string(), v);
    }

    fn declare(&mut self, name: &str, v: Value) {
        match self.locals.last_mut() {
            Some(frame) => {
                frame.insert(name.to_string(), v);
            }
            None => {
                self.globals.insert(name.to_string(), v);
            }
        }
    }
}

/// Builtin global names, `strcmp`-ed on every unresolved identifier.
const GLOBALS: [&str; 7] = [
    "JSON", "Math", "Object", "String", "Array", "NaN", "Infinity",
];
/// `JSON` namespace methods.
const JSON_METHODS: [&str; 2] = ["stringify", "parse"];
/// `Math` namespace methods.
const MATH_METHODS: [&str; 7] = ["abs", "floor", "ceil", "pow", "min", "max", "sqrt"];
/// String instance properties.
const STRING_PROPS: [&str; 5] = ["length", "indexOf", "slice", "split", "charAt"];
/// Array instance properties.
const ARRAY_PROPS: [&str; 5] = ["length", "indexOf", "slice", "push", "join"];
/// `Object` namespace methods.
const OBJECT_METHODS: [&str; 1] = ["keys"];

/// Executes the program. Returns an error only on a hang (fuel
/// exhaustion); everything else — including uncaught exceptions — is a
/// successful run, since semantic checking is disabled.
pub(crate) fn execute<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    program: &[Stmt],
) -> Result<(), ParseError> {
    let mut env = Env::new();
    hoist_functions(program, &mut env);
    for stmt in program {
        match exec(ctx, stmt, &mut env) {
            Ok(_) | Err(Interrupt::Break) | Err(Interrupt::Continue) => {}
            Err(Interrupt::Return(_)) | Err(Interrupt::Throw(_)) => return Ok(()),
            Err(Interrupt::Hang(e)) => return Err(e),
        }
    }
    Ok(())
}

fn hoist_functions(stmts: &[Stmt], env: &mut Env) {
    for s in stmts {
        if let Stmt::FunctionDecl(name, params, body) = s {
            env.declare(
                name,
                Value::Func(Rc::new(FuncDef {
                    params: params.clone(),
                    body: body.clone(),
                })),
            );
        }
    }
}

fn tick<S: EventSink>(ctx: &mut ExecCtx<S>) -> R<()> {
    if ctx.tick() {
        Ok(())
    } else {
        Err(Interrupt::Hang(ParseError::new(
            "hang: execution fuel exhausted",
        )))
    }
}

fn exec<S: EventSink>(ctx: &mut ExecCtx<S>, stmt: &Stmt, env: &mut Env) -> R<Value> {
    tick(ctx)?;
    match stmt {
        Stmt::Expr(e) => eval(ctx, e, env),
        Stmt::Decl(decls) => {
            for (name, init) in decls {
                let v = match init {
                    Some(e) => eval(ctx, e, env)?,
                    None => Value::Undefined,
                };
                env.declare(name, v);
            }
            Ok(Value::Undefined)
        }
        Stmt::If(cond, then, els) => {
            if truthy(&eval(ctx, cond, env)?) {
                exec(ctx, then, env)
            } else if let Some(e) = els {
                exec(ctx, e, env)
            } else {
                Ok(Value::Undefined)
            }
        }
        Stmt::While(cond, body) => {
            while truthy(&eval(ctx, cond, env)?) {
                match exec(ctx, body, env) {
                    Ok(_) | Err(Interrupt::Continue) => {}
                    Err(Interrupt::Break) => break,
                    Err(other) => return Err(other),
                }
            }
            Ok(Value::Undefined)
        }
        Stmt::DoWhile(body, cond) => {
            loop {
                match exec(ctx, body, env) {
                    Ok(_) | Err(Interrupt::Continue) => {}
                    Err(Interrupt::Break) => break,
                    Err(other) => return Err(other),
                }
                if !truthy(&eval(ctx, cond, env)?) {
                    break;
                }
            }
            Ok(Value::Undefined)
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                exec(ctx, init, env)?;
            }
            loop {
                if let Some(c) = cond {
                    if !truthy(&eval(ctx, c, env)?) {
                        break;
                    }
                }
                match exec(ctx, body, env) {
                    Ok(_) | Err(Interrupt::Continue) => {}
                    Err(Interrupt::Break) => break,
                    Err(other) => return Err(other),
                }
                if let Some(s) = step {
                    eval(ctx, s, env)?;
                }
            }
            Ok(Value::Undefined)
        }
        Stmt::ForIn { var, object, body } => {
            let obj = eval(ctx, object, env)?;
            let keys: Vec<String> = match &obj {
                Value::Object(map) => map.borrow().keys().cloned().collect(),
                Value::Array(items) => (0..items.borrow().len()).map(|i| i.to_string()).collect(),
                Value::Str(s) => (0..s.len()).map(|i| i.to_string()).collect(),
                _ => Vec::new(),
            };
            for key in keys {
                tick(ctx)?;
                env.set(var, Value::Str(key));
                match exec(ctx, body, env) {
                    Ok(_) | Err(Interrupt::Continue) => {}
                    Err(Interrupt::Break) => break,
                    Err(other) => return Err(other),
                }
            }
            Ok(Value::Undefined)
        }
        Stmt::Block(stmts) => {
            hoist_functions(stmts, env);
            for s in stmts {
                exec(ctx, s, env)?;
            }
            Ok(Value::Undefined)
        }
        Stmt::Return(e) => {
            let v = match e {
                Some(e) => eval(ctx, e, env)?,
                None => Value::Undefined,
            };
            Err(Interrupt::Return(v))
        }
        Stmt::Break => Err(Interrupt::Break),
        Stmt::Continue => Err(Interrupt::Continue),
        Stmt::Throw(e) => {
            let v = eval(ctx, e, env)?;
            Err(Interrupt::Throw(v))
        }
        Stmt::Try {
            body,
            catch,
            finally,
        } => {
            let mut result = (|| -> R<Value> {
                hoist_functions(body, env);
                for s in body {
                    exec(ctx, s, env)?;
                }
                Ok(Value::Undefined)
            })();
            if let Err(Interrupt::Throw(exn)) = result {
                cov!(ctx);
                result = match catch {
                    Some((binding, handler)) => {
                        env.declare(binding, exn);
                        (|| -> R<Value> {
                            for s in handler {
                                exec(ctx, s, env)?;
                            }
                            Ok(Value::Undefined)
                        })()
                    }
                    None => Ok(Value::Undefined),
                };
            }
            if let Some(fin) = finally {
                cov!(ctx);
                for s in fin {
                    exec(ctx, s, env)?;
                }
            }
            result
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            let v = eval(ctx, scrutinee, env)?;
            let mut matched = false;
            let run = |ctx: &mut ExecCtx<S>, body: &[Stmt], env: &mut Env| -> R<bool> {
                for s in body {
                    match exec(ctx, s, env) {
                        Ok(_) => {}
                        Err(Interrupt::Break) => return Ok(true),
                        Err(other) => return Err(other),
                    }
                }
                Ok(false)
            };
            for (case_val, body) in cases {
                if !matched {
                    let cv = eval(ctx, case_val, env)?;
                    matched = strict_eq(&v, &cv);
                }
                if matched {
                    cov!(ctx);
                    if run(ctx, body, env)? {
                        return Ok(Value::Undefined);
                    }
                }
            }
            if let Some(body) = default {
                cov!(ctx);
                run(ctx, body, env)?;
            }
            Ok(Value::Undefined)
        }
        Stmt::With(obj, body) => {
            // scope injection is out of scope; evaluate and run
            eval(ctx, obj, env)?;
            exec(ctx, body, env)
        }
        Stmt::FunctionDecl(..) => Ok(Value::Undefined), // hoisted
        Stmt::Debugger => Ok(Value::Undefined),
        Stmt::Empty => Ok(Value::Undefined),
    }
}

fn eval<S: EventSink>(ctx: &mut ExecCtx<S>, expr: &Expr, env: &mut Env) -> R<Value> {
    tick(ctx)?;
    match expr {
        Expr::Num(n) => Ok(Value::Num(*n)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Null => Ok(Value::Null),
        Expr::Undefined => Ok(Value::Undefined),
        Expr::This => Ok(Value::Undefined), // no receiver semantics
        Expr::Ident(name) => Ok(lookup_ident(ctx, name, env)),
        Expr::Array(items) => {
            let mut out = Vec::with_capacity(items.len());
            for e in items {
                out.push(eval(ctx, e, env)?);
            }
            Ok(Value::Array(Rc::new(RefCell::new(out))))
        }
        Expr::Object(props) => {
            let mut map = BTreeMap::new();
            for (k, e) in props {
                let v = eval(ctx, e, env)?;
                map.insert(k.clone(), v);
            }
            Ok(Value::Object(Rc::new(RefCell::new(map))))
        }
        Expr::Function(params, body) => Ok(Value::Func(Rc::new(FuncDef {
            params: params.clone(),
            body: body.clone(),
        }))),
        Expr::Unary(op, inner) => {
            if *op == UnOp::Delete {
                return eval_delete(ctx, inner, env);
            }
            let v = eval(ctx, inner, env)?;
            Ok(match op {
                UnOp::Neg => Value::Num(-to_number(&v)),
                UnOp::Plus => Value::Num(to_number(&v)),
                UnOp::Not => Value::Bool(!truthy(&v)),
                UnOp::BitNot => Value::Num(!(to_i32(&v)) as f64),
                UnOp::Typeof => Value::Str(type_of(&v).to_string()),
                UnOp::Void => Value::Undefined,
                UnOp::Delete => unreachable!(),
            })
        }
        Expr::Update {
            target,
            inc,
            prefix,
        } => {
            let old = to_number(&eval(ctx, target, env)?);
            let new = if *inc { old + 1.0 } else { old - 1.0 };
            assign_to(ctx, target, Value::Num(new), env)?;
            Ok(Value::Num(if *prefix { new } else { old }))
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(ctx, *op, lhs, rhs, env),
        Expr::Ternary(c, t, e) => {
            if truthy(&eval(ctx, c, env)?) {
                eval(ctx, t, env)
            } else {
                eval(ctx, e, env)
            }
        }
        Expr::Assign(op, target, rhs) => {
            let value = if *op == AssignOp::Assign {
                eval(ctx, rhs, env)?
            } else {
                let old = eval(ctx, target, env)?;
                let new = eval(ctx, rhs, env)?;
                compound(*op, &old, &new)
            };
            assign_to(ctx, target, value.clone(), env)?;
            Ok(value)
        }
        Expr::Call(callee, args) => eval_call(ctx, callee, args, env),
        Expr::New(callee, args) => {
            // `new F(...)`: call F with a fresh object-ish receiver;
            // builtins construct their natural value
            let f = eval(ctx, callee, env)?;
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval(ctx, a, env)?);
            }
            match f {
                Value::Namespace(ns) => Ok(construct_namespace(ns, argv)),
                Value::Func(def) => call_function(ctx, &def, argv, env),
                _ => Ok(Value::Undefined),
            }
        }
        Expr::Member(obj, name) => {
            let o = eval(ctx, obj, env)?;
            Ok(member_lookup(ctx, &o, name))
        }
        Expr::Index(obj, idx) => {
            let o = eval(ctx, obj, env)?;
            let i = eval(ctx, idx, env)?;
            Ok(index_lookup(&o, &i))
        }
    }
}

/// Resolves an identifier: scopes first, then the builtin global table
/// via tracked `strcmp` — the paper's taint-preserving path into names
/// like `JSON`.
fn lookup_ident<S: EventSink>(ctx: &mut ExecCtx<S>, name: &TStr, env: &mut Env) -> Value {
    let text = name.as_str().unwrap_or_default();
    if let Some(v) = env.get_plain(text) {
        return v;
    }
    for g in GLOBALS {
        if strcmp!(ctx, name, g) {
            cov!(ctx);
            return match g {
                "NaN" => Value::Num(f64::NAN),
                "Infinity" => Value::Num(f64::INFINITY),
                other => Value::Namespace(match other {
                    "JSON" => "JSON",
                    "Math" => "Math",
                    "Object" => "Object",
                    "String" => "String",
                    _ => "Array",
                }),
            };
        }
    }
    Value::Undefined
}

/// Property lookup with tracked `strcmp` against the builtin tables.
fn member_lookup<S: EventSink>(ctx: &mut ExecCtx<S>, obj: &Value, name: &TStr) -> Value {
    match obj {
        Value::Namespace("JSON") => {
            for m in JSON_METHODS {
                if strcmp!(ctx, name, m) {
                    cov!(ctx);
                    return Value::Builtin(m, None);
                }
            }
            Value::Undefined
        }
        Value::Namespace("Math") => {
            for m in MATH_METHODS {
                if strcmp!(ctx, name, m) {
                    cov!(ctx);
                    return Value::Builtin(m, None);
                }
            }
            Value::Undefined
        }
        Value::Namespace("Object") => {
            for m in OBJECT_METHODS {
                if strcmp!(ctx, name, m) {
                    cov!(ctx);
                    return Value::Builtin(m, None);
                }
            }
            Value::Undefined
        }
        Value::Str(s) => {
            for m in STRING_PROPS {
                if strcmp!(ctx, name, m) {
                    cov!(ctx);
                    if m == "length" {
                        return Value::Num(s.len() as f64);
                    }
                    return Value::Builtin(m, Some(Box::new(obj.clone())));
                }
            }
            Value::Undefined
        }
        Value::Array(items) => {
            for m in ARRAY_PROPS {
                if strcmp!(ctx, name, m) {
                    cov!(ctx);
                    if m == "length" {
                        return Value::Num(items.borrow().len() as f64);
                    }
                    return Value::Builtin(m, Some(Box::new(obj.clone())));
                }
            }
            Value::Undefined
        }
        Value::Object(map) => map
            .borrow()
            .get(name.as_str().unwrap_or_default())
            .cloned()
            .unwrap_or(Value::Undefined),
        _ => Value::Undefined,
    }
}

fn index_lookup(obj: &Value, idx: &Value) -> Value {
    match obj {
        Value::Array(items) => {
            let i = to_number(idx);
            if i >= 0.0 && (i as usize) < items.borrow().len() {
                items.borrow()[i as usize].clone()
            } else {
                Value::Undefined
            }
        }
        Value::Object(map) => map
            .borrow()
            .get(&to_display_string(idx))
            .cloned()
            .unwrap_or(Value::Undefined),
        Value::Str(s) => {
            let i = to_number(idx);
            if i >= 0.0 && (i as usize) < s.len() {
                Value::Str(s[i as usize..=i as usize].to_string())
            } else {
                Value::Undefined
            }
        }
        _ => Value::Undefined,
    }
}

fn eval_delete<S: EventSink>(ctx: &mut ExecCtx<S>, target: &Expr, env: &mut Env) -> R<Value> {
    match target {
        Expr::Member(obj, name) => {
            let o = eval(ctx, obj, env)?;
            if let Value::Object(map) = o {
                map.borrow_mut().remove(name.as_str().unwrap_or_default());
            }
            Ok(Value::Bool(true))
        }
        Expr::Index(obj, idx) => {
            let o = eval(ctx, obj, env)?;
            let i = eval(ctx, idx, env)?;
            if let Value::Object(map) = o {
                map.borrow_mut().remove(&to_display_string(&i));
            }
            Ok(Value::Bool(true))
        }
        other => {
            eval(ctx, other, env)?;
            Ok(Value::Bool(true))
        }
    }
}

fn assign_to<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    target: &Expr,
    value: Value,
    env: &mut Env,
) -> R<()> {
    match target {
        Expr::Ident(name) => {
            env.set(name.as_str().unwrap_or_default(), value);
            Ok(())
        }
        Expr::Member(obj, name) => {
            let o = eval(ctx, obj, env)?;
            if let Value::Object(map) = o {
                map.borrow_mut()
                    .insert(name.as_str().unwrap_or_default().to_string(), value);
            }
            Ok(())
        }
        Expr::Index(obj, idx) => {
            let o = eval(ctx, obj, env)?;
            let i = eval(ctx, idx, env)?;
            match o {
                Value::Object(map) => {
                    map.borrow_mut().insert(to_display_string(&i), value);
                }
                Value::Array(items) => {
                    let n = to_number(&i);
                    if n >= 0.0 {
                        let n = n as usize;
                        let mut items = items.borrow_mut();
                        if n < items.len() {
                            items[n] = value;
                        } else if n < items.len() + 1024 {
                            items.resize(n + 1, Value::Undefined);
                            items[n] = value;
                        }
                    }
                }
                _ => {}
            }
            Ok(())
        }
        _ => Ok(()), // unassignable: semantic checking disabled
    }
}

fn eval_binary<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    env: &mut Env,
) -> R<Value> {
    // short-circuit forms first
    match op {
        BinOp::And => {
            let l = eval(ctx, lhs, env)?;
            if !truthy(&l) {
                return Ok(l);
            }
            return eval(ctx, rhs, env);
        }
        BinOp::Or => {
            let l = eval(ctx, lhs, env)?;
            if truthy(&l) {
                return Ok(l);
            }
            return eval(ctx, rhs, env);
        }
        _ => {}
    }
    let l = eval(ctx, lhs, env)?;
    let r = eval(ctx, rhs, env)?;
    Ok(binary_values(op, &l, &r))
}

fn binary_values(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::Add => match (l, r) {
            (Value::Str(a), b) => Value::Str(format!("{a}{}", to_display_string(b))),
            (a, Value::Str(b)) => Value::Str(format!("{}{b}", to_display_string(a))),
            (a, b) => Value::Num(to_number(a) + to_number(b)),
        },
        BinOp::Sub => Value::Num(to_number(l) - to_number(r)),
        BinOp::Mul => Value::Num(to_number(l) * to_number(r)),
        BinOp::Div => Value::Num(to_number(l) / to_number(r)),
        BinOp::Rem => Value::Num(to_number(l) % to_number(r)),
        BinOp::Pow => Value::Num(to_number(l).powf(to_number(r))),
        BinOp::BitAnd => Value::Num((to_i32(l) & to_i32(r)) as f64),
        BinOp::BitOr => Value::Num((to_i32(l) | to_i32(r)) as f64),
        BinOp::BitXor => Value::Num((to_i32(l) ^ to_i32(r)) as f64),
        BinOp::Shl => Value::Num((to_i32(l) << (to_u32(r) & 31)) as f64),
        BinOp::Shr => Value::Num((to_i32(l) >> (to_u32(r) & 31)) as f64),
        BinOp::Ushr => Value::Num((to_u32(l) >> (to_u32(r) & 31)) as f64),
        BinOp::Eq => Value::Bool(loose_eq(l, r)),
        BinOp::NotEq => Value::Bool(!loose_eq(l, r)),
        BinOp::StrictEq => Value::Bool(strict_eq(l, r)),
        BinOp::StrictNotEq => Value::Bool(!strict_eq(l, r)),
        BinOp::Lt => compare(l, r, |o| o == std::cmp::Ordering::Less),
        BinOp::Gt => compare(l, r, |o| o == std::cmp::Ordering::Greater),
        BinOp::LtEq => compare(l, r, |o| o != std::cmp::Ordering::Greater),
        BinOp::GtEq => compare(l, r, |o| o != std::cmp::Ordering::Less),
        BinOp::In => match r {
            Value::Object(map) => Value::Bool(map.borrow().contains_key(&to_display_string(l))),
            Value::Array(items) => {
                let i = to_number(l);
                Value::Bool(i >= 0.0 && (i as usize) < items.borrow().len())
            }
            _ => Value::Bool(false),
        },
        BinOp::Instanceof => Value::Bool(matches!(
            (l, r),
            (Value::Object(_), Value::Namespace("Object"))
                | (Value::Array(_), Value::Namespace("Array"))
                | (Value::Array(_), Value::Namespace("Object"))
        )),
        BinOp::And | BinOp::Or => unreachable!("short-circuit handled by caller"),
    }
}

fn compound(op: AssignOp, old: &Value, new: &Value) -> Value {
    let bin = match op {
        AssignOp::Assign => unreachable!("plain assignment handled by caller"),
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Rem => BinOp::Rem,
        AssignOp::BitAnd => BinOp::BitAnd,
        AssignOp::BitOr => BinOp::BitOr,
        AssignOp::BitXor => BinOp::BitXor,
        AssignOp::Shl => BinOp::Shl,
        AssignOp::Shr => BinOp::Shr,
        AssignOp::Ushr => BinOp::Ushr,
    };
    binary_values(bin, old, new)
}

fn eval_call<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    callee: &Expr,
    args: &[Expr],
    env: &mut Env,
) -> R<Value> {
    let f = eval(ctx, callee, env)?;
    let mut argv = Vec::with_capacity(args.len());
    for a in args {
        argv.push(eval(ctx, a, env)?);
    }
    match f {
        Value::Func(def) => call_function(ctx, &def, argv, env),
        Value::Builtin(name, receiver) => Ok(call_builtin(ctx, name, receiver.as_deref(), &argv)),
        // `Array(...)`, `Object()`, `String(x)` work without `new` in JS
        Value::Namespace(ns) => Ok(construct_namespace(ns, argv)),
        _ => Ok(Value::Undefined), // calling a non-function: no semantic check
    }
}

/// Calling or `new`-ing a builtin namespace constructs its natural value.
fn construct_namespace(ns: &str, argv: Vec<Value>) -> Value {
    match ns {
        "Object" => Value::Object(Rc::new(RefCell::new(BTreeMap::new()))),
        "Array" => Value::Array(Rc::new(RefCell::new(argv))),
        "String" => Value::Str(argv.first().map(to_display_string).unwrap_or_default()),
        _ => Value::Undefined,
    }
}

fn call_function<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    def: &FuncDef,
    argv: Vec<Value>,
    env: &mut Env,
) -> R<Value> {
    tick(ctx)?;
    let mut frame = BTreeMap::new();
    for (i, p) in def.params.iter().enumerate() {
        frame.insert(p.clone(), argv.get(i).cloned().unwrap_or(Value::Undefined));
    }
    env.locals.push(frame);
    hoist_functions(&def.body, env);
    let mut result = Value::Undefined;
    for s in &def.body {
        match exec(ctx, s, env) {
            Ok(_) => {}
            Err(Interrupt::Return(v)) => {
                result = v;
                break;
            }
            Err(other) => {
                env.locals.pop();
                return Err(other);
            }
        }
    }
    env.locals.pop();
    Ok(result)
}

fn call_builtin<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    name: &str,
    receiver: Option<&Value>,
    argv: &[Value],
) -> Value {
    cov!(ctx);
    let arg = |i: usize| argv.get(i).cloned().unwrap_or(Value::Undefined);
    match (name, receiver) {
        ("stringify", _) => Value::Str(json_stringify(&arg(0))),
        ("parse", _) => Value::Undefined, // parsing JSON strings at runtime is out of scope
        ("abs", _) => Value::Num(to_number(&arg(0)).abs()),
        ("floor", _) => Value::Num(to_number(&arg(0)).floor()),
        ("ceil", _) => Value::Num(to_number(&arg(0)).ceil()),
        ("sqrt", _) => Value::Num(to_number(&arg(0)).sqrt()),
        ("pow", _) => Value::Num(to_number(&arg(0)).powf(to_number(&arg(1)))),
        ("min", _) => Value::Num(to_number(&arg(0)).min(to_number(&arg(1)))),
        ("max", _) => Value::Num(to_number(&arg(0)).max(to_number(&arg(1)))),
        ("keys", _) => match arg(0) {
            Value::Object(map) => Value::Array(Rc::new(RefCell::new(
                map.borrow().keys().map(|k| Value::Str(k.clone())).collect(),
            ))),
            _ => Value::Array(Rc::new(RefCell::new(Vec::new()))),
        },
        ("indexOf", Some(Value::Str(s))) => {
            let needle = to_display_string(&arg(0));
            Value::Num(s.find(&needle).map_or(-1.0, |i| i as f64))
        }
        ("indexOf", Some(Value::Array(items))) => {
            let needle = arg(0);
            let found = items.borrow().iter().position(|v| strict_eq(v, &needle));
            Value::Num(found.map_or(-1.0, |i| i as f64))
        }
        ("slice", Some(Value::Str(s))) => {
            let start = clamp_index(to_number(&arg(0)), s.len());
            let end = if argv.len() > 1 {
                clamp_index(to_number(&arg(1)), s.len())
            } else {
                s.len()
            };
            Value::Str(s.get(start..end.max(start)).unwrap_or("").to_string())
        }
        ("slice", Some(Value::Array(items))) => {
            let len = items.borrow().len();
            let start = clamp_index(to_number(&arg(0)), len);
            let end = if argv.len() > 1 {
                clamp_index(to_number(&arg(1)), len)
            } else {
                len
            };
            Value::Array(Rc::new(RefCell::new(
                items.borrow()[start..end.max(start)].to_vec(),
            )))
        }
        ("split", Some(Value::Str(s))) => {
            let sep = to_display_string(&arg(0));
            let parts: Vec<Value> = if sep.is_empty() {
                s.chars().map(|c| Value::Str(c.to_string())).collect()
            } else {
                s.split(&sep).map(|p| Value::Str(p.to_string())).collect()
            };
            Value::Array(Rc::new(RefCell::new(parts)))
        }
        ("charAt", Some(Value::Str(s))) => {
            let i = to_number(&arg(0));
            if i >= 0.0 && (i as usize) < s.len() {
                Value::Str(s[i as usize..=i as usize].to_string())
            } else {
                Value::Str(String::new())
            }
        }
        ("push", Some(Value::Array(items))) => {
            for v in argv {
                items.borrow_mut().push(v.clone());
            }
            Value::Num(items.borrow().len() as f64)
        }
        ("join", Some(Value::Array(items))) => {
            let sep = if argv.is_empty() {
                ",".to_string()
            } else {
                to_display_string(&arg(0))
            };
            let joined: Vec<String> = items.borrow().iter().map(to_display_string).collect();
            Value::Str(joined.join(&sep))
        }
        _ => Value::Undefined,
    }
}

fn clamp_index(i: f64, len: usize) -> usize {
    if i.is_nan() {
        return 0;
    }
    if i < 0.0 {
        len.saturating_sub((-i) as usize)
    } else {
        (i as usize).min(len)
    }
}

// ---------------------------------------------------------------------------
// coercions
// ---------------------------------------------------------------------------

pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Undefined | Value::Null => false,
        Value::Bool(b) => *b,
        Value::Num(n) => *n != 0.0 && !n.is_nan(),
        Value::Str(s) => !s.is_empty(),
        _ => true,
    }
}

fn to_number(v: &Value) -> f64 {
    match v {
        Value::Num(n) => *n,
        Value::Bool(true) => 1.0,
        Value::Bool(false) | Value::Null => 0.0,
        Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
        _ => f64::NAN,
    }
}

fn to_i32(v: &Value) -> i32 {
    let n = to_number(v);
    if n.is_nan() || n.is_infinite() {
        0
    } else {
        n as i64 as i32
    }
}

fn to_u32(v: &Value) -> u32 {
    to_i32(v) as u32
}

fn to_display_string(v: &Value) -> String {
    match v {
        Value::Undefined => "undefined".to_string(),
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => format_num(*n),
        Value::Str(s) => s.clone(),
        Value::Array(items) => items
            .borrow()
            .iter()
            .map(to_display_string)
            .collect::<Vec<_>>()
            .join(","),
        Value::Object(_) => "[object Object]".to_string(),
        Value::Func(_) | Value::Builtin(..) => "[function]".to_string(),
        Value::Namespace(n) => format!("[object {n}]"),
    }
}

fn format_num(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn type_of(v: &Value) -> &'static str {
    match v {
        Value::Undefined => "undefined",
        Value::Null => "object",
        Value::Bool(_) => "boolean",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) | Value::Object(_) | Value::Namespace(_) => "object",
        Value::Func(_) | Value::Builtin(..) => "function",
    }
}

pub(crate) fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Array(x), Value::Array(y)) => Rc::ptr_eq(x, y),
        (Value::Object(x), Value::Object(y)) => Rc::ptr_eq(x, y),
        (Value::Namespace(x), Value::Namespace(y)) => x == y,
        _ => false,
    }
}

fn loose_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
        (Value::Num(_), Value::Str(_)) | (Value::Str(_), Value::Num(_)) => {
            to_number(a) == to_number(b)
        }
        (Value::Bool(_), _) => loose_eq(&Value::Num(to_number(a)), b),
        (_, Value::Bool(_)) => loose_eq(a, &Value::Num(to_number(b))),
        _ => strict_eq(a, b),
    }
}

fn compare(l: &Value, r: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> Value {
    if let (Value::Str(a), Value::Str(b)) = (l, r) {
        return Value::Bool(pred(a.cmp(b)));
    }
    let (a, b) = (to_number(l), to_number(r));
    match a.partial_cmp(&b) {
        Some(o) => Value::Bool(pred(o)),
        None => Value::Bool(false), // NaN comparisons are false
    }
}

fn json_stringify(v: &Value) -> String {
    match v {
        Value::Undefined => "null".to_string(),
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.is_finite() {
                format_num(*n)
            } else {
                "null".to_string()
            }
        }
        Value::Str(s) => format!("{s:?}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.borrow().iter().map(json_stringify).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(map) => {
            let inner: Vec<String> = map
                .borrow()
                .iter()
                .map(|(k, v)| format!("{k:?}:{}", json_stringify(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Value::Func(_) | Value::Builtin(..) | Value::Namespace(_) => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_program;
    use super::*;

    /// Runs a program and returns the final value of global `x`.
    fn run_x(src: &[u8]) -> Value {
        let mut ctx = ExecCtx::new(src);
        let program = parse_program(&mut ctx).expect("parse");
        let mut env = Env::new();
        hoist_functions(&program, &mut env);
        for stmt in &program {
            match exec(&mut ctx, stmt, &mut env) {
                Ok(_) => {}
                Err(Interrupt::Hang(e)) => panic!("hang: {e}"),
                Err(_) => break,
            }
        }
        env.get_plain("x").unwrap_or(Value::Undefined)
    }

    fn num(v: &Value) -> f64 {
        match v {
            Value::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn strv(v: &Value) -> String {
        match v {
            Value::Str(s) => s.clone(),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(num(&run_x(b"x = 1 + 2 * 3;")), 7.0);
        assert_eq!(num(&run_x(b"x = 2 ** 10;")), 1024.0);
        assert_eq!(num(&run_x(b"x = 7 % 4;")), 3.0);
        assert_eq!(num(&run_x(b"x = -5;")), -5.0);
    }

    #[test]
    fn string_concat() {
        assert_eq!(strv(&run_x(b"x = 'a' + 1;")), "a1");
        assert_eq!(strv(&run_x(b"x = 1 + 'b';")), "1b");
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(num(&run_x(b"x = 6 & 3;")), 2.0);
        assert_eq!(num(&run_x(b"x = 6 | 3;")), 7.0);
        assert_eq!(num(&run_x(b"x = 6 ^ 3;")), 5.0);
        assert_eq!(num(&run_x(b"x = 1 << 4;")), 16.0);
        assert_eq!(num(&run_x(b"x = -8 >> 1;")), -4.0);
        assert_eq!(num(&run_x(b"x = -1 >>> 28;")), 15.0);
    }

    #[test]
    fn equality() {
        assert!(truthy(&run_x(b"x = 1 == '1';")));
        assert!(!truthy(&run_x(b"x = 1 === '1';")));
        assert!(truthy(&run_x(b"x = null == undefined;")));
        assert!(!truthy(&run_x(b"x = null === undefined;")));
        assert!(truthy(&run_x(b"x = 1 !== 2;")));
    }

    #[test]
    fn control_flow() {
        assert_eq!(num(&run_x(b"x = 0; for (i = 0; i < 5; i++) x += i;")), 10.0);
        assert_eq!(num(&run_x(b"x = 0; while (x < 7) x++;")), 7.0);
        assert_eq!(num(&run_x(b"x = 0; do x++; while (x < 3);")), 3.0);
        assert_eq!(
            num(&run_x(
                b"x = 0; for (i = 0; i < 10; i++) { if (i == 3) break; x = i; }"
            )),
            2.0
        );
        assert_eq!(
            num(&run_x(
                b"x = 0; for (i = 0; i < 5; i++) { if (i % 2) continue; x += i; }"
            )),
            6.0
        );
    }

    #[test]
    fn functions_and_return() {
        assert_eq!(
            num(&run_x(b"function f(a, b) { return a * b; } x = f(6, 7);")),
            42.0
        );
        assert_eq!(
            num(&run_x(b"x = (function (n) { return n + 1; })(9);")),
            10.0
        );
        // recursion
        assert_eq!(
            num(&run_x(
                b"function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } x = fib(10);"
            )),
            55.0
        );
    }

    #[test]
    fn objects_and_arrays() {
        assert_eq!(num(&run_x(b"o = {a: 1, b: 2}; x = o.a + o.b;")), 3.0);
        assert_eq!(num(&run_x(b"a = [1, 2, 3]; x = a[0] + a[2];")), 4.0);
        assert_eq!(num(&run_x(b"a = [1]; a.push(5); x = a.length;")), 2.0);
        assert_eq!(num(&run_x(b"o = {}; o.k = 9; x = o.k;")), 9.0);
        assert_eq!(
            num(&run_x(
                b"o = {a:1}; delete o.a; x = o.a === undefined ? 1 : 0;"
            )),
            1.0
        );
    }

    #[test]
    fn for_in_iterates_keys() {
        assert_eq!(strv(&run_x(b"x = ''; for (k in {a:1, b:2}) x += k;")), "ab");
    }

    #[test]
    fn builtins() {
        assert_eq!(
            strv(&run_x(b"x = JSON.stringify([1, true, null]);")),
            "[1,true,null]"
        );
        assert_eq!(num(&run_x(b"x = Math.abs(-4);")), 4.0);
        assert_eq!(num(&run_x(b"x = Math.pow(2, 8);")), 256.0);
        assert_eq!(num(&run_x(b"x = 'hello'.indexOf('ll');")), 2.0);
        assert_eq!(num(&run_x(b"x = 'hello'.length;")), 5.0);
        assert_eq!(strv(&run_x(b"x = 'a,b,c'.split(',')[1];")), "b");
        assert_eq!(strv(&run_x(b"x = 'abc'.slice(1, 2);")), "b");
        assert_eq!(num(&run_x(b"x = [4, 5, 6].indexOf(6);")), 2.0);
        assert_eq!(strv(&run_x(b"x = [1, 2].join('-');")), "1-2");
        assert_eq!(num(&run_x(b"x = Object.keys({p: 1, q: 2}).length;")), 2.0);
    }

    #[test]
    fn typeof_and_void() {
        assert_eq!(strv(&run_x(b"x = typeof 1;")), "number");
        assert_eq!(strv(&run_x(b"x = typeof 'a';")), "string");
        assert_eq!(strv(&run_x(b"x = typeof undefined;")), "undefined");
        assert_eq!(strv(&run_x(b"x = typeof {};")), "object");
        assert_eq!(strv(&run_x(b"x = typeof function () {};")), "function");
        assert!(matches!(run_x(b"x = void 1;"), Value::Undefined));
    }

    #[test]
    fn exceptions() {
        assert_eq!(num(&run_x(b"try { throw 42; } catch (e) { x = e; }")), 42.0);
        assert_eq!(
            num(&run_x(
                b"x = 0; try { throw 1; } catch (e) { x = 1; } finally { x += 10; }"
            )),
            11.0
        );
        // uncaught throw: execution stops but run is still "valid"
        assert_eq!(num(&run_x(b"x = 1; throw 'boom'; x = 2;")), 1.0);
    }

    #[test]
    fn switch_semantics() {
        assert_eq!(
            num(&run_x(
                b"x = 0; switch (2) { case 1: x = 1; break; case 2: x = 2; break; }"
            )),
            2.0
        );
        // fallthrough
        assert_eq!(
            num(&run_x(
                b"x = 0; switch (1) { case 1: x += 1; case 2: x += 2; }"
            )),
            3.0
        );
        assert_eq!(
            num(&run_x(
                b"x = 0; switch (9) { case 1: x = 1; default: x = 7; }"
            )),
            7.0
        );
    }

    #[test]
    fn update_expressions() {
        assert_eq!(num(&run_x(b"a = 1; x = a++; x = x * 10 + a;")), 12.0);
        assert_eq!(num(&run_x(b"a = 1; x = ++a; x = x * 10 + a;")), 22.0);
    }

    #[test]
    fn compound_assignment() {
        assert_eq!(num(&run_x(b"x = 8; x >>>= 2;")), 2.0);
        assert_eq!(num(&run_x(b"x = 3; x <<= 2;")), 12.0);
        assert_eq!(num(&run_x(b"x = 5; x &= 3;")), 1.0);
        assert_eq!(strv(&run_x(b"x = 'a'; x += 'b';")), "ab");
    }

    #[test]
    fn nan_and_infinity_globals() {
        assert!(matches!(run_x(b"x = NaN;"), Value::Num(n) if n.is_nan()));
        assert!(matches!(run_x(b"x = Infinity;"), Value::Num(n) if n.is_infinite()));
    }

    #[test]
    fn for_of_iterates_like_for_in() {
        assert_eq!(strv(&run_x(b"x = ''; for (k of {a:1, b:2}) x += k;")), "ab");
    }

    #[test]
    fn with_statement_executes_body() {
        assert_eq!(num(&run_x(b"o = {}; with (o) { x = 5; }")), 5.0);
    }

    #[test]
    fn new_constructs_builtin_values() {
        assert_eq!(num(&run_x(b"x = (new Array(1, 2, 3)).length;")), 3.0);
        assert_eq!(num(&run_x(b"x = Array(4, 5).length;")), 2.0); // callable without new
        assert!(matches!(run_x(b"x = new Object();"), Value::Object(_)));
        assert_eq!(strv(&run_x(b"x = new String(42);")), "42");
    }

    #[test]
    fn ternary_and_logical_values() {
        assert_eq!(num(&run_x(b"x = 0 ? 1 : 2;")), 2.0);
        assert_eq!(num(&run_x(b"x = 3 || 4;")), 3.0);
        assert_eq!(num(&run_x(b"x = 0 || 4;")), 4.0);
        assert_eq!(num(&run_x(b"x = 3 && 4;")), 4.0);
        assert_eq!(num(&run_x(b"x = 0 && 4;")), 0.0);
    }

    #[test]
    fn string_comparisons_are_lexicographic() {
        assert!(truthy(&run_x(b"x = 'abc' < 'abd';")));
        assert!(!truthy(&run_x(b"x = 'b' < 'a';")));
    }

    #[test]
    fn division_by_zero_is_infinite_not_error() {
        assert!(matches!(run_x(b"x = 1 / 0;"), Value::Num(n) if n.is_infinite()));
        assert!(matches!(run_x(b"x = 0 / 0;"), Value::Num(n) if n.is_nan()));
    }

    #[test]
    fn array_index_assignment_grows() {
        assert_eq!(num(&run_x(b"a = [1]; a[3] = 9; x = a.length;")), 4.0);
        assert!(matches!(
            run_x(b"a = [1]; a[3] = 9; x = a[2];"),
            Value::Undefined
        ));
    }

    #[test]
    fn json_stringify_nested() {
        assert_eq!(
            strv(&run_x(b"x = JSON.stringify({a: [1, {b: 'c'}], d: false});")),
            "{\"a\":[1,{\"b\":\"c\"}],\"d\":false}"
        );
    }

    #[test]
    fn calling_non_function_is_undefined_not_error() {
        // semantic checking disabled: no TypeError
        assert!(matches!(run_x(b"x = (1)(2);"), Value::Undefined));
        assert!(matches!(run_x(b"x = missing();"), Value::Undefined));
    }

    #[test]
    fn switch_on_strings() {
        assert_eq!(
            num(&run_x(
                b"x = 0; switch ('b') { case 'a': x = 1; break; case 'b': x = 2; break; }"
            )),
            2.0
        );
    }

    #[test]
    fn function_arguments_default_to_undefined() {
        assert_eq!(
            strv(&run_x(b"function f(a, b) { return typeof b; } x = f(1);")),
            "undefined"
        );
    }

    #[test]
    fn in_and_instanceof_operators() {
        assert!(truthy(&run_x(b"x = 'a' in {a: 1};")));
        assert!(!truthy(&run_x(b"x = 'z' in {a: 1};")));
        assert!(truthy(&run_x(b"x = 0 in [7];")));
        assert!(!truthy(&run_x(b"x = 1 in [7];")));
    }

    #[test]
    fn instanceof_builtin_ctors() {
        assert!(truthy(&run_x(b"x = [] instanceof Array;")));
        assert!(truthy(&run_x(b"x = {} instanceof Object;")));
        assert!(!truthy(&run_x(b"x = 1 instanceof Object;")));
    }
}

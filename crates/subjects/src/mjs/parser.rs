//! The mjs recursive-descent parser.
//!
//! A classic C-style precedence ladder over the interleaved tokenizer.
//! All comparisons here are on token *kinds* — no taint, exactly the
//! tokenization break of Section 7.2; pFuzzer's progress through this
//! layer comes from branch coverage plus the tokenizer's comparisons.

use pdf_runtime::{cov, EventSink, ExecCtx, ParseError};

use super::ast::{AssignOp, BinOp, Expr, Stmt, UnOp};
use super::lexer::{Lexer, Tok};

/// Parses a whole program (a statement list up to EOF).
pub(crate) fn parse_program<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Vec<Stmt>, ParseError> {
    let mut lx = Lexer::new(ctx)?;
    let mut stmts = Vec::new();
    if lx.is(&Tok::Eof) {
        return Err(ctx.reject("empty program"));
    }
    while !lx.is(&Tok::Eof) {
        stmts.push(statement(ctx, &mut lx)?);
    }
    Ok(stmts)
}

fn statement<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Stmt, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        match &lx.tok {
            Tok::Semi => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Stmt::Empty)
            }
            Tok::LBrace => {
                cov!(ctx);
                lx.advance(ctx)?;
                let body = stmt_list_until_rbrace(ctx, lx)?;
                Ok(Stmt::Block(body))
            }
            Tok::Var | Tok::Let | Tok::Const => {
                cov!(ctx);
                lx.advance(ctx)?;
                let decls = declarator_list(ctx, lx)?;
                lx.expect(ctx, &Tok::Semi, "';' after declaration")?;
                Ok(Stmt::Decl(decls))
            }
            Tok::If => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::LParen, "'(' after if")?;
                let cond = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after condition")?;
                let then = Box::new(statement(ctx, lx)?);
                let els = if lx.eat(ctx, &Tok::Else)? {
                    cov!(ctx);
                    Some(Box::new(statement(ctx, lx)?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::While => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::LParen, "'(' after while")?;
                let cond = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after condition")?;
                let body = Box::new(statement(ctx, lx)?);
                Ok(Stmt::While(cond, body))
            }
            Tok::Do => {
                cov!(ctx);
                lx.advance(ctx)?;
                let body = Box::new(statement(ctx, lx)?);
                lx.expect(ctx, &Tok::While, "'while' after do-body")?;
                lx.expect(ctx, &Tok::LParen, "'(' after while")?;
                let cond = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after condition")?;
                lx.expect(ctx, &Tok::Semi, "';' after do-while")?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::For => {
                cov!(ctx);
                lx.advance(ctx)?;
                for_statement(ctx, lx)
            }
            Tok::Return => {
                cov!(ctx);
                lx.advance(ctx)?;
                if lx.eat(ctx, &Tok::Semi)? {
                    Ok(Stmt::Return(None))
                } else {
                    let e = expression(ctx, lx)?;
                    lx.expect(ctx, &Tok::Semi, "';' after return value")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Break => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::Semi, "';' after break")?;
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::Semi, "';' after continue")?;
                Ok(Stmt::Continue)
            }
            Tok::Throw => {
                cov!(ctx);
                lx.advance(ctx)?;
                let e = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::Semi, "';' after throw value")?;
                Ok(Stmt::Throw(e))
            }
            Tok::Try => {
                cov!(ctx);
                lx.advance(ctx)?;
                try_statement(ctx, lx)
            }
            Tok::Switch => {
                cov!(ctx);
                lx.advance(ctx)?;
                switch_statement(ctx, lx)
            }
            Tok::With => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::LParen, "'(' after with")?;
                let obj = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after with object")?;
                let body = Box::new(statement(ctx, lx)?);
                Ok(Stmt::With(obj, body))
            }
            Tok::Function => {
                cov!(ctx);
                lx.advance(ctx)?;
                let Tok::Ident(name) = lx.tok.clone() else {
                    return Err(ctx.reject("expected function name"));
                };
                let name = name.as_str().unwrap_or_default().to_string();
                lx.advance(ctx)?;
                let (params, body) = function_rest(ctx, lx)?;
                Ok(Stmt::FunctionDecl(name, params, body))
            }
            Tok::Debugger => {
                cov!(ctx);
                lx.advance(ctx)?;
                lx.expect(ctx, &Tok::Semi, "';' after debugger")?;
                Ok(Stmt::Debugger)
            }
            _ => {
                cov!(ctx);
                let e = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::Semi, "';' after expression")?;
                Ok(Stmt::Expr(e))
            }
        }
    })
}

fn stmt_list_until_rbrace<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<Vec<Stmt>, ParseError> {
    let mut body = Vec::new();
    loop {
        if lx.eat(ctx, &Tok::RBrace)? {
            return Ok(body);
        }
        if lx.is(&Tok::Eof) {
            return Err(ctx.reject("unterminated block"));
        }
        body.push(statement(ctx, lx)?);
    }
}

fn declarator_list<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<Vec<(String, Option<Expr>)>, ParseError> {
    let mut decls = Vec::new();
    loop {
        let Tok::Ident(name) = lx.tok.clone() else {
            return Err(ctx.reject("expected variable name"));
        };
        let name = name.as_str().unwrap_or_default().to_string();
        lx.advance(ctx)?;
        let init = if lx.eat(ctx, &Tok::Assign)? {
            Some(assignment(ctx, lx)?)
        } else {
            None
        };
        decls.push((name, init));
        if !lx.eat(ctx, &Tok::Comma)? {
            return Ok(decls);
        }
    }
}

fn for_statement<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Stmt, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        lx.expect(ctx, &Tok::LParen, "'(' after for")?;
        // for (var x in e) body  /  for (var x = ..; ..; ..) body
        if lx.is(&Tok::Var) || lx.is(&Tok::Let) || lx.is(&Tok::Const) {
            cov!(ctx);
            lx.advance(ctx)?;
            let Tok::Ident(name) = lx.tok.clone() else {
                return Err(ctx.reject("expected variable name"));
            };
            let name = name.as_str().unwrap_or_default().to_string();
            lx.advance(ctx)?;
            if lx.eat(ctx, &Tok::In)? || lx.eat(ctx, &Tok::Of)? {
                cov!(ctx);
                let object = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after for-in")?;
                let body = Box::new(statement(ctx, lx)?);
                return Ok(Stmt::ForIn {
                    var: name,
                    object,
                    body,
                });
            }
            let init = if lx.eat(ctx, &Tok::Assign)? {
                Some(assignment(ctx, lx)?)
            } else {
                None
            };
            lx.expect(ctx, &Tok::Semi, "';' in for header")?;
            let decl = Stmt::Decl(vec![(name, init)]);
            return classic_for_rest(ctx, lx, Some(Box::new(decl)));
        }
        if lx.eat(ctx, &Tok::Semi)? {
            cov!(ctx);
            return classic_for_rest(ctx, lx, None);
        }
        let first = expression(ctx, lx)?;
        // `for (k of seq)`: `of` is not an operator, so the expression
        // parse stops right before it.
        if lx.is(&Tok::Of) {
            if let Expr::Ident(name) = first {
                cov!(ctx);
                lx.advance(ctx)?;
                let object = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after for-of")?;
                let body = Box::new(statement(ctx, lx)?);
                return Ok(Stmt::ForIn {
                    var: name.as_str().unwrap_or_default().to_string(),
                    object,
                    body,
                });
            }
            return Err(ctx.reject("invalid for-of target"));
        }
        // `for (k in obj)` parses `k in obj` as a relational expression;
        // recognise it here (the original threads a no-in flag instead).
        if lx.is(&Tok::RParen) {
            if let Expr::Binary(BinOp::In, lhs, rhs) = first {
                if let Expr::Ident(name) = *lhs {
                    cov!(ctx);
                    lx.expect(ctx, &Tok::RParen, "')' after for-in")?;
                    let body = Box::new(statement(ctx, lx)?);
                    return Ok(Stmt::ForIn {
                        var: name.as_str().unwrap_or_default().to_string(),
                        object: *rhs,
                        body,
                    });
                }
                return Err(ctx.reject("invalid for-in target"));
            }
        }
        lx.expect(ctx, &Tok::Semi, "';' in for header")?;
        classic_for_rest(ctx, lx, Some(Box::new(Stmt::Expr(first))))
    })
}

fn classic_for_rest<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
    init: Option<Box<Stmt>>,
) -> Result<Stmt, ParseError> {
    let cond = if lx.is(&Tok::Semi) {
        None
    } else {
        Some(expression(ctx, lx)?)
    };
    lx.expect(ctx, &Tok::Semi, "second ';' in for header")?;
    let step = if lx.is(&Tok::RParen) {
        None
    } else {
        Some(expression(ctx, lx)?)
    };
    lx.expect(ctx, &Tok::RParen, "')' after for header")?;
    let body = Box::new(statement(ctx, lx)?);
    Ok(Stmt::For {
        init,
        cond,
        step,
        body,
    })
}

fn try_statement<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Stmt, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        lx.expect(ctx, &Tok::LBrace, "'{' after try")?;
        let body = stmt_list_until_rbrace(ctx, lx)?;
        let catch = if lx.eat(ctx, &Tok::Catch)? {
            cov!(ctx);
            lx.expect(ctx, &Tok::LParen, "'(' after catch")?;
            let Tok::Ident(name) = lx.tok.clone() else {
                return Err(ctx.reject("expected catch binding"));
            };
            let name = name.as_str().unwrap_or_default().to_string();
            lx.advance(ctx)?;
            lx.expect(ctx, &Tok::RParen, "')' after catch binding")?;
            lx.expect(ctx, &Tok::LBrace, "'{' after catch")?;
            Some((name, stmt_list_until_rbrace(ctx, lx)?))
        } else {
            None
        };
        let finally = if lx.eat(ctx, &Tok::Finally)? {
            cov!(ctx);
            lx.expect(ctx, &Tok::LBrace, "'{' after finally")?;
            Some(stmt_list_until_rbrace(ctx, lx)?)
        } else {
            None
        };
        if catch.is_none() && finally.is_none() {
            return Err(ctx.reject("try without catch or finally"));
        }
        Ok(Stmt::Try {
            body,
            catch,
            finally,
        })
    })
}

fn switch_statement<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<Stmt, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        lx.expect(ctx, &Tok::LParen, "'(' after switch")?;
        let scrutinee = expression(ctx, lx)?;
        lx.expect(ctx, &Tok::RParen, "')' after switch value")?;
        lx.expect(ctx, &Tok::LBrace, "'{' after switch")?;
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            if lx.eat(ctx, &Tok::RBrace)? {
                return Ok(Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                });
            }
            if lx.eat(ctx, &Tok::Case)? {
                cov!(ctx);
                let value = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::Colon, "':' after case value")?;
                let body = case_body(ctx, lx)?;
                cases.push((value, body));
                continue;
            }
            if lx.eat(ctx, &Tok::Default)? {
                cov!(ctx);
                if default.is_some() {
                    return Err(ctx.reject("duplicate default"));
                }
                lx.expect(ctx, &Tok::Colon, "':' after default")?;
                default = Some(case_body(ctx, lx)?);
                continue;
            }
            return Err(ctx.reject("expected case, default or '}'"));
        }
    })
}

fn case_body<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Vec<Stmt>, ParseError> {
    let mut body = Vec::new();
    while !lx.is(&Tok::Case) && !lx.is(&Tok::Default) && !lx.is(&Tok::RBrace) {
        if lx.is(&Tok::Eof) {
            return Err(ctx.reject("unterminated switch"));
        }
        body.push(statement(ctx, lx)?);
    }
    Ok(body)
}

fn function_rest<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<(Vec<String>, Vec<Stmt>), ParseError> {
    lx.expect(ctx, &Tok::LParen, "'(' after function name")?;
    let mut params = Vec::new();
    if !lx.eat(ctx, &Tok::RParen)? {
        loop {
            let Tok::Ident(p) = lx.tok.clone() else {
                return Err(ctx.reject("expected parameter name"));
            };
            params.push(p.as_str().unwrap_or_default().to_string());
            lx.advance(ctx)?;
            if lx.eat(ctx, &Tok::Comma)? {
                continue;
            }
            lx.expect(ctx, &Tok::RParen, "')' after parameters")?;
            break;
        }
    }
    lx.expect(ctx, &Tok::LBrace, "'{' before function body")?;
    let body = stmt_list_until_rbrace(ctx, lx)?;
    Ok((params, body))
}

// ---------------------------------------------------------------------------
// expressions: the precedence ladder
// ---------------------------------------------------------------------------

pub(crate) fn expression<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<Expr, ParseError> {
    assignment(ctx, lx)
}

fn assignment<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let lhs = ternary(ctx, lx)?;
        let op = match &lx.tok {
            Tok::Assign => AssignOp::Assign,
            Tok::PlusEq => AssignOp::Add,
            Tok::MinusEq => AssignOp::Sub,
            Tok::StarEq => AssignOp::Mul,
            Tok::SlashEq => AssignOp::Div,
            Tok::PercentEq => AssignOp::Rem,
            Tok::AmpEq => AssignOp::BitAnd,
            Tok::PipeEq => AssignOp::BitOr,
            Tok::CaretEq => AssignOp::BitXor,
            Tok::ShlEq => AssignOp::Shl,
            Tok::ShrEq => AssignOp::Shr,
            Tok::UshrEq => AssignOp::Ushr,
            _ => return Ok(lhs),
        };
        if !matches!(lhs, Expr::Ident(_) | Expr::Member(..) | Expr::Index(..)) {
            return Err(ctx.reject("invalid assignment target"));
        }
        cov!(ctx);
        lx.advance(ctx)?;
        let rhs = assignment(ctx, lx)?;
        Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
    })
}

fn ternary<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    let cond = binary(ctx, lx, 0)?;
    if lx.eat(ctx, &Tok::Question)? {
        cov!(ctx);
        let then = assignment(ctx, lx)?;
        lx.expect(ctx, &Tok::Colon, "':' in conditional")?;
        let els = assignment(ctx, lx)?;
        return Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)));
    }
    Ok(cond)
}

/// Binary-operator precedence, lowest first.
fn bin_op_of(tok: &Tok) -> Option<(BinOp, u8)> {
    Some(match tok {
        Tok::OrOr => (BinOp::Or, 0),
        Tok::AndAnd => (BinOp::And, 1),
        Tok::Pipe => (BinOp::BitOr, 2),
        Tok::Caret => (BinOp::BitXor, 3),
        Tok::Amp => (BinOp::BitAnd, 4),
        Tok::EqEq => (BinOp::Eq, 5),
        Tok::NotEq => (BinOp::NotEq, 5),
        Tok::EqEqEq => (BinOp::StrictEq, 5),
        Tok::NotEqEq => (BinOp::StrictNotEq, 5),
        Tok::Lt => (BinOp::Lt, 6),
        Tok::Gt => (BinOp::Gt, 6),
        Tok::LtEq => (BinOp::LtEq, 6),
        Tok::GtEq => (BinOp::GtEq, 6),
        Tok::In => (BinOp::In, 6),
        Tok::Instanceof => (BinOp::Instanceof, 6),
        Tok::Shl => (BinOp::Shl, 7),
        Tok::Shr => (BinOp::Shr, 7),
        Tok::Ushr => (BinOp::Ushr, 7),
        Tok::Plus => (BinOp::Add, 8),
        Tok::Minus => (BinOp::Sub, 8),
        Tok::Star => (BinOp::Mul, 9),
        Tok::Slash => (BinOp::Div, 9),
        Tok::Percent => (BinOp::Rem, 9),
        Tok::StarStar => (BinOp::Pow, 10),
        _ => return None,
    })
}

fn binary<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
    min_prec: u8,
) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let mut lhs = unary(ctx, lx)?;
        while let Some((op, prec)) = bin_op_of(&lx.tok) {
            if prec < min_prec {
                break;
            }
            cov!(ctx);
            lx.advance(ctx)?;
            // `**` is right-associative, everything else left
            let next_min = if op == BinOp::Pow { prec } else { prec + 1 };
            let rhs = binary(ctx, lx, next_min)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    })
}

fn unary<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let op = match &lx.tok {
            Tok::Bang => Some(UnOp::Not),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Plus => Some(UnOp::Plus),
            Tok::Minus => Some(UnOp::Neg),
            Tok::Typeof => Some(UnOp::Typeof),
            Tok::Void => Some(UnOp::Void),
            Tok::Delete => Some(UnOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            cov!(ctx);
            lx.advance(ctx)?;
            let inner = unary(ctx, lx)?;
            return Ok(Expr::Unary(op, Box::new(inner)));
        }
        if lx.is(&Tok::Inc) || lx.is(&Tok::Dec) {
            cov!(ctx);
            let inc = lx.is(&Tok::Inc);
            lx.advance(ctx)?;
            let target = unary(ctx, lx)?;
            if !matches!(target, Expr::Ident(_) | Expr::Member(..) | Expr::Index(..)) {
                return Err(ctx.reject("invalid update target"));
            }
            return Ok(Expr::Update {
                target: Box::new(target),
                inc,
                prefix: true,
            });
        }
        postfix(ctx, lx)
    })
}

fn postfix<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    let e = call_member(ctx, lx)?;
    if lx.is(&Tok::Inc) || lx.is(&Tok::Dec) {
        let inc = lx.is(&Tok::Inc);
        if !matches!(e, Expr::Ident(_) | Expr::Member(..) | Expr::Index(..)) {
            return Err(ctx.reject("invalid update target"));
        }
        cov!(ctx);
        lx.advance(ctx)?;
        return Ok(Expr::Update {
            target: Box::new(e),
            inc,
            prefix: false,
        });
    }
    Ok(e)
}

fn call_member<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let mut e = primary(ctx, lx)?;
        loop {
            if lx.eat(ctx, &Tok::Dot)? {
                cov!(ctx);
                let Tok::Ident(name) = lx.tok.clone() else {
                    return Err(ctx.reject("expected member name after '.'"));
                };
                lx.advance(ctx)?;
                e = Expr::Member(Box::new(e), name);
                continue;
            }
            if lx.eat(ctx, &Tok::LBracket)? {
                cov!(ctx);
                let idx = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RBracket, "']' after index")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
                continue;
            }
            if lx.eat(ctx, &Tok::LParen)? {
                cov!(ctx);
                let args = argument_list(ctx, lx)?;
                e = Expr::Call(Box::new(e), args);
                continue;
            }
            return Ok(e);
        }
    })
}

fn argument_list<S: EventSink>(
    ctx: &mut ExecCtx<S>,
    lx: &mut Lexer,
) -> Result<Vec<Expr>, ParseError> {
    let mut args = Vec::new();
    if lx.eat(ctx, &Tok::RParen)? {
        return Ok(args);
    }
    loop {
        args.push(assignment(ctx, lx)?);
        if lx.eat(ctx, &Tok::Comma)? {
            continue;
        }
        lx.expect(ctx, &Tok::RParen, "')' after arguments")?;
        return Ok(args);
    }
}

fn primary<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        match lx.tok.clone() {
            Tok::Num(n) => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Num(n))
            }
            Tok::Str(s) => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Str(s))
            }
            Tok::True => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Bool(false))
            }
            Tok::Null => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Null)
            }
            Tok::Undefined => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Undefined)
            }
            Tok::This => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::This)
            }
            Tok::Ident(name) => {
                cov!(ctx);
                lx.advance(ctx)?;
                Ok(Expr::Ident(name))
            }
            Tok::LParen => {
                cov!(ctx);
                lx.advance(ctx)?;
                let e = expression(ctx, lx)?;
                lx.expect(ctx, &Tok::RParen, "')' after expression")?;
                Ok(e)
            }
            Tok::LBracket => {
                cov!(ctx);
                lx.advance(ctx)?;
                let mut items = Vec::new();
                if !lx.eat(ctx, &Tok::RBracket)? {
                    loop {
                        items.push(assignment(ctx, lx)?);
                        if lx.eat(ctx, &Tok::Comma)? {
                            continue;
                        }
                        lx.expect(ctx, &Tok::RBracket, "']' after array items")?;
                        break;
                    }
                }
                Ok(Expr::Array(items))
            }
            Tok::LBrace => {
                cov!(ctx);
                lx.advance(ctx)?;
                object_literal(ctx, lx)
            }
            Tok::Function => {
                cov!(ctx);
                lx.advance(ctx)?;
                // optional name (ignored: expression position)
                if let Tok::Ident(_) = lx.tok {
                    lx.advance(ctx)?;
                }
                let (params, body) = function_rest(ctx, lx)?;
                Ok(Expr::Function(params, body))
            }
            Tok::New => {
                cov!(ctx);
                lx.advance(ctx)?;
                let callee = call_member(ctx, lx)?;
                // `new F(args)` parses the call inside call_member
                if let Expr::Call(f, args) = callee {
                    Ok(Expr::New(f, args))
                } else {
                    Ok(Expr::New(Box::new(callee), Vec::new()))
                }
            }
            _ => Err(ctx.reject("expected an expression")),
        }
    })
}

fn object_literal<S: EventSink>(ctx: &mut ExecCtx<S>, lx: &mut Lexer) -> Result<Expr, ParseError> {
    let mut props = Vec::new();
    if lx.eat(ctx, &Tok::RBrace)? {
        return Ok(Expr::Object(props));
    }
    loop {
        let key = match lx.tok.clone() {
            Tok::Ident(w) => w.as_str().unwrap_or_default().to_string(),
            Tok::Str(s) => s,
            Tok::Num(n) => format!("{n}"),
            _ => return Err(ctx.reject("expected property key")),
        };
        lx.advance(ctx)?;
        lx.expect(ctx, &Tok::Colon, "':' after property key")?;
        let value = assignment(ctx, lx)?;
        props.push((key, value));
        if lx.eat(ctx, &Tok::Comma)? {
            continue;
        }
        lx.expect(ctx, &Tok::RBrace, "'}' after object literal")?;
        return Ok(Expr::Object(props));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &[u8]) -> Result<Vec<Stmt>, ParseError> {
        let mut ctx = ExecCtx::new(input);
        parse_program(&mut ctx)
    }

    #[test]
    fn statements_parse() {
        for src in [
            &b"x = 1;"[..],
            b"var a = 1, b = 2;",
            b"if (a) b = 1; else b = 2;",
            b"while (a) b = 1;",
            b"do b = 1; while (a);",
            b"for (i = 0; i < 3; i++) x = i;",
            b"for (var i = 0; i < 3; i++) x = i;",
            b"for (k in o) x = k;",
            b"for (var k in o) x = k;",
            b"for (;;) break;",
            b"try { x = 1; } catch (e) { y = 2; }",
            b"try { x = 1; } finally { y = 2; }",
            b"switch (x) { case 1: a = 1; break; default: a = 2; }",
            b"function f(a, b) { return a; }",
            b"with (o) x = 1;",
            b"throw x;",
            b"debugger;",
        ] {
            assert!(parse(src).is_ok(), "{:?}", String::from_utf8_lossy(src));
        }
    }

    #[test]
    fn expressions_parse() {
        for src in [
            &b"x = a ? b : c;"[..],
            b"x = a || b && c;",
            b"x = a | b ^ c & d;",
            b"x = a == b !== c;",
            b"x = a << 2 >>> 3;",
            b"x = -a + +b - ~c;",
            b"x = !a;",
            b"x = typeof a;",
            b"x = void 0;",
            b"x = delete a.b;",
            b"x = a.b.c[0](1, 2);",
            b"x = [1, [2], {a: 3}];",
            b"x = {a: 1, 'b': 2, 3: 4};",
            b"x = function (y) { return y; };",
            b"x = new F(1);",
            b"x = new F;",
            b"x = a ** b ** c;",
            b"x = ++a + b--;",
            b"x = a in o;",
            b"x = a instanceof F;",
        ] {
            assert!(parse(src).is_ok(), "{:?}", String::from_utf8_lossy(src));
        }
    }

    #[test]
    fn precedence_shape() {
        // a + b * c parses as a + (b * c)
        let stmts = parse(b"x = a + b * c;").unwrap();
        let Stmt::Expr(Expr::Assign(_, _, rhs)) = &stmts[0] else {
            panic!("expected assignment");
        };
        let Expr::Binary(BinOp::Add, _, r) = rhs.as_ref() else {
            panic!("expected add at top");
        };
        assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn pow_right_assoc() {
        let stmts = parse(b"x = a ** b ** c;").unwrap();
        let Stmt::Expr(Expr::Assign(_, _, rhs)) = &stmts[0] else {
            panic!();
        };
        let Expr::Binary(BinOp::Pow, _, r) = rhs.as_ref() else {
            panic!("expected pow at top");
        };
        assert!(matches!(r.as_ref(), Expr::Binary(BinOp::Pow, _, _)));
    }

    #[test]
    fn rejects_bad_syntax() {
        for src in [
            &b"x ="[..],
            b"x = ;",
            b"if (x)",
            b"1 = 2;",
            b"x = 1 ++;",
            b"for (1 in o) x;",
            b"switch (x) { y = 1; }",
            b"function () { };", // statement-position function needs a name
            b"x = {a};",
        ] {
            assert!(parse(src).is_err(), "{:?}", String::from_utf8_lossy(src));
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse(b"").is_err());
        assert!(parse(b"  ").is_err());
    }
}

//! The mjs tokenizer.
//!
//! Interleaved with the parser as in the original engine: the parser
//! pulls one token at a time. Identifier words are read into a tainted
//! buffer and `strcmp`-ed against the keyword table, so a failed keyword
//! comparison tells pFuzzer exactly which suffix would complete the
//! keyword. Operator characters are matched with tracked single-byte
//! comparisons (maximal munch).

use pdf_runtime::{cov, lit, one_of, peek_is, range, strcmp, EventSink, ExecCtx, ParseError, TStr};

/// mjs token kinds. Parser-level comparisons on these carry no taint —
/// the tokenization break of Section 7.2.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Tilde,
    // operators, grouped by family; each with its compound-assign form
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Bang,
    Lt,
    Gt,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    EqEq,
    EqEqEq,
    NotEq,
    NotEqEq,
    LtEq,
    GtEq,
    Shl,
    ShlEq,
    Shr,
    ShrEq,
    Ushr,
    UshrEq,
    AndAnd,
    OrOr,
    Inc,
    Dec,
    StarStar,
    // keywords
    If,
    In,
    Do,
    Of,
    For,
    Try,
    Let,
    Var,
    New,
    True,
    Null,
    Void,
    With,
    Else,
    Case,
    This,
    False,
    Throw,
    While,
    Break,
    Catch,
    Const,
    Return,
    Delete,
    Typeof,
    Switch,
    Default,
    Finally,
    Continue,
    Function,
    Debugger,
    Instanceof,
    Undefined,
    // literal-ish
    Ident(TStr),
    Num(f64),
    Str(String),
    Eof,
}

/// The keyword table, `strcmp`-ed in order for every identifier word
/// (as the original does with its token table).
const KEYWORDS: [(&str, Tok); 33] = [
    ("if", Tok::If),
    ("in", Tok::In),
    ("do", Tok::Do),
    ("of", Tok::Of),
    ("for", Tok::For),
    ("try", Tok::Try),
    ("let", Tok::Let),
    ("var", Tok::Var),
    ("new", Tok::New),
    ("true", Tok::True),
    ("null", Tok::Null),
    ("void", Tok::Void),
    ("with", Tok::With),
    ("else", Tok::Else),
    ("case", Tok::Case),
    ("this", Tok::This),
    ("false", Tok::False),
    ("throw", Tok::Throw),
    ("while", Tok::While),
    ("break", Tok::Break),
    ("catch", Tok::Catch),
    ("const", Tok::Const),
    ("return", Tok::Return),
    ("delete", Tok::Delete),
    ("typeof", Tok::Typeof),
    ("switch", Tok::Switch),
    ("default", Tok::Default),
    ("finally", Tok::Finally),
    ("continue", Tok::Continue),
    ("function", Tok::Function),
    ("debugger", Tok::Debugger),
    ("instanceof", Tok::Instanceof),
    ("undefined", Tok::Undefined),
];

pub(crate) struct Lexer {
    pub(crate) tok: Tok,
}

impl Lexer {
    pub(crate) fn new<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Self, ParseError> {
        let mut lx = Lexer { tok: Tok::Eof };
        lx.advance(ctx)?;
        Ok(lx)
    }

    /// Whether the current token equals `t` (token kinds only — `Ident`,
    /// `Num` and `Str` payloads are never compared this way).
    pub(crate) fn is(&self, t: &Tok) -> bool {
        self.tok == *t
    }

    /// Consumes the current token if it equals `t`.
    pub(crate) fn eat<S: EventSink>(
        &mut self,
        ctx: &mut ExecCtx<S>,
        t: &Tok,
    ) -> Result<bool, ParseError> {
        if self.is(t) {
            self.advance(ctx)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Consumes the current token, which must equal `t`.
    pub(crate) fn expect<S: EventSink>(
        &mut self,
        ctx: &mut ExecCtx<S>,
        t: &Tok,
        what: &str,
    ) -> Result<(), ParseError> {
        if self.eat(ctx, t)? {
            Ok(())
        } else {
            Err(ctx.reject(format!("expected {what}")))
        }
    }

    /// Advances to the next token.
    pub(crate) fn advance<S: EventSink>(&mut self, ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
        self.tok = ctx.frame(next_token)?;
        Ok(())
    }
}

fn next_token<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Tok, ParseError> {
    cov!(ctx);
    skip_trivia(ctx)?;
    if ctx.peek().is_none() {
        return Ok(Tok::Eof);
    }
    if range!(ctx, b'0', b'9') {
        return number(ctx);
    }
    if word_start(ctx) {
        return word(ctx);
    }
    if peek_is!(ctx, b'"') {
        ctx.advance();
        return string(ctx, b'"');
    }
    if peek_is!(ctx, b'\'') {
        ctx.advance();
        return string(ctx, b'\'');
    }
    operator(ctx)
}

/// Skips whitespace and comments (`//` to end of line, `/* */`).
fn skip_trivia<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    loop {
        if one_of!(ctx, b" \t\n\r") {
            ctx.advance();
            continue;
        }
        // a '/' could start a comment; look ahead without consuming
        if peek_is!(ctx, b'/') {
            let start = ctx.pos();
            ctx.advance();
            if peek_is!(ctx, b'/') {
                cov!(ctx);
                ctx.advance();
                while ctx.peek().is_some() {
                    if lit!(ctx, b'\n') {
                        break;
                    }
                    ctx.advance();
                }
                continue;
            }
            if peek_is!(ctx, b'*') {
                cov!(ctx);
                ctx.advance();
                loop {
                    if ctx.peek().is_none() {
                        return Err(ctx.reject("unterminated block comment"));
                    }
                    if lit!(ctx, b'*') {
                        if lit!(ctx, b'/') {
                            break;
                        }
                        continue;
                    }
                    ctx.advance();
                }
                continue;
            }
            // not a comment: restore and let the operator path handle '/'
            ctx.set_pos(start);
            return Ok(());
        }
        return Ok(());
    }
}

fn word_start<S: EventSink>(ctx: &mut ExecCtx<S>) -> bool {
    range!(ctx, b'a', b'z') || range!(ctx, b'A', b'Z') || peek_is!(ctx, b'_') || peek_is!(ctx, b'$')
}

fn word_continue<S: EventSink>(ctx: &mut ExecCtx<S>) -> bool {
    range!(ctx, b'a', b'z')
        || range!(ctx, b'A', b'Z')
        || range!(ctx, b'0', b'9')
        || peek_is!(ctx, b'_')
        || peek_is!(ctx, b'$')
}

/// Reads an identifier word and `strcmp`s it against the keyword table.
fn word<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Tok, ParseError> {
    cov!(ctx);
    let mut w = TStr::new();
    while let Some(b) = ctx.peek() {
        if !word_continue(ctx) {
            break;
        }
        w.push(b, ctx.pos());
        ctx.advance();
    }
    for (kw, tok) in KEYWORDS {
        if strcmp!(ctx, &w, kw) {
            cov!(ctx);
            return Ok(tok);
        }
    }
    cov!(ctx);
    Ok(Tok::Ident(w))
}

fn number<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Tok, ParseError> {
    cov!(ctx);
    let mut text = String::new();
    while let Some(b) = ctx.peek() {
        if range!(ctx, b'0', b'9') {
            text.push(b as char);
            ctx.advance();
        } else {
            break;
        }
    }
    if lit!(ctx, b'.') {
        cov!(ctx);
        text.push('.');
        let mut any = false;
        while let Some(b) = ctx.peek() {
            if range!(ctx, b'0', b'9') {
                text.push(b as char);
                ctx.advance();
                any = true;
            } else {
                break;
            }
        }
        if !any {
            return Err(ctx.reject("expected digits after decimal point"));
        }
    }
    if one_of!(ctx, b"eE") {
        cov!(ctx);
        ctx.advance();
        text.push('e');
        if one_of!(ctx, b"+-") {
            let b = ctx.peek().unwrap_or(b'+');
            text.push(b as char);
            ctx.advance();
        }
        let mut any = false;
        while let Some(b) = ctx.peek() {
            if range!(ctx, b'0', b'9') {
                text.push(b as char);
                ctx.advance();
                any = true;
            } else {
                break;
            }
        }
        if !any {
            return Err(ctx.reject("expected exponent digits"));
        }
    }
    let value: f64 = text.parse().unwrap_or(f64::NAN);
    Ok(Tok::Num(value))
}

fn string<S: EventSink>(ctx: &mut ExecCtx<S>, quote: u8) -> Result<Tok, ParseError> {
    cov!(ctx);
    let mut s = String::new();
    loop {
        match ctx.peek() {
            None => return Err(ctx.reject("unterminated string")),
            Some(b) => {
                if lit!(ctx, quote) {
                    cov!(ctx);
                    return Ok(Tok::Str(s));
                }
                if lit!(ctx, b'\\') {
                    cov!(ctx);
                    let Some(esc) = ctx.peek() else {
                        return Err(ctx.reject("unterminated escape"));
                    };
                    if one_of!(ctx, b"nrt\\\"'0") {
                        s.push(match esc {
                            b'n' => '\n',
                            b'r' => '\r',
                            b't' => '\t',
                            b'0' => '\0',
                            other => other as char,
                        });
                        ctx.advance();
                        continue;
                    }
                    return Err(ctx.reject("invalid escape"));
                }
                if b == b'\n' {
                    return Err(ctx.reject("newline in string"));
                }
                s.push(b as char);
                ctx.advance();
            }
        }
    }
}

/// Maximal-munch operator matching with tracked comparisons, mirroring
/// the original's `switch` ladders.
fn operator<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<Tok, ParseError> {
    cov!(ctx);
    // simple single-character punctuation first
    let singles = [
        (b'{', Tok::LBrace),
        (b'}', Tok::RBrace),
        (b'(', Tok::LParen),
        (b')', Tok::RParen),
        (b'[', Tok::LBracket),
        (b']', Tok::RBracket),
        (b';', Tok::Semi),
        (b',', Tok::Comma),
        (b':', Tok::Colon),
        (b'?', Tok::Question),
        (b'.', Tok::Dot),
        (b'~', Tok::Tilde),
    ];
    for (b, tok) in singles {
        if peek_is!(ctx, b) {
            cov!(ctx);
            ctx.advance();
            return Ok(tok);
        }
    }
    if lit!(ctx, b'+') {
        cov!(ctx);
        if lit!(ctx, b'+') {
            return Ok(Tok::Inc);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::PlusEq);
        }
        return Ok(Tok::Plus);
    }
    if lit!(ctx, b'-') {
        cov!(ctx);
        if lit!(ctx, b'-') {
            return Ok(Tok::Dec);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::MinusEq);
        }
        return Ok(Tok::Minus);
    }
    if lit!(ctx, b'*') {
        cov!(ctx);
        if lit!(ctx, b'*') {
            return Ok(Tok::StarStar);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::StarEq);
        }
        return Ok(Tok::Star);
    }
    if lit!(ctx, b'/') {
        cov!(ctx);
        if lit!(ctx, b'=') {
            return Ok(Tok::SlashEq);
        }
        return Ok(Tok::Slash);
    }
    if lit!(ctx, b'%') {
        cov!(ctx);
        if lit!(ctx, b'=') {
            return Ok(Tok::PercentEq);
        }
        return Ok(Tok::Percent);
    }
    if lit!(ctx, b'&') {
        cov!(ctx);
        if lit!(ctx, b'&') {
            return Ok(Tok::AndAnd);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::AmpEq);
        }
        return Ok(Tok::Amp);
    }
    if lit!(ctx, b'|') {
        cov!(ctx);
        if lit!(ctx, b'|') {
            return Ok(Tok::OrOr);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::PipeEq);
        }
        return Ok(Tok::Pipe);
    }
    if lit!(ctx, b'^') {
        cov!(ctx);
        if lit!(ctx, b'=') {
            return Ok(Tok::CaretEq);
        }
        return Ok(Tok::Caret);
    }
    if lit!(ctx, b'!') {
        cov!(ctx);
        if lit!(ctx, b'=') {
            if lit!(ctx, b'=') {
                return Ok(Tok::NotEqEq);
            }
            return Ok(Tok::NotEq);
        }
        return Ok(Tok::Bang);
    }
    if lit!(ctx, b'=') {
        cov!(ctx);
        if lit!(ctx, b'=') {
            if lit!(ctx, b'=') {
                return Ok(Tok::EqEqEq);
            }
            return Ok(Tok::EqEq);
        }
        return Ok(Tok::Assign);
    }
    if lit!(ctx, b'<') {
        cov!(ctx);
        if lit!(ctx, b'<') {
            if lit!(ctx, b'=') {
                return Ok(Tok::ShlEq);
            }
            return Ok(Tok::Shl);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::LtEq);
        }
        return Ok(Tok::Lt);
    }
    if lit!(ctx, b'>') {
        cov!(ctx);
        if lit!(ctx, b'>') {
            if lit!(ctx, b'>') {
                if lit!(ctx, b'=') {
                    return Ok(Tok::UshrEq);
                }
                return Ok(Tok::Ushr);
            }
            if lit!(ctx, b'=') {
                return Ok(Tok::ShrEq);
            }
            return Ok(Tok::Shr);
        }
        if lit!(ctx, b'=') {
            return Ok(Tok::GtEq);
        }
        return Ok(Tok::Gt);
    }
    Err(ctx.reject("unexpected character"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(input: &[u8]) -> Result<Vec<Tok>, ParseError> {
        let mut ctx = ExecCtx::new(input);
        let mut lx = Lexer::new(&mut ctx)?;
        let mut out = Vec::new();
        while lx.tok != Tok::Eof {
            out.push(lx.tok.clone());
            lx.advance(&mut ctx)?;
        }
        Ok(out)
    }

    #[test]
    fn keywords_and_idents() {
        let toks = lex_all(b"if foo instanceof undefined bar9").unwrap();
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0], Tok::If);
        assert!(matches!(&toks[1], Tok::Ident(w) if w.as_bytes() == b"foo"));
        assert_eq!(toks[2], Tok::Instanceof);
        assert_eq!(toks[3], Tok::Undefined);
        assert!(matches!(&toks[4], Tok::Ident(w) if w.as_bytes() == b"bar9"));
    }

    #[test]
    fn all_compound_operators() {
        let cases: Vec<(&[u8], Tok)> = vec![
            (b"+=", Tok::PlusEq),
            (b"-=", Tok::MinusEq),
            (b"*=", Tok::StarEq),
            (b"/=", Tok::SlashEq),
            (b"%=", Tok::PercentEq),
            (b"&=", Tok::AmpEq),
            (b"|=", Tok::PipeEq),
            (b"^=", Tok::CaretEq),
            (b"==", Tok::EqEq),
            (b"===", Tok::EqEqEq),
            (b"!=", Tok::NotEq),
            (b"!==", Tok::NotEqEq),
            (b"<=", Tok::LtEq),
            (b">=", Tok::GtEq),
            (b"<<", Tok::Shl),
            (b"<<=", Tok::ShlEq),
            (b">>", Tok::Shr),
            (b">>=", Tok::ShrEq),
            (b">>>", Tok::Ushr),
            (b">>>=", Tok::UshrEq),
            (b"&&", Tok::AndAnd),
            (b"||", Tok::OrOr),
            (b"++", Tok::Inc),
            (b"--", Tok::Dec),
            (b"**", Tok::StarStar),
        ];
        for (src, expected) in cases {
            let toks = lex_all(src).unwrap();
            assert_eq!(toks, vec![expected], "{:?}", String::from_utf8_lossy(src));
        }
    }

    #[test]
    fn maximal_munch_sequences() {
        assert_eq!(lex_all(b"a+++b").unwrap().len(), 4); // a ++ + b
        let toks = lex_all(b"x>>>=y").unwrap();
        assert!(toks.contains(&Tok::UshrEq));
    }

    #[test]
    fn numbers() {
        let toks = lex_all(b"1 2.5 3e2 4.5e-1").unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0], Tok::Num(1.0));
        assert_eq!(toks[1], Tok::Num(2.5));
        assert_eq!(toks[2], Tok::Num(300.0));
        assert_eq!(toks[3], Tok::Num(0.45));
    }

    #[test]
    fn bad_numbers_rejected() {
        assert!(lex_all(b"1.").is_err());
        assert!(lex_all(b"1e").is_err());
        assert!(lex_all(b"1e+").is_err());
    }

    #[test]
    fn strings_both_quotes() {
        let toks = lex_all(b"\"ab\" 'cd' \"e\\nf\"").unwrap();
        assert_eq!(toks[0], Tok::Str("ab".into()));
        assert_eq!(toks[1], Tok::Str("cd".into()));
        assert_eq!(toks[2], Tok::Str("e\nf".into()));
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(lex_all(b"\"abc").is_err());
        assert!(lex_all(b"'a\nb'").is_err());
    }

    #[test]
    fn comments_are_trivia() {
        let toks = lex_all(b"1 // comment\n 2 /* mid */ 3").unwrap();
        assert_eq!(toks.len(), 3);
        assert!(lex_all(b"/* unterminated").is_err());
    }

    #[test]
    fn slash_not_comment_is_division() {
        let toks = lex_all(b"a / b").unwrap();
        assert_eq!(toks[1], Tok::Slash);
    }

    #[test]
    fn unexpected_character_rejected() {
        assert!(lex_all(b"@").is_err());
        assert!(lex_all(b"#").is_err());
    }
}

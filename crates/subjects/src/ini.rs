//! The `ini` subject, modelled on benhoyt's *inih* (Table 1: 293 LoC).
//!
//! inih is a line-oriented parser:
//!
//! - leading whitespace is skipped;
//! - empty lines are allowed;
//! - `;`-lines are comments;
//! - `[section]` lines open a section — the paper notes that "the section
//!   delimiter in ini ... needs an opening bracket followed by a closing
//!   bracket. Between those, any characters are allowed";
//! - every other non-empty line must be `name = value` or `name : value`;
//!   inline comments (` ;` after the value) are supported;
//! - the first malformed line aborts parsing with an error (the non-zero
//!   exit the paper requires of its subjects).

use pdf_runtime::{cov, lit, one_of, peek_is, EventSink, ExecCtx, ParseError, Subject};

/// The instrumented ini subject.
pub fn subject() -> Subject {
    pdf_runtime::instrument_subject!("ini", parse)
}

/// Valid inputs covering sections, pairs, comments and blank lines.
pub fn reference_corpus() -> Vec<&'static [u8]> {
    vec![
        b"",
        b"\n",
        b" ",
        b"; a comment\n",
        b"[section]\n",
        b"[a b c]\n",
        b"key=value\n",
        b"key = value\n",
        b"key:value\n",
        b"[s]\nname=val ; trailing comment\n",
        b"[one]\na=1\nb=2\n\n[two]\nc=3",
    ]
}

const WS: &[u8] = b" \t";

fn skip_inline_ws<S: EventSink>(ctx: &mut ExecCtx<S>) {
    while one_of!(ctx, WS) {
        ctx.advance();
    }
}

/// Consumes the rest of the line including the newline. Returns when EOF
/// or the newline was consumed.
fn skip_to_eol<S: EventSink>(ctx: &mut ExecCtx<S>) {
    loop {
        match ctx.peek() {
            None => return,
            Some(_) => {
                if lit!(ctx, b'\n') {
                    return;
                }
                ctx.advance();
            }
        }
    }
}

fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    cov!(ctx);
    while ctx.peek().is_some() {
        line(ctx)?;
    }
    Ok(())
}

fn line<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        skip_inline_ws(ctx);
        if lit!(ctx, b'\n') {
            cov!(ctx); // blank line
            return Ok(());
        }
        if ctx.peek().is_none() {
            cov!(ctx); // blank final line
            return Ok(());
        }
        if peek_is!(ctx, b';') {
            cov!(ctx);
            skip_to_eol(ctx);
            return Ok(());
        }
        if lit!(ctx, b'[') {
            cov!(ctx);
            return section(ctx);
        }
        pair(ctx)
    })
}

/// `[section]` — any characters up to the closing bracket, then end of
/// line.
fn section<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        loop {
            if ctx.peek().is_none() {
                return Err(ctx.reject("unterminated section header"));
            }
            if lit!(ctx, b']') {
                cov!(ctx);
                break;
            }
            if peek_is!(ctx, b'\n') {
                return Err(ctx.reject("newline inside section header"));
            }
            ctx.advance();
        }
        skip_inline_ws(ctx);
        match ctx.peek() {
            None => Ok(()),
            Some(_) => {
                if lit!(ctx, b'\n') {
                    cov!(ctx);
                    Ok(())
                } else if peek_is!(ctx, b';') {
                    cov!(ctx);
                    skip_to_eol(ctx);
                    Ok(())
                } else {
                    Err(ctx.reject("garbage after section header"))
                }
            }
        }
    })
}

/// `name = value` or `name : value`; the name may not be empty.
fn pair<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    ctx.frame(|ctx| {
        cov!(ctx);
        let mut name_len = 0usize;
        loop {
            match ctx.peek() {
                None => return Err(ctx.reject("line without '=' or ':'")),
                Some(_) => {
                    if peek_is!(ctx, b'=') || peek_is!(ctx, b':') {
                        cov!(ctx);
                        ctx.advance();
                        break;
                    }
                    if peek_is!(ctx, b'\n') {
                        return Err(ctx.reject("line without '=' or ':'"));
                    }
                    name_len += 1;
                    ctx.advance();
                }
            }
        }
        if name_len == 0 {
            return Err(ctx.reject("empty property name"));
        }
        cov!(ctx);
        // value: everything up to newline or inline comment
        loop {
            match ctx.peek() {
                None => return Ok(()),
                Some(_) => {
                    if lit!(ctx, b'\n') {
                        cov!(ctx);
                        return Ok(());
                    }
                    if peek_is!(ctx, b';') {
                        cov!(ctx);
                        skip_to_eol(ctx);
                        return Ok(());
                    }
                    ctx.advance();
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_corpus() {
        let s = subject();
        for input in reference_corpus() {
            assert!(s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn rejects_malformed() {
        let s = subject();
        for input in [
            &b"[unterminated\n"[..],
            b"[unterminated",
            b"no equals sign\n",
            b"justname",
            b"=value\n", // empty name
            b"[s] garbage\n",
        ] {
            assert!(!s.run(input).valid, "{:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn space_seed_is_valid() {
        // the paper seeds AFL with a single space accepted by all subjects
        assert!(subject().run(b" ").valid);
    }

    #[test]
    fn section_allows_arbitrary_content() {
        assert!(subject().run(b"[a=b;c d]\n").valid);
    }

    #[test]
    fn missing_bracket_suggests_close() {
        let exec = subject().run(b"[sec\n");
        assert!(!exec.valid);
        let cands = exec.log.substitution_candidates();
        assert!(
            cands.iter().any(|c| c.bytes == vec![b']']),
            "candidates: {cands:?}"
        );
    }

    #[test]
    fn name_line_suggests_separator() {
        let exec = subject().run(b"name\n");
        assert!(!exec.valid);
        let bytes: Vec<u8> = exec
            .log
            .substitution_candidates()
            .iter()
            .map(|c| c.bytes[0])
            .collect();
        assert!(bytes.contains(&b'='));
        assert!(bytes.contains(&b':'));
    }

    #[test]
    fn inline_comment_after_value() {
        assert!(subject().run(b"k=v ; note\n").valid);
    }
}

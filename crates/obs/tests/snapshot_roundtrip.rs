//! Property test: any `MetricsSnapshot` the codec can express survives
//! an encode/decode round trip byte-exactly, and a registry-produced
//! snapshot always round-trips through `pdf-metrics v1` text.

use pdf_obs::{HistSnapshot, MetricsRegistry, MetricsSnapshot, SpanSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Metric-name strategy: dotted lowercase segments, the shape every name
/// in the fixed registry schema has (the class includes `.` and `_`).
fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.]{0,10}"
}

fn hist() -> impl Strategy<Value = HistSnapshot> {
    (
        name(),
        any::<u64>(),
        any::<u64>(),
        vec((0u32..65, 1u64..1_000_000), 0..6),
    )
        .prop_map(|(name, count, sum, mut buckets)| {
            // The codec stores buckets sparsely in index order with no
            // duplicates, as `MetricsRegistry::snapshot` emits them.
            buckets.sort_by_key(|(i, _)| *i);
            buckets.dedup_by_key(|(i, _)| *i);
            HistSnapshot {
                name,
                count,
                sum,
                buckets,
            }
        })
}

fn span() -> impl Strategy<Value = SpanSnapshot> {
    (name(), any::<u64>(), any::<u64>()).prop_map(|(name, count, total_ns)| SpanSnapshot {
        name,
        count,
        total_ns,
    })
}

proptest! {
    #[test]
    fn snapshot_roundtrips(
        counters in vec((name(), any::<u64>()), 0..8),
        gauges in vec((name(), any::<u64>()), 0..3),
        hists in vec(hist(), 0..4),
        spans in vec(span(), 0..6),
    ) {
        let snap = MetricsSnapshot { counters, gauges, hists, spans };
        let text = snap.encode();
        let back = MetricsSnapshot::decode(&text).expect("codec must accept its own output");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn registry_snapshot_roundtrips(
        execs in 0u64..10_000,
        latencies in vec(any::<u64>(), 0..20),
        depths in vec(0u64..1_000, 0..10),
    ) {
        let reg = MetricsRegistry::new();
        reg.execs.add(execs);
        reg.rejects.add(execs); // keep the verdict identity satisfiable
        for v in &latencies {
            reg.exec_latency_ns.observe(*v);
        }
        for d in &depths {
            reg.queue_depth.observe(*d);
            reg.queue_depth_now.set(*d);
        }
        reg.record_span("driver.exec", std::time::Duration::from_nanos(17));
        let snap = reg.snapshot();
        let back = MetricsSnapshot::decode(&snap.encode()).expect("registry output decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.counter("execs"), Some(execs));
        prop_assert_eq!(back.hist("exec.latency_ns").unwrap().count, latencies.len() as u64);
    }
}

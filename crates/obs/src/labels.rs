//! Static label names for per-shard instrumentation.
//!
//! Span names must be `&'static str` (the span table interns nothing),
//! so per-shard labels come from a fixed table rather than `format!`.

/// One label per shard index, used as span names for fleet worker legs.
const SHARD_LABELS: [&str; 16] = [
    "fleet.shard00",
    "fleet.shard01",
    "fleet.shard02",
    "fleet.shard03",
    "fleet.shard04",
    "fleet.shard05",
    "fleet.shard06",
    "fleet.shard07",
    "fleet.shard08",
    "fleet.shard09",
    "fleet.shard10",
    "fleet.shard11",
    "fleet.shard12",
    "fleet.shard13",
    "fleet.shard14",
    "fleet.shard15",
];

/// The static span label for fleet shard `shard`.
///
/// Shard counts beyond the table (more shards than any realistic core
/// count) collapse into one overflow label; their timings still land in
/// the span table, just aggregated.
///
/// ```
/// assert_eq!(pdf_obs::shard_label(0), "fleet.shard00");
/// assert_eq!(pdf_obs::shard_label(3), "fleet.shard03");
/// assert_eq!(pdf_obs::shard_label(99), "fleet.shard.overflow");
/// ```
pub fn shard_label(shard: usize) -> &'static str {
    SHARD_LABELS
        .get(shard)
        .copied()
        .unwrap_or("fleet.shard.overflow")
}

/// One label per daemon campaign slot, used as span names for the
/// `pdf-serve` scheduler's per-campaign epoch slices. Campaign ids are
/// unbounded, so labels are assigned by `id % 16` — a fixed-cardinality
/// breakdown (like histogram buckets), not a per-campaign identity; the
/// wire protocol's `status`/`watch` carry exact per-campaign numbers.
const CAMPAIGN_LABELS: [&str; 16] = [
    "serve.campaign00",
    "serve.campaign01",
    "serve.campaign02",
    "serve.campaign03",
    "serve.campaign04",
    "serve.campaign05",
    "serve.campaign06",
    "serve.campaign07",
    "serve.campaign08",
    "serve.campaign09",
    "serve.campaign10",
    "serve.campaign11",
    "serve.campaign12",
    "serve.campaign13",
    "serve.campaign14",
    "serve.campaign15",
];

/// The static span label for daemon campaign `id` (assigned `id % 16`).
///
/// ```
/// assert_eq!(pdf_obs::campaign_label(0), "serve.campaign00");
/// assert_eq!(pdf_obs::campaign_label(5), "serve.campaign05");
/// assert_eq!(pdf_obs::campaign_label(21), "serve.campaign05");
/// ```
pub fn campaign_label(id: u64) -> &'static str {
    CAMPAIGN_LABELS[(id % CAMPAIGN_LABELS.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_ordered() {
        for (i, label) in SHARD_LABELS.iter().enumerate() {
            assert_eq!(shard_label(i), *label);
            for j in 0..i {
                assert_ne!(shard_label(i), shard_label(j));
            }
        }
        assert_eq!(shard_label(16), "fleet.shard.overflow");
        assert_eq!(shard_label(usize::MAX), "fleet.shard.overflow");
    }

    #[test]
    fn campaign_labels_cycle_mod_16() {
        for id in 0..16u64 {
            assert_eq!(campaign_label(id), CAMPAIGN_LABELS[id as usize]);
            assert_eq!(campaign_label(id + 16), campaign_label(id));
        }
        assert_eq!(campaign_label(u64::MAX), campaign_label(u64::MAX % 16));
    }
}

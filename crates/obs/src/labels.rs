//! Static label names for per-shard instrumentation.
//!
//! Span names must be `&'static str` (the span table interns nothing),
//! so per-shard labels come from a fixed table rather than `format!`.

/// One label per shard index, used as span names for fleet worker legs.
const SHARD_LABELS: [&str; 16] = [
    "fleet.shard00",
    "fleet.shard01",
    "fleet.shard02",
    "fleet.shard03",
    "fleet.shard04",
    "fleet.shard05",
    "fleet.shard06",
    "fleet.shard07",
    "fleet.shard08",
    "fleet.shard09",
    "fleet.shard10",
    "fleet.shard11",
    "fleet.shard12",
    "fleet.shard13",
    "fleet.shard14",
    "fleet.shard15",
];

/// The static span label for fleet shard `shard`.
///
/// Shard counts beyond the table (more shards than any realistic core
/// count) collapse into one overflow label; their timings still land in
/// the span table, just aggregated.
///
/// ```
/// assert_eq!(pdf_obs::shard_label(0), "fleet.shard00");
/// assert_eq!(pdf_obs::shard_label(3), "fleet.shard03");
/// assert_eq!(pdf_obs::shard_label(99), "fleet.shard.overflow");
/// ```
pub fn shard_label(shard: usize) -> &'static str {
    SHARD_LABELS
        .get(shard)
        .copied()
        .unwrap_or("fleet.shard.overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_ordered() {
        for (i, label) in SHARD_LABELS.iter().enumerate() {
            assert_eq!(shard_label(i), *label);
            for j in 0..i {
                assert_ne!(shard_label(i), shard_label(j));
            }
        }
        assert_eq!(shard_label(16), "fleet.shard.overflow");
        assert_eq!(shard_label(usize::MAX), "fleet.shard.overflow");
    }
}

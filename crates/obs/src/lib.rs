//! `pdf-obs` — zero-dependency metrics and tracing for the pFuzzer
//! reproduction.
//!
//! The crate provides three layers:
//!
//! - **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free
//!   relaxed atomics. Histograms use log2 buckets (65 fixed slots
//!   covering all of `u64`), the standard shape for latency and size
//!   distributions.
//! - **Registry** ([`MetricsRegistry`]): a fixed-schema struct holding
//!   every metric the stack records — verdict counters bumped at the
//!   `Subject::exec` chokepoint, driver search counters, eval-matrix
//!   supervision counters, latency/length/queue-depth histograms, and a
//!   span table aggregating per-phase wall time.
//! - **Scope API** ([`install`], [`record`], [`span`]): a thread-local
//!   registry stack. Instrumented code calls `record(|m| ...)`, which is
//!   a no-op when no registry is installed — so the entire stack runs
//!   un-instrumented by default and binaries opt in per run.
//!
//! Snapshots ([`MetricsSnapshot`]) freeze the registry into plain data
//! and serialize via the `pdf-metrics v1` line codec, the same style as
//! `pdf-journal` and `pdf-checkpoint`.
//!
//! # Determinism contract
//!
//! Metrics are *observe-only*: nothing in this crate produces a value
//! that flows back into search decisions, and no instrumentation site
//! touches the driver's `ByteSource` chokepoint. Timing is read with
//! [`std::time::Instant`] purely for aggregation. Consequently a
//! campaign run with metrics installed makes byte-for-byte the same
//! decisions — and produces the same report digest — as one without,
//! which `crates/eval/tests/metrics_observability.rs` asserts.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pdf_obs::{MetricsRegistry, MetricsSnapshot};
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! let _scope = pdf_obs::install(Arc::clone(&reg));
//!
//! // ... instrumented code does this at its chokepoints ...
//! pdf_obs::record(|m| {
//!     m.execs.inc();
//!     m.rejects.inc();
//!     m.exec_latency_ns.observe(1_200);
//!     m.input_len.observe(5);
//! });
//! {
//!     let _span = pdf_obs::span("driver.exec");
//! }
//!
//! let text = reg.snapshot().encode();
//! let snap = MetricsSnapshot::decode(&text).unwrap();
//! assert_eq!(snap.counter("execs"), Some(1));
//! assert!(snap.check_identities().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod labels;
mod metric;
mod registry;
mod scope;
mod snapshot;

pub use labels::{campaign_label, shard_label};
pub use metric::{bucket_lo, bucket_of, Counter, Gauge, Histogram, HIST_BUCKETS};
pub use registry::{MetricsRegistry, SpanStat};
pub use scope::{current, enabled, install, record, span, MetricsScope, SpanGuard};
pub use snapshot::{HistSnapshot, MetricsSnapshot, SnapshotError, SpanSnapshot};

//! The fixed-schema [`MetricsRegistry`] every instrumented crate writes
//! into, plus the span table it aggregates phase timings in.
//!
//! The registry is *fixed-schema*: every metric is a named struct field,
//! not a map entry, so the hot path (one exec = one counter bump + two
//! histogram observes) is a handful of relaxed atomic adds with no
//! hashing, no locking, and no allocation. Only spans — recorded at
//! phase granularity, thousands of times per campaign rather than
//! millions — go through a small `Mutex`'d table.

use std::sync::Mutex;
use std::time::Duration;

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{HistSnapshot, MetricsSnapshot, SpanSnapshot};

/// Accumulated time for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span was entered.
    pub count: u64,
    /// Total nanoseconds spent inside the span.
    pub total_ns: u64,
}

/// The full set of metrics one campaign (or one eval run spanning many
/// campaigns) accumulates. All methods take `&self`; a single registry
/// behind an [`Arc`](std::sync::Arc) is safely shared by every matrix
/// worker thread.
///
/// The counter schema is the contract the identity checks in
/// [`MetricsSnapshot::check_identities`] rely on: the four verdict
/// counters are bumped exactly once per `execs` bump, at the same
/// chokepoint.
///
/// ```
/// use pdf_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.execs.inc();
/// reg.accepts.inc();
/// reg.exec_latency_ns.observe(1_500);
/// reg.input_len.observe(12);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("execs"), Some(1));
/// assert!(snap.check_identities().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Total subject executions (one per `Subject::exec`).
    pub execs: Counter,
    /// Executions whose verdict was `Accept`.
    pub accepts: Counter,
    /// Executions whose verdict was `Reject`.
    pub rejects: Counter,
    /// Executions whose verdict was `Hang` (fuel exhausted).
    pub hangs: Counter,
    /// Executions whose verdict was `Crash` (panic caught).
    pub crashes: Counter,

    /// Substitution candidates enqueued by the driver (Algorithm 1's
    /// comparison-guided byte replacements).
    pub substitutions: Counter,
    /// Append-driven extensions enqueued by the driver.
    pub appends: Counter,
    /// EOF-driven extensions (parser ran off the end of the prefix).
    pub eof_extensions: Counter,
    /// Times the driver restarted from a fresh random byte because the
    /// queue ran dry.
    pub restarts: Counter,
    /// Executions that ran under the fast-failure tier (fast and tiered
    /// exec modes).
    pub tier_fast_execs: Counter,
    /// Fast-tier executions escalated to full instrumentation by the
    /// tier filter.
    pub tier_escalations: Counter,
    /// Fast-tier executions the filter discarded without escalation.
    pub tier_skips: Counter,
    /// Expected-token observations fed to the miner (failed string
    /// comparisons at rejection points, mining enabled).
    pub tokens_observed: Counter,
    /// Tokens emitted by `TokenMiner::mine` reductions.
    pub tokens_mined: Counter,
    /// Whole-token dictionary substitutions enqueued by the driver.
    pub tokens_dict_subs: Counter,
    /// Dictionary mutations applied by the AFL baseline's havoc stages.
    pub tokens_dict_mutations: Counter,
    /// Valid (accepted) inputs discovered by the search.
    pub valid_inputs: Counter,
    /// New coverage branches discovered by the search.
    pub new_branches: Counter,

    /// Eval matrix cells that completed (any non-poisoned outcome).
    pub cells_completed: Counter,
    /// Eval matrix cells abandoned after exhausting retries.
    pub cells_poisoned: Counter,
    /// Supervised retries across all eval cells.
    pub cell_retries: Counter,

    /// Campaigns submitted to the serve daemon (accepted `submit`
    /// requests).
    pub serve_submitted: Counter,
    /// Daemon campaigns that reached the `Done` state.
    pub serve_completed: Counter,
    /// Daemon campaigns that reached the `Failed` state.
    pub serve_failed: Counter,
    /// Daemon campaigns that reached the `Cancelled` state.
    pub serve_cancelled: Counter,
    /// Journaled lifecycle transitions across all daemon campaigns.
    pub serve_transitions: Counter,
    /// Epoch slices the daemon's worker pool dispatched.
    pub serve_slices: Counter,
    /// Campaign checkpoints the daemon wrote (one per slice boundary
    /// when a state directory is configured).
    pub serve_checkpoints: Counter,
    /// Connection threads the accept loop failed to spawn (the
    /// connection is dropped; the accept loop survives).
    pub serve_spawn_failed: Counter,
    /// Submissions refused with `overloaded` + `retry_after_ms` by the
    /// daemon's load shedder.
    pub serve_shed: Counter,
    /// Connections refused at the server's concurrent-connection cap.
    pub serve_conn_rejected: Counter,
    /// Connections killed by the per-connection read timeout
    /// (slowloris defense).
    pub serve_conn_timeouts: Counter,
    /// Journal recoveries that salvaged a legal prefix and quarantined
    /// a torn tail.
    pub serve_journal_recovered: Counter,
    /// Checkpoint generations quarantined as corrupt during campaign
    /// rebuild (the rebuild fell back to an older generation).
    pub serve_checkpoint_quarantined: Counter,
    /// Slice-boundary persistence writes (journal append, meta,
    /// checkpoint) that failed and were survived in degraded mode —
    /// disk is one generation staler than the contract's best case.
    pub serve_write_degraded: Counter,
    /// Faults injected by an installed `pdf-chaos` plan (zero outside
    /// chaos runs).
    pub chaos_injected: Counter,

    /// Fleet synchronization epochs completed (one per coordinator
    /// barrier across all shards).
    pub fleet_epochs: Counter,
    /// Valid inputs the fleet coordinator promoted (deduplicated by
    /// digest across shards and epochs).
    pub fleet_promotions: Counter,
    /// Queue injections the coordinator performed (each promotion is
    /// injected into every shard except its origin).
    pub fleet_injections: Counter,

    /// Inputs produced by the compiled grammar generator (`pdf-gen`).
    pub grammar_generated: Counter,
    /// Generated inputs the subject accepted (duplicates included).
    pub grammar_generated_valid: Counter,
    /// Evolutionary re-weighting epochs the generator completed.
    pub grammar_weight_epochs: Counter,
    /// Distinct generator-found valid inputs promoted into fleet
    /// shard queues by the combined campaign.
    pub grammar_promotions: Counter,

    /// Wall-clock latency of each `Subject::exec`, in nanoseconds.
    pub exec_latency_ns: Histogram,
    /// Length in bytes of each executed input.
    pub input_len: Histogram,
    /// Candidate queue depth, observed once per scheduling decision.
    pub queue_depth: Histogram,
    /// Wall-clock nanoseconds each fleet sync epoch spent merging
    /// coverage and promoting inputs (the coordinator's serial section).
    pub fleet_sync_ns: Histogram,
    /// The most recent queue depth (for live progress display).
    pub queue_depth_now: Gauge,

    spans: Mutex<Vec<(&'static str, SpanStat)>>,
}

impl MetricsRegistry {
    /// Creates a registry with every metric at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dur` to the named span's accumulated time.
    ///
    /// Span names are static strings at phase granularity
    /// (`"driver.exec"`, `"eval.cell"`, ...), so the table stays a few
    /// entries long and a linear scan beats any map.
    pub fn record_span(&self, name: &'static str, dur: Duration) {
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self.spans.lock().expect("span table poisoned");
        match spans.iter_mut().find(|(n, _)| *n == name) {
            Some((_, stat)) => {
                stat.count += 1;
                stat.total_ns = stat.total_ns.saturating_add(ns);
            }
            None => spans.push((
                name,
                SpanStat {
                    count: 1,
                    total_ns: ns,
                },
            )),
        }
    }

    /// The accumulated stat for one span, if it was ever entered.
    pub fn span_stat(&self, name: &str) -> Option<SpanStat> {
        let spans = self.spans.lock().expect("span table poisoned");
        spans.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
    }

    /// Freezes the current values into a plain-data [`MetricsSnapshot`].
    ///
    /// Concurrent writers may race individual loads (a snapshot taken
    /// mid-campaign is a consistent-enough progress report, not a
    /// barrier); a snapshot taken after all workers joined is exact.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = [
            ("execs", &self.execs),
            ("verdict.accept", &self.accepts),
            ("verdict.reject", &self.rejects),
            ("verdict.hang", &self.hangs),
            ("verdict.crash", &self.crashes),
            ("driver.substitutions", &self.substitutions),
            ("driver.appends", &self.appends),
            ("driver.eof_extensions", &self.eof_extensions),
            ("driver.restarts", &self.restarts),
            ("tier.fast_execs", &self.tier_fast_execs),
            ("tier.escalations", &self.tier_escalations),
            ("tier.skips", &self.tier_skips),
            ("tokens.observations", &self.tokens_observed),
            ("tokens.mined", &self.tokens_mined),
            ("tokens.dict_subs", &self.tokens_dict_subs),
            ("tokens.dict_mutations", &self.tokens_dict_mutations),
            ("search.valid_inputs", &self.valid_inputs),
            ("search.new_branches", &self.new_branches),
            ("eval.cells_completed", &self.cells_completed),
            ("eval.cells_poisoned", &self.cells_poisoned),
            ("eval.cell_retries", &self.cell_retries),
            ("serve.submitted", &self.serve_submitted),
            ("serve.completed", &self.serve_completed),
            ("serve.failed", &self.serve_failed),
            ("serve.cancelled", &self.serve_cancelled),
            ("serve.transitions", &self.serve_transitions),
            ("serve.slices", &self.serve_slices),
            ("serve.checkpoints", &self.serve_checkpoints),
            ("serve.spawn_failed", &self.serve_spawn_failed),
            ("serve.shed", &self.serve_shed),
            ("serve.conn_rejected", &self.serve_conn_rejected),
            ("serve.conn_timeout", &self.serve_conn_timeouts),
            ("serve.journal_recovered", &self.serve_journal_recovered),
            (
                "serve.checkpoint_quarantined",
                &self.serve_checkpoint_quarantined,
            ),
            ("serve.write_degraded", &self.serve_write_degraded),
            ("chaos.injected", &self.chaos_injected),
            ("fleet.epochs", &self.fleet_epochs),
            ("fleet.promotions", &self.fleet_promotions),
            ("fleet.injections", &self.fleet_injections),
            ("grammar.generated", &self.grammar_generated),
            ("grammar.generated_valid", &self.grammar_generated_valid),
            ("grammar.weight_epochs", &self.grammar_weight_epochs),
            ("grammar.promotions", &self.grammar_promotions),
        ]
        .into_iter()
        .map(|(name, c)| (name.to_string(), c.get()))
        .collect();

        let gauges = vec![(
            "driver.queue_depth_now".to_string(),
            self.queue_depth_now.get(),
        )];

        let hists = [
            ("exec.latency_ns", &self.exec_latency_ns),
            ("exec.input_len", &self.input_len),
            ("driver.queue_depth", &self.queue_depth),
            ("fleet.sync_ns", &self.fleet_sync_ns),
        ]
        .into_iter()
        .map(|(name, h)| {
            let counts = h.bucket_counts();
            HistSnapshot {
                name: name.to_string(),
                count: h.count(),
                sum: h.sum(),
                buckets: counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n != 0)
                    .map(|(i, &n)| (i as u32, n))
                    .collect(),
            }
        })
        .collect();

        let mut spans: Vec<SpanSnapshot> = {
            let table = self.spans.lock().expect("span table poisoned");
            table
                .iter()
                .map(|(name, stat)| SpanSnapshot {
                    name: name.to_string(),
                    count: stat.count,
                    total_ns: stat.total_ns,
                })
                .collect()
        };
        // Spans land in the table in first-entered order, which varies
        // across thread interleavings; sort so the snapshot encoding is
        // stable.
        spans.sort_by(|a, b| a.name.cmp(&b.name));

        MetricsSnapshot {
            counters,
            gauges,
            hists,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_per_name() {
        let reg = MetricsRegistry::new();
        reg.record_span("driver.exec", Duration::from_nanos(100));
        reg.record_span("driver.exec", Duration::from_nanos(50));
        reg.record_span("driver.pick", Duration::from_nanos(7));
        assert_eq!(
            reg.span_stat("driver.exec"),
            Some(SpanStat {
                count: 2,
                total_ns: 150
            })
        );
        assert_eq!(
            reg.span_stat("driver.pick"),
            Some(SpanStat {
                count: 1,
                total_ns: 7
            })
        );
        assert_eq!(reg.span_stat("driver.classify"), None);
    }

    #[test]
    fn snapshot_contains_all_counters_and_sorted_spans() {
        let reg = MetricsRegistry::new();
        reg.execs.add(3);
        reg.accepts.add(1);
        reg.rejects.add(2);
        reg.record_span("z.late", Duration::from_nanos(1));
        reg.record_span("a.early", Duration::from_nanos(2));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("execs"), Some(3));
        assert_eq!(snap.counter("verdict.reject"), Some(2));
        assert_eq!(snap.counter("eval.cell_retries"), Some(0));
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.early", "z.late"]);
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        reg.execs.inc();
                        reg.rejects.inc();
                        reg.exec_latency_ns.observe(10);
                        reg.input_len.observe(3);
                    }
                    reg.record_span("worker", Duration::from_nanos(5));
                });
            }
        });
        assert_eq!(reg.execs.get(), 4000);
        assert_eq!(reg.exec_latency_ns.count(), 4000);
        assert_eq!(reg.span_stat("worker").unwrap().count, 4);
        assert!(reg.snapshot().check_identities().is_ok());
    }
}

//! Thread-local registry installation: how instrumented code finds the
//! registry without threading a handle through every signature.
//!
//! Instrumentation sites call [`record`] or [`span`], which look up the
//! registry installed on the *current thread* and silently do nothing
//! when there is none. Callers that want metrics [`install`] a registry
//! for a scope:
//!
//! ```
//! use std::sync::Arc;
//! use pdf_obs::MetricsRegistry;
//!
//! let reg = Arc::new(MetricsRegistry::new());
//! {
//!     let _scope = pdf_obs::install(Arc::clone(&reg));
//!     pdf_obs::record(|m| m.execs.inc()); // lands in `reg`
//! }
//! pdf_obs::record(|m| m.execs.inc()); // no registry: silently dropped
//! assert_eq!(reg.execs.get(), 1);
//! ```
//!
//! The install stack is per-thread, so parallel eval workers each
//! install the shared registry once at thread start (and tests that run
//! concurrently under `cargo test` never observe each other's metrics).
//! Installation nests: an inner `install` shadows the outer registry
//! until its scope guard drops.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::MetricsRegistry;

thread_local! {
    static CURRENT: RefCell<Vec<Arc<MetricsRegistry>>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`install`]; uninstalls the registry when dropped.
#[derive(Debug)]
#[must_use = "dropping the scope immediately uninstalls the registry"]
pub struct MetricsScope {
    installed: Arc<MetricsRegistry>,
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            let popped = stack.borrow_mut().pop();
            debug_assert!(
                popped.is_some_and(|r| Arc::ptr_eq(&r, &self.installed)),
                "metrics scopes dropped out of order"
            );
        });
    }
}

/// Installs `registry` as the current thread's metrics destination until
/// the returned [`MetricsScope`] is dropped. Scopes nest (inner shadows
/// outer) and must drop in LIFO order — which `let`-bound guards do
/// naturally.
pub fn install(registry: Arc<MetricsRegistry>) -> MetricsScope {
    CURRENT.with(|stack| stack.borrow_mut().push(Arc::clone(&registry)));
    MetricsScope {
        installed: registry,
    }
}

/// The registry currently installed on this thread, if any. Used to hand
/// the ambient registry to worker threads before spawning them.
pub fn current() -> Option<Arc<MetricsRegistry>> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Whether a registry is installed on this thread. Lets hot paths skip
/// measurement work (e.g. reading the clock) entirely when metrics are
/// off.
pub fn enabled() -> bool {
    CURRENT.with(|stack| !stack.borrow().is_empty())
}

/// Runs `f` against the installed registry; a no-op when none is
/// installed. This is the one call every instrumentation site makes, so
/// it never clones the `Arc` — it borrows straight off the thread-local
/// stack.
pub fn record(f: impl FnOnce(&MetricsRegistry)) {
    CURRENT.with(|stack| {
        if let Some(reg) = stack.borrow().last() {
            f(reg);
        }
    });
}

/// Timer guard returned by [`span`]; records elapsed time into the span
/// table when dropped.
#[derive(Debug)]
#[must_use = "dropping the span guard immediately records a zero-length span"]
pub struct SpanGuard {
    // `None` when no registry was installed at entry: the drop is free.
    active: Option<(Arc<MetricsRegistry>, Instant)>,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((reg, start)) = self.active.take() {
            reg.record_span(self.name, start.elapsed());
        }
    }
}

/// Starts a named span; the time until the returned guard drops is added
/// to the registry's span table. Reads the clock only when a registry is
/// installed.
///
/// ```
/// use std::sync::Arc;
/// use pdf_obs::MetricsRegistry;
///
/// let reg = Arc::new(MetricsRegistry::new());
/// let _scope = pdf_obs::install(Arc::clone(&reg));
/// {
///     let _span = pdf_obs::span("phase.work");
///     // ... timed work ...
/// }
/// assert_eq!(reg.span_stat("phase.work").unwrap().count, 1);
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        active: current().map(|reg| (reg, Instant::now())),
        name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_without_registry() {
        assert!(!enabled());
        record(|m| m.execs.inc()); // must not panic
        assert!(current().is_none());
    }

    #[test]
    fn install_scopes_and_nests() {
        let outer = Arc::new(MetricsRegistry::new());
        let inner = Arc::new(MetricsRegistry::new());
        let scope_a = install(Arc::clone(&outer));
        record(|m| m.execs.inc());
        {
            let _scope_b = install(Arc::clone(&inner));
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            record(|m| m.execs.inc());
        }
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        record(|m| m.execs.inc());
        drop(scope_a);
        assert!(!enabled());
        assert_eq!(outer.execs.get(), 2);
        assert_eq!(inner.execs.get(), 1);
    }

    #[test]
    fn install_is_per_thread() {
        let reg = Arc::new(MetricsRegistry::new());
        let _scope = install(Arc::clone(&reg));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert!(!enabled(), "other threads see no registry");
                record(|m| m.execs.inc());
            });
        });
        assert_eq!(reg.execs.get(), 0);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = Arc::new(MetricsRegistry::new());
        let _scope = install(Arc::clone(&reg));
        {
            let _span = span("test.phase");
            std::hint::black_box(42);
        }
        {
            let _span = span("test.phase");
        }
        let stat = reg.span_stat("test.phase").unwrap();
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn span_without_registry_is_free() {
        let guard = span("orphan");
        assert!(guard.active.is_none());
        drop(guard); // must not panic
    }
}

//! The metric primitives: counters, gauges and log2-bucket histograms.
//!
//! All three are lock-free (plain relaxed atomics): metrics are written
//! from campaign hot paths and from the parallel matrix workers, and a
//! metric write must never serialize the writers. Relaxed ordering is
//! enough because metrics carry no synchronization duty — readers (the
//! progress ticker, the final snapshot) tolerate being a few increments
//! behind.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter.
///
/// ```
/// use pdf_obs::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge (e.g. the current queue depth).
///
/// ```
/// use pdf_obs::Gauge;
/// let g = Gauge::new();
/// g.set(41);
/// g.set(7);
/// assert_eq!(g.get(), 7);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The last value set.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to 2⁶³, so every `u64` maps to exactly one bucket.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucket histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values `v` with
/// `floor(log2(v)) == i - 1`, i.e. `2^(i-1) <= v < 2^i`. Exponential
/// buckets keep the histogram a fixed 65 slots while spanning
/// nanosecond latencies and million-deep queues alike — the classic
/// fuzzer/profiler trick (AFL's hit-count buckets use the same shape).
///
/// ```
/// use pdf_obs::Histogram;
/// let h = Histogram::new();
/// h.observe(0);   // bucket 0
/// h.observe(1);   // bucket 1
/// h.observe(1000); // 512 <= 1000 < 1024: bucket 10
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 1001);
/// assert_eq!(h.bucket_counts()[10], 1);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index a value lands in.
pub fn bucket_of(v: u64) -> usize {
    match v {
        0 => 0,
        _ => 64 - v.leading_zeros() as usize,
    }
}

/// The inclusive lower bound of bucket `i` (the label a renderer
/// prints next to the count).
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (mean = `sum / count`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 109);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1); // the zero
        assert_eq!(b[1], 2); // the ones
        assert_eq!(b[3], 1); // 7 in [4, 8)
        assert_eq!(b[7], 1); // 100 in [64, 128)
        assert_eq!(b.iter().sum::<u64>(), h.count());
    }
}

//! [`MetricsSnapshot`]: frozen metric values plus the `pdf-metrics v1`
//! text codec, in the same line-oriented `k=v` style as `pdf-journal`
//! and `pdf-checkpoint`. Hand-rolled because the build environment has
//! no serde; [`MetricsSnapshot::encode`]/[`decode`](MetricsSnapshot::decode)
//! round-trip exactly.

use std::fmt;

/// Frozen values of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Metric name (e.g. `exec.latency_ns`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Sparse `(bucket index, observations)` pairs, in index order,
    /// zero-count buckets omitted.
    pub buckets: Vec<(u32, u64)>,
}

/// Frozen values of one span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name (e.g. `driver.exec`).
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds spent inside it.
    pub total_ns: u64,
}

/// A frozen, plain-data view of a
/// [`MetricsRegistry`](crate::MetricsRegistry) — what `--metrics-out`
/// writes and post-hoc analysis reads back.
///
/// ```
/// use pdf_obs::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.execs.inc();
/// reg.rejects.inc();
/// reg.exec_latency_ns.observe(900);
/// reg.input_len.observe(4);
/// let snap = reg.snapshot();
/// let text = snap.encode();
/// assert!(text.starts_with("pdf-metrics v1\n"));
/// let back = pdf_obs::MetricsSnapshot::decode(&text).unwrap();
/// assert_eq!(back, snap);
/// assert!(back.check_identities().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in schema order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// Every histogram.
    pub hists: Vec<HistSnapshot>,
    /// Every span, sorted by name.
    pub spans: Vec<SpanSnapshot>,
}

/// Errors produced when decoding a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first line is not the expected `pdf-metrics v1` header.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "missing or unsupported metrics header"),
            SnapshotError::BadLine { line, reason } => {
                write!(f, "metrics line {line}: {reason}")
            }
        }
    }
}

const HEADER: &str = "pdf-metrics v1";

/// Names go into whitespace-separated `k=v` pairs; reject anything that
/// would break the framing.
fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| !c.is_whitespace() && c != '=')
}

fn encode_buckets(buckets: &[(u32, u64)]) -> String {
    if buckets.is_empty() {
        return "-".to_string();
    }
    buckets
        .iter()
        .map(|(i, n)| format!("{i}:{n}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_buckets(s: &str) -> Option<Vec<(u32, u64)>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (i, n) = pair.split_once(':')?;
            Some((i.parse().ok()?, n.parse().ok()?))
        })
        .collect()
}

impl MetricsSnapshot {
    /// The value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of a named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A named histogram, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// A named span, if present.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Checks the structural identities the instrumentation guarantees:
    ///
    /// - every execution got exactly one verdict:
    ///   `accept + reject + hang + crash == execs`;
    /// - every execution was measured:
    ///   `exec.latency_ns.count == execs` and
    ///   `exec.input_len.count == execs` (when those histograms are
    ///   present);
    /// - every histogram's bucket counts sum to its `count`.
    ///
    /// Returns a human-readable description of the first violated
    /// identity.
    pub fn check_identities(&self) -> Result<(), String> {
        let c = |name: &str| self.counter(name).unwrap_or(0);
        let execs = c("execs");
        let verdicts =
            c("verdict.accept") + c("verdict.reject") + c("verdict.hang") + c("verdict.crash");
        if verdicts != execs {
            return Err(format!(
                "verdict counters sum to {verdicts} but execs={execs}"
            ));
        }
        for name in ["exec.latency_ns", "exec.input_len"] {
            if let Some(h) = self.hist(name) {
                if h.count != execs {
                    return Err(format!("{name}.count={} but execs={execs}", h.count));
                }
            }
        }
        for h in &self.hists {
            let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
            if bucket_total != h.count {
                return Err(format!(
                    "{} buckets sum to {bucket_total} but count={}",
                    h.name, h.count
                ));
            }
        }
        Ok(())
    }

    /// Renders the snapshot in the `pdf-metrics v1` text format.
    ///
    /// # Panics
    ///
    /// Panics if a metric name contains whitespace or `=` — such names
    /// cannot round-trip through the line format, and the fixed registry
    /// schema never produces them.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        let check = |name: &str| {
            assert!(valid_name(name), "unencodable metric name {name:?}");
        };
        for (name, value) in &self.counters {
            check(name);
            let _ = writeln!(out, "counter name={name} value={value}");
        }
        for (name, value) in &self.gauges {
            check(name);
            let _ = writeln!(out, "gauge name={name} value={value}");
        }
        for h in &self.hists {
            check(&h.name);
            let _ = writeln!(
                out,
                "hist name={} count={} sum={} buckets={}",
                h.name,
                h.count,
                h.sum,
                encode_buckets(&h.buckets)
            );
        }
        for s in &self.spans {
            check(&s.name);
            let _ = writeln!(
                out,
                "span name={} count={} ns={}",
                s.name, s.count, s.total_ns
            );
        }
        out
    }

    /// Parses a snapshot previously produced by [`encode`](Self::encode).
    /// Blank lines and `#` comment lines are ignored.
    pub fn decode(text: &str) -> Result<MetricsSnapshot, SnapshotError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == HEADER => {}
            _ => return Err(SnapshotError::BadHeader),
        }
        let mut snap = MetricsSnapshot::default();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |reason: &str| SnapshotError::BadLine {
                line: line_no,
                reason: reason.to_string(),
            };
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| bad("expected 'kind k=v ...'"))?;
            let mut name = None;
            let mut value = None;
            let mut count = None;
            let mut sum = None;
            let mut ns = None;
            let mut buckets = None;
            for pair in rest.split_whitespace() {
                let (key, val) = pair.split_once('=').ok_or_else(|| bad("expected k=v"))?;
                match key {
                    "name" => name = Some(val.to_string()),
                    "value" => value = Some(val.parse().map_err(|_| bad("bad value"))?),
                    "count" => count = Some(val.parse().map_err(|_| bad("bad count"))?),
                    "sum" => sum = Some(val.parse().map_err(|_| bad("bad sum"))?),
                    "ns" => ns = Some(val.parse().map_err(|_| bad("bad ns"))?),
                    "buckets" => {
                        buckets = Some(decode_buckets(val).ok_or_else(|| bad("bad buckets"))?)
                    }
                    other => return Err(bad(&format!("unknown key {other:?}"))),
                }
            }
            let name = name.ok_or_else(|| bad("missing key \"name\""))?;
            let need = |opt: Option<u64>, key: &str| {
                opt.ok_or_else(|| bad(&format!("missing key {key:?}")))
            };
            match kind {
                "counter" => snap.counters.push((name, need(value, "value")?)),
                "gauge" => snap.gauges.push((name, need(value, "value")?)),
                "hist" => snap.hists.push(HistSnapshot {
                    name,
                    count: need(count, "count")?,
                    sum: need(sum, "sum")?,
                    buckets: buckets.ok_or_else(|| bad("missing key \"buckets\""))?,
                }),
                "span" => snap.spans.push(SpanSnapshot {
                    name,
                    count: need(count, "count")?,
                    total_ns: need(ns, "ns")?,
                }),
                other => return Err(bad(&format!("unknown line kind {other:?}"))),
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("execs".to_string(), 4),
                ("verdict.accept".to_string(), 1),
                ("verdict.reject".to_string(), 3),
                ("verdict.hang".to_string(), 0),
                ("verdict.crash".to_string(), 0),
            ],
            gauges: vec![("driver.queue_depth_now".to_string(), 2)],
            hists: vec![
                HistSnapshot {
                    name: "exec.latency_ns".to_string(),
                    count: 4,
                    sum: 5000,
                    buckets: vec![(10, 3), (11, 1)],
                },
                HistSnapshot {
                    name: "driver.queue_depth".to_string(),
                    count: 0,
                    sum: 0,
                    buckets: Vec::new(),
                },
            ],
            spans: vec![SpanSnapshot {
                name: "driver.exec".to_string(),
                count: 4,
                total_ns: 5100,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        let text = snap.encode();
        assert_eq!(MetricsSnapshot::decode(&text).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("execs"), Some(4));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("driver.queue_depth_now"), Some(2));
        assert_eq!(snap.hist("exec.latency_ns").unwrap().sum, 5000);
        assert_eq!(snap.span("driver.exec").unwrap().total_ns, 5100);
    }

    #[test]
    fn identities_hold_and_fail() {
        let mut snap = sample();
        assert_eq!(snap.check_identities(), Ok(()));
        snap.counters[1].1 += 1; // accepts no longer match execs
        assert!(snap.check_identities().is_err());
        let mut snap = sample();
        snap.hists[0].count = 5; // latency count != execs
        assert!(snap.check_identities().is_err());
        let mut snap = sample();
        snap.hists[0].buckets.pop(); // buckets no longer sum to count
        assert!(snap.check_identities().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(MetricsSnapshot::decode(""), Err(SnapshotError::BadHeader));
        assert_eq!(
            MetricsSnapshot::decode("nonsense"),
            Err(SnapshotError::BadHeader)
        );
        for bad in [
            "pdf-metrics v1\nwhat",
            "pdf-metrics v1\nblob name=x value=1",
            "pdf-metrics v1\ncounter value=1",
            "pdf-metrics v1\ncounter name=x",
            "pdf-metrics v1\ncounter name=x value=abc",
            "pdf-metrics v1\nhist name=x count=1 sum=2",
            "pdf-metrics v1\nhist name=x count=1 sum=2 buckets=zz",
            "pdf-metrics v1\nspan name=x count=1",
        ] {
            assert!(
                matches!(
                    MetricsSnapshot::decode(bad),
                    Err(SnapshotError::BadLine { .. })
                ),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn decode_skips_comments_and_blanks() {
        let snap = sample();
        let mut text = snap.encode();
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(MetricsSnapshot::decode(&text).unwrap(), snap);
    }

    #[test]
    fn errors_display() {
        assert!(!SnapshotError::BadHeader.to_string().is_empty());
        let e = SnapshotError::BadLine {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains('3'));
    }
}

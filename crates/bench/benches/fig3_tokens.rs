//! Figure 3: tokens generated per subject and tool, grouped by length.
//! Prints the reproduced figure once and measures the token-coverage
//! scoring step.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::bench_budget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let outcomes = pdf_eval::run_matrix(&bench_budget());
    let cells = pdf_eval::fig3_tokens(&outcomes);
    println!("{}", pdf_eval::render_fig3(&cells));

    c.bench_function("fig3/token_scoring", |b| {
        b.iter(|| pdf_eval::fig3_tokens(black_box(&outcomes)).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Section 2's analytical claim: "building a valid input of size n
//! takes in worst case 2n guesses" for single-lookahead parsers.
//! Prints executions-to-first-valid on arith across seeds and the
//! Section 3 Dyck closing statistics, then benchmarks the driver.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_core::{DriverConfig, Fuzzer};
use std::hint::black_box;

fn first_valid(subject: &str, seed: u64) -> Option<(u64, usize)> {
    let info = pdf_subjects::by_name(subject).unwrap();
    let cfg = DriverConfig {
        seed,
        max_execs: 20_000,
        max_valid_inputs: Some(1),
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let input = report.valid_inputs.first()?;
    Some((report.first_valid_execs?, input.len()))
}

fn bench(c: &mut Criterion) {
    println!("Guesses (executions) until the first valid input:");
    println!(
        "{:<10}{:>8}{:>12}{:>12}{:>12}",
        "subject", "seed", "execs", "len n", "execs/n"
    );
    for subject in ["arith", "dyck"] {
        for seed in 1..=5u64 {
            if let Some((execs, len)) = first_valid(subject, seed) {
                println!(
                    "{subject:<10}{seed:>8}{execs:>12}{len:>12}{:>12.1}",
                    execs as f64 / len.max(1) as f64
                );
            } else {
                println!("{subject:<10}{seed:>8}{:>12}", "none");
            }
        }
    }

    let mut group = c.benchmark_group("ablation_guesses");
    group.sample_size(10);
    group.bench_function("arith_first_valid", |b| {
        b.iter(|| first_valid(black_box("arith"), 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: the Algorithm 1 heuristic terms (DESIGN.md section 5).
//! For each variant, prints valid inputs found and long tokens covered
//! under a fixed budget on json and dyck, then benchmarks one variant.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::bench_execs;
use pdf_core::{DriverConfig, ExtensionMode, Fuzzer, HeuristicConfig};
use pdf_tokens::TokenCoverage;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, HeuristicConfig, ExtensionMode)> {
    let full = HeuristicConfig::default();
    vec![
        ("full", full, ExtensionMode::Both),
        (
            "no_new_branches",
            HeuristicConfig {
                use_new_branches: false,
                ..full
            },
            ExtensionMode::Both,
        ),
        (
            "no_input_length",
            HeuristicConfig {
                use_input_length: false,
                ..full
            },
            ExtensionMode::Both,
        ),
        (
            "no_replacement_len",
            HeuristicConfig {
                use_replacement_len: false,
                ..full
            },
            ExtensionMode::Both,
        ),
        (
            "no_stack_size",
            HeuristicConfig {
                use_stack_size: false,
                ..full
            },
            ExtensionMode::Both,
        ),
        (
            "no_path_dedup",
            HeuristicConfig {
                use_path_dedup: false,
                ..full
            },
            ExtensionMode::Both,
        ),
        (
            "paper_literal_parent_sign",
            HeuristicConfig {
                paper_literal_parent_sign: true,
                ..full
            },
            ExtensionMode::Both,
        ),
        ("disabled", HeuristicConfig::disabled(), ExtensionMode::Both),
        ("replace_only", full, ExtensionMode::ReplaceOnly),
        ("append_only", full, ExtensionMode::AppendOnly),
    ]
}

fn run_variant(
    subject: &str,
    heuristic: HeuristicConfig,
    extension_mode: ExtensionMode,
    execs: u64,
) -> (usize, usize) {
    let info = pdf_subjects::by_name(subject).unwrap();
    let cfg = DriverConfig {
        seed: 1,
        max_execs: execs,
        heuristic,
        extension_mode,
        ..DriverConfig::default()
    };
    let report = Fuzzer::new(info.subject, cfg).run();
    let long_tokens = TokenCoverage::new(subject)
        .map(|mut cov| {
            for input in &report.valid_inputs {
                cov.add_input(input);
            }
            cov.fraction_in(4, usize::MAX).0
        })
        .unwrap_or(0);
    (report.valid_inputs.len(), long_tokens)
}

fn bench(c: &mut Criterion) {
    let execs = bench_execs();
    println!("Heuristic ablation ({execs} execs, seed 1):");
    println!(
        "{:<28}{:>18}{:>18}{:>16}",
        "variant", "json valid", "json long tokens", "dyck valid"
    );
    for (name, heuristic, mode) in variants() {
        let (json_valid, json_long) = run_variant("cjson", heuristic, mode, execs);
        let (dyck_valid, _) = run_variant("dyck", heuristic, mode, execs);
        println!("{name:<28}{json_valid:>18}{json_long:>18}{dyck_valid:>16}");
    }

    let mut group = c.benchmark_group("ablation_heuristic");
    group.sample_size(10);
    group.bench_function("full_json", |b| {
        b.iter(|| {
            run_variant(
                black_box("cjson"),
                HeuristicConfig::default(),
                ExtensionMode::Both,
                execs / 4,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Per-execution overhead of the three event sinks on the json subject.
//!
//! `FullLog` materialises every comparison into an event vector;
//! `LastFailure` keeps only the rejection state; `CoverageOnly` keeps a
//! branch sequence and an EOF flag. The streaming sinks exist to make
//! the driver and the AFL baseline cheaper per execution — this bench
//! quantifies the win (see EXPERIMENTS.md).
//!
//! The comparisons are consumer-equivalent: a coverage consumer (the
//! AFL baseline) needs a `CovSummary`, so its pre-refactor cost is
//! `run()` **plus** `ExecLog::coverage_summary()` (`full_log_coverage`
//! below), against which `coverage_only` (the streaming sink) is
//! measured. Likewise `full_log_failure` vs `last_failure` for the
//! pFuzzer driver. Bare `full_log` is included for context only.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdf_runtime::{Rng, Subject};

/// A workload mix resembling what a fuzzing campaign feeds a subject:
/// short garbage, growing near-valid prefixes, and a few valid inputs.
fn workload() -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        b"{}".to_vec(),
        b"[1,2,3]".to_vec(),
        b"{\"key\": [true, false, null]}".to_vec(),
        b"{\"a\": {\"b\": {\"c\": [1, 2, {\"d\": \"deep\"}]}}}".to_vec(),
        b"[\"string\", 123, {\"nested\": []}, tru".to_vec(),
        b"{\"unterminated\": \"str".to_vec(),
    ];
    let mut rng = Rng::new(7);
    let alphabet = b"{}[]\",:0123456789truefalsenull ";
    for len in 1..=24 {
        let mut input = Vec::with_capacity(len);
        for _ in 0..len {
            input.push(alphabet[rng.gen_range(0, alphabet.len())]);
        }
        inputs.push(input);
    }
    inputs
}

fn run_mix(subject: &Subject, inputs: &[Vec<u8>], mode: &str) -> usize {
    let mut valid = 0;
    for input in inputs {
        let ok = match mode {
            "full_log" => subject.run(input).valid,
            "full_log_coverage" => {
                let exec = subject.run(input);
                black_box(exec.log.coverage_summary());
                exec.valid
            }
            "full_log_failure" => {
                let exec = subject.run(input);
                black_box(exec.log.failure_summary());
                exec.valid
            }
            "coverage_only" => subject.run_coverage(input).valid,
            "last_failure" => subject.run_last_failure(input).valid,
            _ => unreachable!(),
        };
        valid += usize::from(ok);
    }
    valid
}

fn bench(c: &mut Criterion) {
    let subject = pdf_subjects::json::subject();
    let inputs = workload();
    let mut group = c.benchmark_group("sink_overhead");
    group.sample_size(30);
    for mode in [
        "full_log",
        "full_log_coverage",
        "coverage_only",
        "full_log_failure",
        "last_failure",
    ] {
        group.bench_function(mode, |b| {
            b.iter(|| run_mix(black_box(&subject), black_box(&inputs), mode))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Tables 2-4: the token inventories. Prints the reproduced tables and
//! measures inventory construction and scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for inv in pdf_eval::token_tables() {
        println!("{}", pdf_eval::render_token_table(&inv));
    }
    c.bench_function("tables/inventories", |b| {
        b.iter(|| pdf_eval::token_tables().len())
    });
    c.bench_function("tables/scan_mjs", |b| {
        let program = b"for (i = 0; i < 3; i++) x = JSON.stringify([1].indexOf(0));";
        b.iter(|| pdf_tokens::found_tokens("mjs", black_box(program)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

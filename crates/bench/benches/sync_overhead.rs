//! Cost of the fleet coordinator's coverage merge.
//!
//! At every sync epoch the coordinator folds the per-shard `BranchSet`s
//! into a fleet-wide union (`pdf_fleet::merge_coverage`). This bench
//! measures that merge over realistic campaign-sized branch sets — the
//! `valid_branches` of real short campaigns, one per shard seed — for
//! fleet widths 2, 4, 8 and 16, plus the single-pair `union_with` it is
//! built from (see EXPERIMENTS.md "Sync overhead").
//!
//! The sets are built once, outside the timing loop: the bench times
//! the merge, not the campaigns that produced its inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdf_core::{DriverConfig, Fuzzer};
use pdf_runtime::BranchSet;

/// `valid_branches` of a short mjs campaign per shard seed — the same
/// shape of set a real fleet hands to the coordinator.
fn shard_sets(shards: usize) -> Vec<BranchSet> {
    let info = pdf_subjects::by_name("mjs").unwrap();
    (0..shards as u64)
        .map(|shard| {
            let cfg = DriverConfig {
                seed: 1 + shard,
                max_execs: 2_000,
                ..DriverConfig::default()
            };
            Fuzzer::new(info.subject, cfg).run().valid_branches
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let sets = shard_sets(16);
    let mut group = c.benchmark_group("sync_overhead");
    group.sample_size(30);
    for shards in [2usize, 4, 8, 16] {
        group.bench_function(format!("merge_{shards:02}_shards"), |b| {
            b.iter(|| pdf_fleet::merge_coverage(black_box(&sets[..shards])))
        });
    }
    group.bench_function("union_with_pair", |b| {
        b.iter(|| {
            let mut acc = black_box(&sets[0]).clone();
            acc.union_with(black_box(&sets[1]));
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

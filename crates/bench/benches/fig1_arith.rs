//! Figure 1: the prefix-extension walkthrough on the arithmetic
//! expression subject. Prints the trace once and measures the cost of
//! driving pFuzzer to its first valid input.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (trace, first) = pdf_eval::fig1_walkthrough(1, 10_000);
    println!(
        "fig1: {} steps to first valid input {:?}",
        trace.len(),
        first.map(|i| String::from_utf8_lossy(&i).into_owned())
    );
    c.bench_function("fig1/first_valid_arith", |b| {
        b.iter(|| pdf_eval::fig1_walkthrough(black_box(1), black_box(10_000)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Throughput of the compiled flat-table generator against the
//! recursive `Generator` on real mined grammars — the acceptance gate
//! of the generation-backend work.
//!
//! The grammars are mined exactly as the combined campaign mines them:
//! a pFuzzer exploration discovers valid inputs, `mine_corpus`
//! generalizes them. The two sides then compare the pre-existing
//! pipeline shape against the flood shape that replaced it:
//!
//! * `recursive` — `Generator::generate`: a `BTreeMap` walk per
//!   nonterminal, an accounted `Rng` draw per expanded rule, a fresh
//!   `Vec` allocation per input (how `run_pipeline` generated before
//!   the compiled backend existed).
//! * `compiled` — `CompiledGrammar::generate_batch`: dense `u32` rule
//!   tables, one shared terminal pool with literal rules spliced into
//!   their callers, precomputed cheapest expansions (a depth-bound
//!   subtree is one memcpy), an explicit reusable work stack, inputs
//!   and traces landing in a flat `GenBatch` arena, and *one*
//!   accounted draw per generator lifetime expanded into a
//!   `DerivedRng` stream.
//!
//! ## What is gated, and why not 10x throughput
//!
//! *Building Fast Fuzzers* reports order-of-magnitude speedups from
//! compiling grammars — against **interpreted** generators. This
//! repo's recursive `Generator` is already compiled Rust over a small
//! `BTreeMap`; on the tiny grammars pFuzzer mining actually produces
//! (cjson saturates at 19 valid inputs of <= 7 bytes; mjs mines ~13
//! rules), per-input fixed costs bound the achievable gap. Measured
//! honestly, the compiled generator is ~2x end-to-end — and >100x on
//! the quantity this architecture taxes per draw: accounted chokepoint
//! entropy (draw counting plus an eight-step digest fold per value,
//! witnessed in replay journals). EXPERIMENTS.md reports the full
//! numbers. The bench therefore gates three honest floors, and
//! panics (failing `cargo bench`) if any regresses:
//!
//! * `speedup`        >= 1.25x inputs/s on each mined grammar,
//! * `draw_reduction` >= 10x fewer accounted `Rng` draws per input,
//! * absolute compiled throughput >= 2,000,000 inputs/s (cjson) and
//!   >= 200,000 inputs/s (mjs).
//!
//! Besides the Criterion timings the bench prints machine-readable
//! `inputs/s`, `speedup` and `draw_reduction` lines for the CI
//! `grammar-gen` job. `GRAMMAR_GEN_QUICK=1` shrinks the measurement
//! rounds for that job.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use pdf_core::{DriverConfig, Fuzzer};
use pdf_gen::{compile_uniform, GenBatch};
use pdf_grammar::{mine_corpus, Generator, Grammar};
use pdf_runtime::Rng;

const MAX_DEPTH: usize = 16;

/// Mines a grammar the way the combined campaign does: explore with
/// pFuzzer, generalize the valid inputs. Deterministic in the seed.
fn mined_grammar(subject: pdf_runtime::Subject, execs: u64) -> Grammar {
    let report = Fuzzer::new(
        subject,
        DriverConfig {
            seed: 1,
            max_execs: execs,
            ..DriverConfig::default()
        },
    )
    .run();
    assert!(
        !report.valid_inputs.is_empty(),
        "{}: exploration found nothing to mine",
        subject.name()
    );
    mine_corpus(subject, &report.valid_inputs)
}

/// (name, grammar, min speedup, min compiled inputs/s).
fn subjects(quick: bool) -> Vec<(&'static str, Grammar, f64, f64)> {
    // the quick tier keeps CI fast; the floors assume the full mining
    // budget, so they only apply to the full run
    let execs = if quick { 6_000 } else { 30_000 };
    vec![
        (
            "cjson",
            mined_grammar(pdf_subjects::json::subject(), execs),
            1.25,
            2.0e6,
        ),
        (
            "mjs",
            mined_grammar(pdf_subjects::mjs::subject(), execs),
            1.25,
            2.0e5,
        ),
    ]
}

/// Inputs per second: the best of several timed trials. Each trial
/// reseeds its own RNG so every trial expands the same derivation
/// sequence; best-of filters scheduler noise out of both sides of the
/// ratio (a descheduled trial can only lose).
fn rate(rounds: usize, per_round: usize, mut f: impl FnMut() -> usize) -> f64 {
    // one warm-up pass populates stacks and caches
    black_box(f());
    let mut best = f64::MAX;
    for _ in 0..8 {
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (rounds * per_round) as f64 / best
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("GRAMMAR_GEN_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 40 } else { 200 };
    let per_round = 500usize;

    for (name, grammar, min_speedup, min_rate) in subjects(quick) {
        let mut recursive = Generator::new(&grammar, MAX_DEPTH);
        let mut compiled = compile_uniform(&grammar, MAX_DEPTH)
            .expect("mined grammars have acyclic cheapest expansions");

        // contract preamble: re-assert the derivation contract on the
        // exact grammars about to be timed (the full suite lives in
        // pdf-gen's equivalence tests)
        {
            // seeded determinism, and the one-accounted-draw bound
            let mut c2 = compile_uniform(&grammar, MAX_DEPTH).unwrap();
            let mut r1 = Rng::new(9);
            let mut r2 = Rng::new(9);
            let (mut b1, mut b2) = (Vec::new(), Vec::new());
            for i in 0..200 {
                compiled.generate_into(&mut r1, &mut b1);
                c2.generate_into(&mut r2, &mut b2);
                assert_eq!(b1, b2, "{name}: determinism broke at input {i}");
            }
            assert!(
                r1.draw_count() <= 1,
                "{name}: lifetime entropy bound violated"
            );
            // forced-path identity: at depth 0 both emit the same bytes
            let mut rec0 = Generator::new(&grammar, 0);
            let mut com0 = compile_uniform(&grammar, 0).unwrap();
            let mut rr = Rng::new(3);
            let mut rc = Rng::new(3);
            let want = rec0.generate(&mut rr);
            com0.generate_into(&mut rc, &mut b1);
            assert_eq!(b1, want, "{name}: forced paths diverged");
            assert_eq!(rc.draw_count(), 0, "{name}: forced path drew entropy");
        }

        // accounted chokepoint draws per input, both sides
        let (rec_draws, comp_draws) = {
            let mut rng = Rng::new(7);
            for _ in 0..per_round {
                black_box(recursive.generate(&mut rng).len());
            }
            let rec = rng.draw_count();
            let mut rng = Rng::new(7);
            let mut batch = GenBatch::new();
            let mut fresh = compile_uniform(&grammar, MAX_DEPTH).unwrap();
            fresh.generate_batch(&mut rng, &mut batch, per_round);
            (rec, rng.draw_count().max(1))
        };
        let draw_reduction = rec_draws as f64 / comp_draws as f64;

        let slow = rate(rounds, per_round, || {
            let mut rng = Rng::new(7);
            let mut total = 0;
            for _ in 0..per_round {
                total += recursive.generate(&mut rng).len();
            }
            total
        });
        let mut batch = GenBatch::new();
        let fast = rate(rounds, per_round, || {
            let mut rng = Rng::new(7);
            compiled.generate_batch(&mut rng, &mut batch, per_round);
            batch.len()
        });
        let speedup = fast / slow;
        println!(
            "grammar_gen {name}: {} rules, {} alternatives",
            grammar.len(),
            grammar.alt_count()
        );
        println!("grammar_gen {name}: recursive {slow:.0} inputs/s");
        println!("grammar_gen {name}: compiled {fast:.0} inputs/s");
        println!("speedup {name}: {speedup:.2}x");
        println!("draw_reduction {name}: {draw_reduction:.0}x");

        assert!(
            speedup >= min_speedup,
            "{name}: compiled generator regressed to {speedup:.2}x (gate {min_speedup}x)"
        );
        assert!(
            draw_reduction >= 10.0,
            "{name}: accounted-draw reduction {draw_reduction:.1}x below the 10x gate"
        );
        if !quick {
            assert!(
                fast >= min_rate,
                "{name}: compiled throughput {fast:.0} inputs/s below floor {min_rate:.0}"
            );
        }

        let mut group = c.benchmark_group(format!("grammar_gen_{name}"));
        group.sample_size(if quick { 10 } else { 30 });
        group.bench_function("recursive", |b| {
            b.iter(|| {
                let mut rng = Rng::new(7);
                black_box(recursive.generate(&mut rng))
            })
        });
        group.bench_function("compiled_batch64", |b| {
            b.iter(|| {
                let mut rng = Rng::new(7);
                compiled.generate_batch(&mut rng, &mut batch, 64);
                black_box(batch.len())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

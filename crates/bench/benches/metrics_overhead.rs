//! Per-execution overhead of the `pdf-obs` instrumentation on the same
//! json workload as `sink_overhead`.
//!
//! Every `Subject::exec` records two counter increments and two
//! histogram observations — but only when a registry is installed on
//! the current thread; otherwise the thread-local lookup short-circuits
//! and not even the clock is read. This bench quantifies both sides:
//! `uninstrumented` (no registry, the default for library users),
//! `instrumented` (registry installed, what `--metrics-out` and
//! `--progress` enable) and `instrumented_spans` (registry plus a span
//! per batch, the driver-loop pattern). The observability layer
//! targets <3% overhead when enabled (see EXPERIMENTS.md for measured
//! numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pdf_runtime::{Rng, Subject};

/// Same campaign-like workload mix as `sink_overhead`: short garbage,
/// growing near-valid prefixes, a few valid inputs.
fn workload() -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        b"{}".to_vec(),
        b"[1,2,3]".to_vec(),
        b"{\"key\": [true, false, null]}".to_vec(),
        b"{\"a\": {\"b\": {\"c\": [1, 2, {\"d\": \"deep\"}]}}}".to_vec(),
        b"[\"string\", 123, {\"nested\": []}, tru".to_vec(),
        b"{\"unterminated\": \"str".to_vec(),
    ];
    let mut rng = Rng::new(7);
    let alphabet = b"{}[]\",:0123456789truefalsenull ";
    for len in 1..=24 {
        let mut input = Vec::with_capacity(len);
        for _ in 0..len {
            input.push(alphabet[rng.gen_range(0, alphabet.len())]);
        }
        inputs.push(input);
    }
    inputs
}

fn run_mix(subject: &Subject, inputs: &[Vec<u8>]) -> usize {
    let mut valid = 0;
    for input in inputs {
        valid += usize::from(subject.run_last_failure(input).valid);
    }
    valid
}

/// A heavier, realistic workload: mjs scripts of the kind a campaign
/// plateaus on. Each exec runs the full tokenizer + parser + interpreter
/// pipeline, so the fixed per-exec instrumentation cost is amortised.
fn mjs_workload() -> Vec<Vec<u8>> {
    vec![
        b"let x = 1; while (x < 100) { x = x + 7; } print(x);".to_vec(),
        b"function f(a, b) { return a * b + 3; } let y = f(6, 7); if (y > 40) { print(y); }"
            .to_vec(),
        b"let s = 0; for (let i = 0; i < 50; i++) { s = s + i; }".to_vec(),
        b"let a = [1, 2, 3]; let o = {k: \"v\"}; print(o.k);".to_vec(),
        b"function g(n) { if (n <= 1) { return 1; } return n * g(n - 1); } print(g(7));".to_vec(),
        b"let broken = { unclosed: [1, 2".to_vec(),
    ]
}

fn bench_workload(c: &mut Criterion, group_name: &str, subject: &Subject, inputs: &[Vec<u8>]) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(30);

    group.bench_function("uninstrumented", |b| {
        assert!(!pdf_obs::enabled());
        b.iter(|| run_mix(black_box(subject), black_box(inputs)))
    });

    group.bench_function("instrumented", |b| {
        let registry = Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(Arc::clone(&registry));
        b.iter(|| run_mix(black_box(subject), black_box(inputs)))
    });

    group.bench_function("instrumented_spans", |b| {
        let registry = Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(Arc::clone(&registry));
        b.iter(|| {
            let _span = pdf_obs::span("bench.batch");
            run_mix(black_box(subject), black_box(inputs))
        })
    });

    group.finish();
}

fn bench(c: &mut Criterion) {
    bench_workload(
        c,
        "metrics_overhead",
        &pdf_subjects::json::subject(),
        &workload(),
    );
    bench_workload(
        c,
        "metrics_overhead_mjs",
        &pdf_subjects::mjs::subject(),
        &mjs_workload(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The token-discovery pipeline: prints the mined-inventory scorecard
//! for tinyC (the EXPERIMENTS.md "Token discovery" study at bench
//! scale), then measures the miner's two hot paths — absorbing
//! observations and reducing them to a ranked dictionary.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::bench_execs;
use pdf_tokens::TokenMiner;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let info = pdf_subjects::by_name("tinyC").unwrap();
    let (dict, row) = pdf_eval::mine_subject_dictionary(&info, bench_execs() * 4, 1);
    println!(
        "tinyC mined dictionary ({} execs): {} tokens, inventory len>=2 {}/{} len>=4 {}/{}",
        row.execs, row.mined, row.multi.0, row.multi.1, row.long.0, row.long.1
    );
    println!(
        "  tokens: {}",
        dict.tokens()
            .iter()
            .map(|t| String::from_utf8_lossy(t).into_owned())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // a realistic observation stream: keyword comparisons + a corpus
    // of small programs sharing recurring substrings
    let comparisons: Vec<&[u8]> = vec![b"while", b"if", b"else", b"do", b"=="];
    let corpus: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("{{ a = {i} ; while ( a < 9 ) a = a + 1 ; }}").into_bytes())
        .collect();

    c.bench_function("token_miner/observe", |b| {
        b.iter(|| {
            let mut miner = TokenMiner::new();
            for tok in &comparisons {
                miner.observe_comparison(black_box(tok));
            }
            for input in &corpus {
                miner.observe_corpus_input(black_box(input));
            }
            miner.comparison_observations()
        })
    });

    let mut warm = TokenMiner::new();
    for tok in &comparisons {
        warm.observe_comparison(tok);
    }
    for input in &corpus {
        warm.observe_corpus_input(input);
    }
    c.bench_function("token_miner/mine", |b| b.iter(|| warm.mine().len()));
}

criterion_group!(benches, bench);
criterion_main!(benches);

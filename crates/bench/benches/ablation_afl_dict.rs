//! Ablation revisiting the Section 6 AFL-CTP discussion: can AFL match
//! pFuzzer's token coverage when it is handed keyword knowledge (a
//! dictionary)? Prints keyword counts for AFL, AFL+dictionary and
//! pFuzzer on json, then benchmarks the dictionary run.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_afl::{AflConfig, AflFuzzer};
use pdf_bench::bench_execs;
use pdf_core::{DriverConfig, Fuzzer};
use pdf_tokens::TokenCoverage;
use std::hint::black_box;

fn keywords(inputs: &[Vec<u8>]) -> usize {
    let mut cov = TokenCoverage::new("cjson").unwrap();
    for input in inputs {
        cov.add_input(input);
    }
    ["true", "false", "null"]
        .iter()
        .filter(|k| cov.found(k))
        .count()
}

fn afl_run(execs: u64, dictionary: Vec<Vec<u8>>) -> usize {
    let report = AflFuzzer::new(
        pdf_subjects::json::subject(),
        AflConfig {
            seed: 1,
            max_execs: execs,
            dictionary,
            ..AflConfig::default()
        },
    )
    .run();
    keywords(&report.valid_inputs)
}

fn bench(c: &mut Criterion) {
    let execs = bench_execs() * 4;
    let dict = vec![b"true".to_vec(), b"false".to_vec(), b"null".to_vec()];
    let plain = afl_run(execs, Vec::new());
    let with_dict = afl_run(execs, dict.clone());
    let pfuzzer = {
        let report = Fuzzer::new(
            pdf_subjects::json::subject(),
            DriverConfig {
                seed: 1,
                max_execs: execs,
                ..DriverConfig::default()
            },
        )
        .run();
        keywords(&report.valid_inputs)
    };
    println!("json keywords found ({execs} execs): AFL {plain}/3, AFL+dict {with_dict}/3, pFuzzer {pfuzzer}/3");

    let mut group = c.benchmark_group("ablation_afl_dict");
    group.sample_size(10);
    group.bench_function("afl_dict_json", |b| {
        b.iter(|| afl_run(black_box(execs / 4), dict.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

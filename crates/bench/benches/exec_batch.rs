//! Throughput of the batched fast-failure hot path against
//! full-instrumentation candidate scoring (the acceptance gate of the
//! tiered-execution work: >= 5x execs/sec on arith and dyck).
//!
//! Three ways to score the same candidate workload:
//!
//! * `full` — the pre-tiering driver path: `run()` (FullLog sink,
//!   every comparison materialised) plus `failure_summary()` per
//!   candidate.
//! * `last_failure` — the streaming `LastFailure` sink, one fresh sink
//!   and input buffer allocated per execution.
//! * `exec_batch_fast` — the whole batch pushed through one reusable
//!   [`ExecArena`](pdf_runtime::ExecArena) under the `FastFailure`
//!   sink (rejection index + last comparison only, buffers cleared
//!   between executions, never reallocated).
//!
//! Besides the Criterion timings the bench prints machine-readable
//! `execs/s` and `speedup <subject>: N.Nx` lines (fast batch over
//! `full`); the CI `throughput-smoke` job gates on the speedup
//! staying at 5x or better. `EXEC_BATCH_QUICK=1` shrinks the
//! measurement rounds for that job.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use pdf_runtime::{ExecArena, Rng, Subject};

/// Candidate-shaped workload for one subject, mirroring what the
/// driver's queue feeds `exec_batch` at promotion time: for every
/// prefix length up to 64 bytes, the grown prefix itself plus two
/// substitution variants at the frontier byte (candidates are
/// near-valid by construction — a parsed prefix with one replaced
/// byte), and a sprinkle of short random strings for the restart case.
fn workload(alphabet: &[u8], nearly: &[u8]) -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = Vec::new();
    let mut rng = Rng::new(41);
    for len in 1..=nearly.len().min(64) {
        inputs.push(nearly[..len].to_vec());
        for _ in 0..2 {
            let mut variant = nearly[..len].to_vec();
            variant[len - 1] = alphabet[rng.gen_range(0, alphabet.len())];
            inputs.push(variant);
        }
    }
    for len in 1..=16usize {
        let mut input = Vec::with_capacity(len);
        for _ in 0..len {
            input.push(alphabet[rng.gen_range(0, alphabet.len())]);
        }
        inputs.push(input);
    }
    inputs
}

fn subjects() -> Vec<(&'static str, Subject, Vec<Vec<u8>>)> {
    vec![
        (
            "arith",
            pdf_subjects::arith::subject(),
            workload(
                b"0123456789+-*/() ",
                b"((1+2)*(3-4))/((5+6)*(7-8))+((9*1)-(2/3))*((4+5)-(6*7))",
            ),
        ),
        (
            "dyck",
            pdf_subjects::dyck::subject(),
            workload(
                b"()[]{}",
                b"([{}])([{}])([{}])([{}])([{}])([{}])([{}])([{}])([{}])([{}])",
            ),
        ),
    ]
}

fn score_full(subject: &Subject, inputs: &[Vec<u8>]) -> usize {
    let mut valid = 0;
    for input in inputs {
        let exec = subject.run(input);
        black_box(exec.log.failure_summary());
        valid += usize::from(exec.valid);
    }
    valid
}

fn score_last_failure(subject: &Subject, inputs: &[Vec<u8>]) -> usize {
    inputs
        .iter()
        .map(|i| usize::from(subject.run_last_failure(i).valid))
        .sum()
}

fn score_batch_fast(subject: &Subject, arena: &mut ExecArena, inputs: &[Vec<u8>]) -> usize {
    subject
        .exec_batch_fast(arena, inputs)
        .iter()
        .map(|e| usize::from(e.valid))
        .sum()
}

/// Executions per second of `f`: the best of several timed trials of
/// `rounds` workload passes each. Best-of filters scheduler noise out
/// of both sides of the speedup ratio — a descheduled trial can only
/// lose, never inflate — which keeps the CI gate stable on loaded
/// machines.
fn rate(rounds: usize, execs_per_round: usize, mut f: impl FnMut() -> usize) -> f64 {
    // one warm-up pass populates arenas and caches
    black_box(f());
    let mut best = f64::MAX;
    for _ in 0..8 {
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (rounds * execs_per_round) as f64 / best
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("EXEC_BATCH_QUICK").is_ok_and(|v| v == "1");
    let rounds = if quick { 60 } else { 300 };

    for (name, subject, inputs) in subjects() {
        let mut arena = ExecArena::new();
        // the three paths must agree on the verdicts they score
        let want = score_full(&subject, &inputs);
        assert_eq!(want, score_last_failure(&subject, &inputs));
        assert_eq!(want, score_batch_fast(&subject, &mut arena, &inputs));

        let full = rate(rounds, inputs.len(), || score_full(&subject, &inputs));
        let last = rate(rounds, inputs.len(), || {
            score_last_failure(&subject, &inputs)
        });
        let fast = rate(rounds, inputs.len(), || {
            score_batch_fast(&subject, &mut arena, &inputs)
        });
        println!("exec_batch {name}: full {full:.0} execs/s");
        println!("exec_batch {name}: last_failure {last:.0} execs/s");
        println!("exec_batch {name}: batch_fast {fast:.0} execs/s");
        println!("speedup {name}: {:.1}x", fast / full);

        let mut group = c.benchmark_group(format!("exec_batch_{name}"));
        group.sample_size(if quick { 10 } else { 30 });
        group.bench_function("full", |b| {
            b.iter(|| score_full(black_box(&subject), black_box(&inputs)))
        });
        group.bench_function("last_failure", |b| {
            b.iter(|| score_last_failure(black_box(&subject), black_box(&inputs)))
        });
        group.bench_function("batch_fast", |b| {
            b.iter(|| score_batch_fast(black_box(&subject), &mut arena, black_box(&inputs)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The Section 7.4 pipeline as a benchmark: explore with pFuzzer, mine
//! a grammar, generate longer recursive inputs. Prints the mined-grammar
//! statistics and acceptance rates, then benchmarks the mining stage.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::bench_execs;
use pdf_grammar::mine_corpus;
use pdf_grammar::pipeline::{run_pipeline, PipelineConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for subject_name in ["arith", "dyck", "cjson"] {
        let info = pdf_subjects::by_name(subject_name).unwrap();
        let report = run_pipeline(
            info.subject,
            &PipelineConfig {
                seed: 1,
                fuzz_execs: bench_execs(),
                generate: 300,
                max_depth: 12,
            },
        );
        println!(
            "{subject_name:<8} fuzzed {:>3} (max len {:>3}) | grammar: {:>3} nts, {:>3} alts, recursive {} | generated accept {:>5.1}%, max len {:>4}",
            report.fuzzed.len(),
            report.max_fuzzed_len,
            report.grammar.len(),
            report.grammar.alt_count(),
            report.grammar.has_recursion(),
            100.0 * report.acceptance_rate(),
            report.max_generated_len,
        );
    }

    let corpus: Vec<Vec<u8>> = [&b"1"[..], b"(1)", b"((2))", b"1+2", b"(1+2)-3"]
        .iter()
        .map(|x| x.to_vec())
        .collect();
    c.bench_function("grammar/mine_arith", |b| {
        b.iter(|| mine_corpus(pdf_subjects::arith::subject(), black_box(&corpus)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Section 5.3 headline aggregates: token coverage for short and long
//! tokens across all subjects.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::bench_budget;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let outcomes = pdf_eval::run_matrix(&bench_budget());
    println!(
        "{}",
        pdf_eval::render_headline(&pdf_eval::headline_aggregates(&outcomes))
    );

    c.bench_function("headline/aggregate", |b| {
        b.iter(|| pdf_eval::headline_aggregates(black_box(&outcomes)).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

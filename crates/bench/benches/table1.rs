//! Table 1: subjects of the evaluation. Prints the reproduced table and
//! measures the (trivial) generation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", pdf_eval::render_table1(&pdf_eval::table1_subjects()));
    c.bench_function("table1/render", |b| {
        b.iter(|| pdf_eval::render_table1(black_box(&pdf_eval::table1_subjects())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 2: branch coverage per subject and tool. Prints the
//! reproduced figure once (for EXPERIMENTS.md) and measures one
//! subject's three-tool comparison as the benchmark body.

use criterion::{criterion_group, criterion_main, Criterion};
use pdf_bench::{bench_budget, bench_execs};
use pdf_eval::{run_tool_seeded, Tool};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let outcomes = pdf_eval::run_matrix(&bench_budget());
    println!(
        "{}",
        pdf_eval::render_fig2(&pdf_eval::fig2_coverage(&outcomes))
    );

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for tool in Tool::ALL {
        group.bench_function(format!("json_{}", tool.name()), |b| {
            let info = pdf_subjects::by_name("cjson").unwrap();
            b.iter(|| run_tool_seeded(black_box(tool), &info, bench_execs() / 4, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

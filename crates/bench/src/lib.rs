//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper: it
//! prints the reproduced rows/series once (so `cargo bench` output can
//! be diffed against EXPERIMENTS.md) and then measures the cost of the
//! underlying computation with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pdf_eval::EvalBudget;

/// The execution budget bench targets use per tool and subject. Small
/// enough to keep `cargo bench` in the minutes, large enough that the
/// qualitative shape (who wins where) matches the full runs recorded in
/// EXPERIMENTS.md.
pub fn bench_budget() -> EvalBudget {
    EvalBudget {
        execs: bench_execs(),
        seeds: vec![1, 2],
        afl_throughput: 4,
    }
}

/// Per-seed execution budget, overridable via `PDF_BENCH_EXECS`.
pub fn bench_execs() -> u64 {
    std::env::var("PDF_BENCH_EXECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_sane() {
        let b = bench_budget();
        assert!(b.execs >= 1_000);
        assert!(!b.seeds.is_empty());
    }
}

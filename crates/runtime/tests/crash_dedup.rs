//! Property test for crash deduplication: the dedup key is a digest
//! over the *site tail* of the execution, so input bytes that steer the
//! parser through the same sites must produce the same key, while
//! crashes at distinct sites must produce distinct keys.

use proptest::prelude::*;

use pdf_runtime::{cov, instrument_subject, lit, lit_range, SITE_TAIL_LEN};
use pdf_runtime::{EventSink, ExecCtx, ParseError, Subject, Verdict};

/// Consumes any digit prefix through one loop site, then panics at one
/// of two distinct sites depending on the terminator.
fn digits_then_boom<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
    while lit_range!(ctx, b'0', b'9') {}
    if lit!(ctx, b'!') {
        cov!(ctx);
        panic!("bang");
    }
    if lit!(ctx, b'?') {
        cov!(ctx);
        panic!("quizzical");
    }
    ctx.expect_end()
}

fn subject() -> Subject {
    instrument_subject!("digits-then-boom", digits_then_boom)
}

fn crash_key(s: &Subject, input: &[u8]) -> u64 {
    match s.run(input).verdict {
        Verdict::Crash { dedup_key, .. } => dedup_key,
        v => panic!("expected a crash on {input:?}, got {v:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same site tail, arbitrary input bytes: the key only sees *where*
    /// the parser went, not which digits drove it there.
    #[test]
    fn key_ignores_input_bytes_that_keep_the_site_tail(
        digits_a in proptest::collection::vec(b'0'..=b'9', 4),
        digits_b in proptest::collection::vec(b'0'..=b'9', 4),
    ) {
        let s = subject();
        let mut a = digits_a.clone();
        a.push(b'!');
        let mut b = digits_b.clone();
        b.push(b'!');
        prop_assert_eq!(crash_key(&s, &a), crash_key(&s, &b));
    }

    /// Once the prefix loop has filled the whole tail window, even the
    /// *length* of the prefix stops mattering: the last
    /// [`SITE_TAIL_LEN`] sites are saturated by the loop site.
    #[test]
    fn key_windows_to_the_site_tail(
        len_a in SITE_TAIL_LEN..4 * SITE_TAIL_LEN,
        len_b in SITE_TAIL_LEN..4 * SITE_TAIL_LEN,
    ) {
        let s = subject();
        let mut a = vec![b'7'; len_a];
        a.push(b'!');
        let mut b = vec![b'3'; len_b];
        b.push(b'!');
        prop_assert_eq!(crash_key(&s, &a), crash_key(&s, &b));
    }

    /// Distinct panic sites always get distinct keys, whatever the
    /// shared prefix was.
    #[test]
    fn distinct_sites_get_distinct_keys(
        digits in proptest::collection::vec(b'0'..=b'9', 0..12),
    ) {
        let s = subject();
        let mut bang = digits.clone();
        bang.push(b'!');
        let mut quiz = digits.clone();
        quiz.push(b'?');
        prop_assert_ne!(crash_key(&s, &bang), crash_key(&s, &quiz));
    }
}

#[test]
fn key_is_stable_across_runs_and_sinks() {
    let s = subject();
    let input = b"123!";
    let full = crash_key(&s, input);
    assert_eq!(full, crash_key(&s, input));
    let Verdict::Crash { dedup_key: cov, .. } = s.run_coverage(input).verdict else {
        panic!("expected crash");
    };
    let Verdict::Crash { dedup_key: lf, .. } = s.run_last_failure(input).verdict else {
        panic!("expected crash");
    };
    assert_eq!(full, cov);
    assert_eq!(full, lf);
}

//! Property tests for the journal text codec: arbitrary decision
//! streams and field values survive encode → decode exactly.

use proptest::prelude::*;

use pdf_runtime::{digest_bytes, CellRecord, Journal};

proptest! {
    /// A single record with an arbitrary byte-level decision stream and
    /// arbitrary numeric fields round-trips exactly.
    #[test]
    fn single_record_round_trips(
        decisions in proptest::collection::vec(any::<u8>(), 0..256),
        seed in any::<u64>(),
        execs in any::<u64>(),
        config_hash in any::<u64>(),
        outcome_digest in any::<u64>(),
    ) {
        let rec = CellRecord {
            tool: "pFuzzer".to_string(),
            subject: "csv".to_string(),
            seed,
            execs,
            config_hash,
            decision_count: decisions.len() as u64,
            decision_digest: digest_bytes(&decisions),
            decisions: decisions.clone(),
            outcome_digest,
        };
        let journal = Journal { cells: vec![rec] };
        let decoded = Journal::decode(&journal.encode()).expect("decodes");
        prop_assert_eq!(decoded, journal);
    }

    /// Journals with several cells, including empty decision streams,
    /// round-trip with cell order preserved.
    #[test]
    fn multi_cell_journals_round_trip(
        streams in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..8,
        ),
        base_seed in any::<u64>(),
    ) {
        let cells: Vec<CellRecord> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| CellRecord {
                tool: if i % 2 == 0 { "pFuzzer" } else { "AFL" }.to_string(),
                subject: format!("subject{i}"),
                seed: base_seed.wrapping_add(i as u64),
                execs: 1000 + i as u64,
                config_hash: digest_bytes(&[i as u8]),
                decision_count: s.len() as u64,
                decision_digest: digest_bytes(s),
                decisions: s.clone(),
                outcome_digest: digest_bytes(s).rotate_left(17),
            })
            .collect();
        let journal = Journal { cells };
        let decoded = Journal::decode(&journal.encode()).expect("decodes");
        prop_assert_eq!(decoded, journal);
    }
}

//! Reusable execution scratch for the batched hot path.
//!
//! *Building Fast Fuzzers* (PAPERS.md) attributes most per-execution
//! cost in interpreter-style harnesses to setup/teardown rather than
//! parsing; our equivalent is the per-exec allocation of the input
//! copy, the sink's event/branch/watermark vectors and the batch result
//! vector. An [`ExecArena`] owns all of those buffers and hands them to
//! each execution *cleared, not reallocated*, so a batch of N candidate
//! runs through [`Subject::exec_batch_fast`](crate::Subject::exec_batch_fast)
//! or [`Subject::exec_batch_failure`](crate::Subject::exec_batch_failure)
//! performs a bounded number of allocations total instead of a handful
//! per candidate.
//!
//! The arena is plain owned state — no unsafe, no interior mutability.
//! Sinks borrow buffers via [`LastFailure::recycled`](crate::LastFailure::recycled)
//! / [`FullLog::recycled`](crate::FullLog::recycled) (a `mem::take` of
//! the cleared vector) and return them in
//! [`finish_into`](crate::LastFailure::finish_into) /
//! [`recycle_log`](ExecArena::recycle_log). Dropping a sink without
//! returning its buffers is safe; the arena simply reallocates next
//! time.
//!
//! # Example
//!
//! ```
//! use pdf_runtime::ExecArena;
//!
//! let subject = pdf_runtime::Subject::new("demo", |ctx| ctx.expect_end());
//! let mut arena = ExecArena::new();
//! let candidates: Vec<&[u8]> = vec![b"", b"x", b"xy"];
//! let results = subject.exec_batch_fast(&mut arena, &candidates);
//! assert_eq!(results.len(), 3);
//! assert!(results[0].valid);
//! ```

use crate::coverage::BranchId;
use crate::events::{CmpValue, Event, ExecLog};
use crate::subject::{FailureExecution, FastExecution};

/// Preallocated scratch shared by a sequence of executions: the input
/// copy, the sinks' internal vectors and the batch result vectors, all
/// cleared and reused between runs.
///
/// *Building Fast Fuzzers* (PAPERS.md) attributes most per-execution
/// cost in interpreter-style harnesses to setup/teardown rather than
/// parsing; the arena removes our equivalent, so a batch of N runs
/// through [`Subject::exec_batch_fast`](crate::Subject::exec_batch_fast)
/// or [`Subject::exec_batch_failure`](crate::Subject::exec_batch_failure)
/// performs a bounded number of allocations total instead of a
/// handful per candidate.
#[derive(Debug, Default)]
pub struct ExecArena {
    /// Input bytes of the execution in flight (recycled copy target).
    pub(crate) input_buf: Vec<u8>,
    /// Branch-order sequence buffer (`LastFailure::seq`).
    pub(crate) seq: Vec<BranchId>,
    /// Per-input-index watermark buffer (`LastFailure::watermarks`).
    pub(crate) watermarks: Vec<u32>,
    /// Failed-comparison scratch (`LastFailure::failed`).
    pub(crate) failed: Vec<CmpValue>,
    /// Flat event buffer for recycled `FullLog` runs.
    pub(crate) events: Vec<Event>,
    /// Result slots for [`Subject::exec_batch_fast`](crate::Subject::exec_batch_fast).
    pub(crate) fast_results: Vec<FastExecution>,
    /// Result slots for [`Subject::exec_batch_failure`](crate::Subject::exec_batch_failure).
    pub(crate) failure_results: Vec<FailureExecution>,
}

impl ExecArena {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a finished full log's event buffer back for reuse by the
    /// next [`FullLog::recycled`](crate::FullLog::recycled) sink.
    pub fn recycle_log(&mut self, mut log: ExecLog) {
        log.events.clear();
        self.events = log.events;
    }

    /// Results of the latest [`Subject::exec_batch_fast`](crate::Subject::exec_batch_fast)
    /// call (empty before the first).
    pub fn fast_results(&self) -> &[FastExecution] {
        &self.fast_results
    }

    /// Results of the latest [`Subject::exec_batch_failure`](crate::Subject::exec_batch_failure)
    /// call (empty before the first).
    pub fn failure_results(&self) -> &[FailureExecution] {
        &self.failure_results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_log_clears_and_keeps_capacity() {
        let mut arena = ExecArena::new();
        let log = ExecLog {
            events: Vec::with_capacity(64),
            input_len: 3,
        };
        arena.recycle_log(log);
        assert!(arena.events.is_empty());
        assert!(arena.events.capacity() >= 64);
    }
}

//! The record/replay journal: a compact, text-encoded description of a
//! fuzzing campaign precise enough to re-execute it and verify that the
//! outcome is byte-identical.
//!
//! A [`Journal`] is a list of [`CellRecord`]s, one per (tool, subject,
//! seed) campaign of an evaluation matrix. Each record carries:
//!
//! - the **identity** of the cell (tool, subject, seed, execution
//!   budget) plus a hash of the tool configuration it ran under, so a
//!   replay on a drifted configuration is detected rather than silently
//!   producing different results;
//! - the **decision stream**: for the pFuzzer driver the exact bytes it
//!   drew from its RNG (one per random-character decision), which lets a
//!   replay re-execute the campaign *from the journal* without an RNG;
//!   for the baselines a draw count and rolling digest of the raw RNG
//!   stream (see [`Rng::stream_digest`](crate::Rng::stream_digest));
//! - the **outcome digest**: a 64-bit FNV-1a digest over every
//!   deterministic field of the campaign outcome (valid inputs,
//!   discovery indices, branch sets, counters — never wall-clock).
//!
//! The encoding is a line-oriented text format (`pdf-journal v1`), one
//! `cell` line per record, hand-rolled because the build environment has
//! no serde. [`Journal::encode`]/[`Journal::decode`] round-trip exactly.

use std::fmt;

/// Incremental 64-bit FNV-1a digest used for outcome digests, decision
/// digests and configuration hashes throughout the workspace.
///
/// # Example
///
/// ```
/// use pdf_runtime::Digest;
/// let mut d = Digest::new();
/// d.write_bytes(b"abc");
/// d.write_u64(7);
/// let first = d.finish();
/// let mut e = Digest::new();
/// e.write_bytes(b"abc");
/// e.write_u64(7);
/// assert_eq!(first, e.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Digest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Creates a digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Mixes a single byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Mixes a byte slice, framed by its length so that `("ab", "c")`
    /// and `("a", "bc")` digest differently.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Mixes a 64-bit value (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Mixes a UTF-8 string (framed, like [`write_bytes`](Self::write_bytes)).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest value accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of a standalone byte string (the rule used for pFuzzer
/// decision streams).
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.write_bytes(bytes);
    d.finish()
}

/// One recorded campaign: everything needed to re-execute a matrix cell
/// and check the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Tool name (`pFuzzer`, `AFL`, `KLEE`).
    pub tool: String,
    /// Subject name (`ini`, `csv`, `cjson`, ...).
    pub subject: String,
    /// Campaign seed.
    pub seed: u64,
    /// Execution budget the cell ran with.
    pub execs: u64,
    /// Hash of the tool configuration (detects config drift on replay).
    pub config_hash: u64,
    /// Number of decisions the campaign drew.
    pub decision_count: u64,
    /// Digest of the decision stream. For tools that record an explicit
    /// byte stream this is [`digest_bytes`] of `decisions`; for the
    /// others it is the tool RNG's rolling
    /// [`stream_digest`](crate::Rng::stream_digest).
    pub decision_digest: u64,
    /// Explicit byte-level decision stream, when the tool records one
    /// (the pFuzzer driver does; the baselines record digests only).
    pub decisions: Vec<u8>,
    /// Digest over the deterministic fields of the campaign outcome.
    pub outcome_digest: u64,
}

/// A recorded evaluation: an ordered list of campaign records.
///
/// # Example
///
/// The text encoding round-trips exactly, so a journal can be written,
/// stored, and replayed later:
///
/// ```
/// use pdf_runtime::{CellRecord, Journal};
///
/// let journal = Journal {
///     cells: vec![CellRecord {
///         tool: "pFuzzer".to_string(),
///         subject: "csv".to_string(),
///         seed: 1,
///         execs: 500,
///         config_hash: 0xabcd,
///         decision_count: 2,
///         decision_digest: pdf_runtime::digest_bytes(&[7, 9]),
///         decisions: vec![7, 9],
///         outcome_digest: 0x1234,
///     }],
/// };
/// let text = journal.encode();
/// assert!(text.starts_with("pdf-journal v1"));
/// assert_eq!(Journal::decode(&text).unwrap(), journal);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// The recorded cells, in matrix order.
    pub cells: Vec<CellRecord>,
}

/// Errors produced when decoding a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The first line is not the expected `pdf-journal v1` header.
    BadHeader,
    /// A `cell` line could not be parsed.
    BadLine {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadHeader => write!(f, "missing or unsupported journal header"),
            JournalError::BadLine { line, reason } => {
                write!(f, "journal line {line}: {reason}")
            }
        }
    }
}

const HEADER: &str = "pdf-journal v1";

/// Lowercase hex of a byte string, two digits per byte. The byte-string
/// encoding shared by the journal codec and the campaign checkpoint
/// codec in `pdf-core`.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Names go into whitespace-separated `k=v` pairs; reject anything that
/// would break the framing.
fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| !c.is_whitespace() && c != '=')
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, cell: CellRecord) {
        self.cells.push(cell);
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Renders the journal in the `pdf-journal v1` text format.
    ///
    /// # Panics
    ///
    /// Panics if a tool or subject name contains whitespace or `=` —
    /// such names cannot round-trip through the line format, and no
    /// registered tool or subject uses them.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for c in &self.cells {
            assert!(valid_name(&c.tool), "unencodable tool name {:?}", c.tool);
            assert!(
                valid_name(&c.subject),
                "unencodable subject name {:?}",
                c.subject
            );
            let _ = write!(
                out,
                "cell tool={} subject={} seed={} execs={} cfg={:016x} decn={} decd={:016x} out={:016x}",
                c.tool,
                c.subject,
                c.seed,
                c.execs,
                c.config_hash,
                c.decision_count,
                c.decision_digest,
                c.outcome_digest,
            );
            if !c.decisions.is_empty() {
                let _ = write!(out, " dec={}", hex_encode(&c.decisions));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a journal previously produced by [`encode`](Self::encode).
    /// Blank lines and `#` comment lines are ignored.
    pub fn decode(text: &str) -> Result<Journal, JournalError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == HEADER => {}
            _ => return Err(JournalError::BadHeader),
        }
        let mut journal = Journal::new();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |reason: &str| JournalError::BadLine {
                line: line_no,
                reason: reason.to_string(),
            };
            let rest = line
                .strip_prefix("cell ")
                .ok_or_else(|| bad("expected a 'cell' line"))?;
            let mut cell = CellRecord {
                tool: String::new(),
                subject: String::new(),
                seed: 0,
                execs: 0,
                config_hash: 0,
                decision_count: 0,
                decision_digest: 0,
                decisions: Vec::new(),
                outcome_digest: 0,
            };
            let mut seen = [false; 8];
            for pair in rest.split_whitespace() {
                let (key, value) = pair.split_once('=').ok_or_else(|| bad("expected k=v"))?;
                match key {
                    "tool" => {
                        cell.tool = value.to_string();
                        seen[0] = true;
                    }
                    "subject" => {
                        cell.subject = value.to_string();
                        seen[1] = true;
                    }
                    "seed" => {
                        cell.seed = value.parse().map_err(|_| bad("bad seed"))?;
                        seen[2] = true;
                    }
                    "execs" => {
                        cell.execs = value.parse().map_err(|_| bad("bad execs"))?;
                        seen[3] = true;
                    }
                    "cfg" => {
                        cell.config_hash =
                            u64::from_str_radix(value, 16).map_err(|_| bad("bad cfg hash"))?;
                        seen[4] = true;
                    }
                    "decn" => {
                        cell.decision_count = value.parse().map_err(|_| bad("bad decn"))?;
                        seen[5] = true;
                    }
                    "decd" => {
                        cell.decision_digest =
                            u64::from_str_radix(value, 16).map_err(|_| bad("bad decd"))?;
                        seen[6] = true;
                    }
                    "out" => {
                        cell.outcome_digest =
                            u64::from_str_radix(value, 16).map_err(|_| bad("bad out digest"))?;
                        seen[7] = true;
                    }
                    "dec" => {
                        cell.decisions =
                            hex_decode(value).ok_or_else(|| bad("bad decision hex"))?;
                    }
                    other => {
                        return Err(bad(&format!("unknown key {other:?}")));
                    }
                }
            }
            if let Some(missing) = seen.iter().position(|s| !s) {
                const KEYS: [&str; 8] = [
                    "tool", "subject", "seed", "execs", "cfg", "decn", "decd", "out",
                ];
                return Err(bad(&format!("missing key {:?}", KEYS[missing])));
            }
            journal.push(cell);
        }
        Ok(journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellRecord {
        CellRecord {
            tool: "pFuzzer".to_string(),
            subject: "cjson".to_string(),
            seed: 7,
            execs: 30_000,
            config_hash: 0xdead_beef,
            decision_count: 3,
            decision_digest: digest_bytes(&[1, 2, 3]),
            decisions: vec![1, 2, 3],
            outcome_digest: 0x0123_4567_89ab_cdef,
        }
    }

    #[test]
    fn digest_is_deterministic_and_framed() {
        let mut a = Digest::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Digest::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish(), "length framing must separate");
        assert_eq!(digest_bytes(b"xyz"), digest_bytes(b"xyz"));
        assert_ne!(digest_bytes(b"xyz"), digest_bytes(b"xyw"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut j = Journal::new();
        j.push(sample_cell());
        let mut second = sample_cell();
        second.tool = "AFL".to_string();
        second.decisions = Vec::new();
        second.decision_count = 123_456;
        j.push(second);
        let text = j.encode();
        let back = Journal::decode(&text).expect("decodes");
        assert_eq!(j, back);
    }

    #[test]
    fn empty_journal_round_trips() {
        let j = Journal::new();
        assert!(j.is_empty());
        assert_eq!(Journal::decode(&j.encode()).unwrap(), j);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Journal::decode(""), Err(JournalError::BadHeader));
        assert_eq!(Journal::decode("nonsense"), Err(JournalError::BadHeader));
        let text = format!("{HEADER}\nnot a cell line");
        assert!(matches!(
            Journal::decode(&text),
            Err(JournalError::BadLine { line: 2, .. })
        ));
        let text = format!("{HEADER}\ncell tool=x subject=y seed=abc");
        assert!(matches!(
            Journal::decode(&text),
            Err(JournalError::BadLine { .. })
        ));
        let text = format!("{HEADER}\ncell tool=x subject=y");
        assert!(matches!(
            Journal::decode(&text),
            Err(JournalError::BadLine { .. })
        ));
    }

    #[test]
    fn decode_skips_comments_and_blanks() {
        let mut j = Journal::new();
        j.push(sample_cell());
        let mut text = j.encode();
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(Journal::decode(&text).unwrap(), j);
    }

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("0").is_none());
        assert!(hex_decode("zz").is_none());
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn errors_display() {
        assert!(!JournalError::BadHeader.to_string().is_empty());
        let e = JournalError::BadLine {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains('3'));
    }
}

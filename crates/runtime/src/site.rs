//! Static program locations (comparison and coverage sites).

use std::fmt;

/// Identifies a static location in a subject parser.
///
/// In the paper's LLVM instrumentation every comparison instruction and
/// basic block has a distinct address; here the [`site!`](crate::site)
/// macro derives a stable identifier from the source location
/// (`file!`/`line!`/`column!`), hashed with FNV-1a.
///
/// # Example
///
/// ```
/// use pdf_runtime::site;
/// let a = site!();
/// let b = site!();
/// assert_ne!(a, b); // different columns/lines yield different sites
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u64);

impl SiteId {
    /// Creates a site id from a source location triple.
    ///
    /// Prefer the [`site!`](crate::site) macro, which supplies the triple
    /// automatically.
    pub fn from_location(file: &str, line: u32, column: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in file.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= u64::from(line);
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= u64::from(column);
        h = h.wrapping_mul(0x1000_0000_01b3);
        SiteId(h)
    }

    /// Creates a site id from a raw value.
    ///
    /// Useful for synthetic sites (e.g. table-driven subjects that number
    /// their states explicitly).
    pub fn from_raw(raw: u64) -> Self {
        SiteId(raw)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site:{:016x}", self.0)
    }
}

/// Expands to a [`SiteId`] unique to the macro invocation's source location.
///
/// # Example
///
/// ```
/// use pdf_runtime::site;
/// let s = site!();
/// println!("{s}");
/// ```
#[macro_export]
macro_rules! site {
    () => {
        $crate::SiteId::from_location(file!(), line!(), column!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_locations_distinct_ids() {
        let a = SiteId::from_location("x.rs", 1, 1);
        let b = SiteId::from_location("x.rs", 1, 2);
        let c = SiteId::from_location("x.rs", 2, 1);
        let d = SiteId::from_location("y.rs", 1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
    }

    #[test]
    fn same_location_same_id() {
        let a = SiteId::from_location("x.rs", 10, 4);
        let b = SiteId::from_location("x.rs", 10, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn macro_yields_stable_ids() {
        fn one() -> SiteId {
            site!()
        }
        assert_eq!(one(), one());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SiteId::from_raw(0).to_string().is_empty());
    }
}

//! Run-level observability: execution counters and phase timings.
//!
//! Every tool (driver, AFL baseline, KLEE baseline) fills a [`RunStats`]
//! while it runs; the evaluation harness emits them as JSON lines
//! (`evalrunner --stats-out`). Stats are measurements, not results:
//! wall-clock fields vary between runs and are deliberately excluded
//! from all determinism comparisons.

use std::time::{Duration, Instant};

/// Counters and timings sampled over one fuzzing run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Subject executions performed.
    pub executions: u64,
    /// Instrumentation events emitted across all executions.
    pub events: u64,
    /// Valid inputs found.
    pub valid_inputs: u64,
    /// Executions that exhausted their fuel budget
    /// ([`Verdict::Hang`](crate::Verdict::Hang)).
    pub hangs: u64,
    /// Executions that panicked and were caught
    /// ([`Verdict::Crash`](crate::Verdict::Crash)).
    pub crashes: u64,
    /// Supervisor-level retries this outcome took before completing
    /// (zero for a first-attempt success). Set by the evaluation
    /// supervisor, not by the campaign itself, and excluded from all
    /// campaign digests: a replayed cell runs the recorded attempt
    /// directly and legitimately retries zero times.
    pub retries: u64,
    /// Depth of the work queue when the run ended.
    pub queue_depth: usize,
    /// Random decisions drawn over the run (replay-relevant randomness:
    /// decision bytes for the driver, raw RNG draws for the baselines).
    pub decisions: u64,
    /// FNV-1a digest of the decision stream ([`crate::digest_bytes`] of
    /// the decision bytes, or [`crate::Rng::stream_digest`]).
    pub decision_digest: u64,
    /// Total wall time of the run, in seconds.
    pub wall_secs: f64,
    /// Per-phase wall time, in seconds, in first-seen order.
    pub phases: Vec<(&'static str, f64)>,
}

impl RunStats {
    /// Executions per second of wall time (zero for an instant run).
    pub fn execs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.executions as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The inner fields of a JSON object, without surrounding braces,
    /// so callers can prepend context keys (tool, subject, seed). The
    /// environment has no serde; the format is hand-rolled but stable.
    pub fn json_fields(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "\"executions\":{},\"execs_per_sec\":{:.1},\"events\":{},\
             \"valid_inputs\":{},\"hangs\":{},\"crashes\":{},\"retries\":{},\
             \"queue_depth\":{},\"decisions\":{},\
             \"decision_digest\":\"{:016x}\",\"wall_secs\":{:.6},\"phases\":{{",
            self.executions,
            self.execs_per_sec(),
            self.events,
            self.valid_inputs,
            self.hangs,
            self.crashes,
            self.retries,
            self.queue_depth,
            self.decisions,
            self.decision_digest,
            self.wall_secs,
        );
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\"{name}\":{secs:.6}");
        }
        s.push('}');
        s
    }

    /// This record as a complete JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }
}

/// Accumulates wall time into named phases and the run total.
///
/// ```
/// use pdf_runtime::PhaseClock;
/// let mut clock = PhaseClock::new();
/// let n = clock.time("execute", || 2 + 2);
/// assert_eq!(n, 4);
/// let (wall, phases) = clock.finish();
/// assert!(wall >= phases[0].1);
/// assert_eq!(phases[0].0, "execute");
/// ```
#[derive(Debug)]
pub struct PhaseClock {
    start: Instant,
    acc: Vec<(&'static str, Duration)>,
}

impl Default for PhaseClock {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseClock {
    /// Starts the run clock.
    pub fn new() -> Self {
        PhaseClock {
            start: Instant::now(),
            acc: Vec::new(),
        }
    }

    /// Runs `f`, charging its wall time to `phase`.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        match self.acc.iter_mut().find(|(name, _)| *name == phase) {
            Some((_, total)) => *total += dt,
            None => self.acc.push((phase, dt)),
        }
        out
    }

    /// Total wall seconds since construction plus per-phase seconds.
    pub fn finish(self) -> (f64, Vec<(&'static str, f64)>) {
        let wall = self.start.elapsed().as_secs_f64();
        let phases = self
            .acc
            .into_iter()
            .map(|(name, d)| (name, d.as_secs_f64()))
            .collect();
        (wall, phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let stats = RunStats {
            executions: 10,
            events: 100,
            valid_inputs: 2,
            hangs: 4,
            crashes: 5,
            retries: 1,
            queue_depth: 3,
            decisions: 17,
            decision_digest: 0xabcd,
            wall_secs: 0.5,
            phases: vec![("execute", 0.4), ("schedule", 0.1)],
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"executions\":10"));
        assert!(json.contains("\"execs_per_sec\":20.0"));
        assert!(json.contains("\"hangs\":4"));
        assert!(json.contains("\"crashes\":5"));
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"decisions\":17"));
        assert!(json.contains("\"decision_digest\":\"000000000000abcd\""));
        assert!(json.contains("\"phases\":{\"execute\":0.400000,\"schedule\":0.100000}"));
    }

    #[test]
    fn execs_per_sec_handles_zero_wall() {
        assert_eq!(RunStats::default().execs_per_sec(), 0.0);
    }

    #[test]
    fn phase_clock_accumulates_repeated_phases() {
        let mut clock = PhaseClock::new();
        clock.time("a", || std::thread::sleep(Duration::from_millis(1)));
        clock.time("b", || ());
        clock.time("a", || std::thread::sleep(Duration::from_millis(1)));
        let (wall, phases) = clock.finish();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "a");
        assert!(phases[0].1 >= 0.002);
        assert!(wall >= phases[0].1 + phases[1].1);
    }
}

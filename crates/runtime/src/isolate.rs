//! Panic isolation: run a closure, converting an unwind into an error.
//!
//! The paper's subjects are external C programs whose crashes are
//! process exits the fuzzer observes from outside; here subjects run in
//! the fuzzer's own process, so a panicking parser would otherwise tear
//! down the whole campaign. [`catch_silent`] is the single chokepoint
//! that turns an unwind into a [`String`] payload — used by
//! [`Subject`](crate::Subject) around every entry-point call and by the
//! evaluation supervisor around whole campaign cells.
//!
//! The default panic hook prints a backtrace to stderr for every panic,
//! which would flood the output of a chaos campaign injecting thousands
//! of expected crashes. The first `catch_silent` call chains a hook that
//! stays silent while (and only while) a `catch_silent` frame is active
//! on the current thread; panics outside it print as usual.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Depth of active [`catch_silent`] frames on this thread.
    static SUPPRESS_DEPTH: Cell<usize> = const { Cell::new(0) };
}

static INSTALL: Once = Once::new();

fn install_quiet_hook() {
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPPRESS_DEPTH.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, catching any panic and returning its message as `Err`.
///
/// The panic hook is suppressed for the duration of the call (on this
/// thread only), so expected subject crashes do not spam stderr. Nesting
/// is supported: the supervisor wraps whole campaigns which in turn wrap
/// individual subject executions.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: every caller hands in
/// state (an [`ExecCtx`](crate::ExecCtx), a campaign report) that it
/// either discards on `Err` or reads only through fields whose invariants
/// hold at every event boundary, so observing the post-panic state is
/// sound.
///
/// # Example
///
/// ```
/// use pdf_runtime::catch_silent;
/// let ok: Result<u32, String> = catch_silent(|| 41 + 1);
/// assert_eq!(ok, Ok(42));
/// let err = catch_silent(|| -> u32 { panic!("boom {}", 7) });
/// assert_eq!(err, Err("boom 7".to_string()));
/// ```
pub fn catch_silent<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    struct DepthGuard;
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = DepthGuard;
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_return_value() {
        assert_eq!(catch_silent(|| "x".to_string()), Ok("x".to_string()));
    }

    #[test]
    fn captures_str_and_string_payloads() {
        assert_eq!(
            catch_silent(|| -> () { panic!("static message") }),
            Err("static message".to_string())
        );
        let n = 3;
        assert_eq!(
            catch_silent(|| -> () { panic!("formatted {n}") }),
            Err("formatted 3".to_string())
        );
    }

    #[test]
    fn nested_catches_restore_suppression() {
        let outer = catch_silent(|| {
            let inner = catch_silent(|| -> () { panic!("inner") });
            assert_eq!(inner, Err("inner".to_string()));
            // still inside the outer frame: depth must be back to 1
            SUPPRESS_DEPTH.with(Cell::get)
        });
        assert_eq!(outer, Ok(1));
        assert_eq!(SUPPRESS_DEPTH.with(Cell::get), 0);
    }

    #[test]
    fn state_mutated_before_panic_is_observable() {
        let mut count = 0u32;
        let r = catch_silent(|| {
            count += 1;
            panic!("after increment");
        });
        assert!(r.is_err());
        assert_eq!(count, 1);
    }
}

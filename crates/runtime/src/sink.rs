//! Streaming event sinks: where instrumentation events go during a run.
//!
//! The paper's instrumentation costs ~100× per execution (Section 4);
//! materialising a full [`ExecLog`] for consumers that only need branch
//! coverage wastes most of that budget. [`ExecCtx`](crate::ExecCtx) is
//! therefore generic over an [`EventSink`] that consumes the event
//! stream *as it happens*:
//!
//! - [`FullLog`] — records everything into an [`ExecLog`] (the default;
//!   used by the substitution engine in full-log mode, the KLEE-style
//!   baseline's path conditions and grammar mining),
//! - [`CoverageOnly`] — branch sequence + EOF flag, zero per-comparison
//!   allocation (the AFL baseline consumes nothing else),
//! - [`LastFailure`] — rejection index, substitution candidates and
//!   coverage without an event vector (the full-instrumentation driver
//!   tier),
//! - [`FastFailure`] — rejection index + last comparison only, near
//!   zero cost per event (the fast driver tier; see *Fuzzing with Fast
//!   Failure Feedback* in PAPERS.md).
//!
//! Streaming summaries are *defined* by equivalence: they must equal
//! what the corresponding [`ExecLog`] queries compute
//! ([`ExecLog::coverage_summary`] / [`ExecLog::failure_summary`] /
//! [`ExecLog::fast_summary`] are the reference implementations, and the
//! property tests in `tests/` hold the streaming versions to them).
//!
//! [`FullLog`] and [`LastFailure`] additionally support *recycled*
//! construction from an [`ExecArena`]: their internal vectors are taken
//! from the arena on construction and handed back cleared after the
//! summary is built, so a batch of executions reuses one allocation set
//! (see [`Subject::exec_batch_fast`](crate::Subject::exec_batch_fast)).

use crate::arena::ExecArena;
use crate::coverage::{BranchId, BranchSet};
use crate::events::{
    cmp_fingerprint, Candidate, Cmp, CmpMeta, CmpValue, Event, ExecLog, LazyCmpValue,
};

/// Consumes instrumentation events during a subject execution.
///
/// Methods are called in program order: `begin` once, then any mix of
/// `on_cmp`/`on_branch`/`on_eof`, then `finish` once. Implementations
/// decide how much of the stream to retain; `on_cmp` receives the
/// expected value lazily ([`LazyCmpValue`]) so sinks that ignore it pay
/// no allocation.
///
/// # Example
///
/// A custom sink that reduces the whole stream to an event count:
///
/// ```
/// use pdf_runtime::{cov, lit, BranchId, CmpMeta, EventSink, ExecCtx, LazyCmpValue, ParseError};
///
/// #[derive(Default)]
/// struct CountEvents(u64);
///
/// impl EventSink for CountEvents {
///     type Summary = u64;
///     fn begin(&mut self, _input_len: usize) {}
///     fn on_cmp(&mut self, _meta: CmpMeta, _expected: LazyCmpValue<'_>) { self.0 += 1; }
///     fn on_branch(&mut self, _branch: BranchId, _pos: usize) { self.0 += 1; }
///     fn on_eof(&mut self, _index: usize) { self.0 += 1; }
///     fn finish(self) -> u64 { self.0 }
/// }
///
/// fn parse(ctx: &mut ExecCtx<CountEvents>) -> Result<(), ParseError> {
///     cov!(ctx);
///     if !lit!(ctx, b'x') {
///         return Err(ctx.reject("expected 'x'"));
///     }
///     ctx.expect_end()
/// }
///
/// let mut ctx = ExecCtx::with_sink(b"x", 1_000, CountEvents::default());
/// assert!(parse(&mut ctx).is_ok());
/// assert!(ctx.finish() > 0);
/// ```
pub trait EventSink {
    /// What the sink reduces the event stream to.
    type Summary;

    /// Called once before the run with the input length.
    fn begin(&mut self, input_len: usize);

    /// A tracked comparison (always followed by its branch event).
    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>);

    /// A covered branch, tagged with the input cursor position.
    fn on_branch(&mut self, branch: BranchId, pos: usize);

    /// An attempted read past the end of the input.
    fn on_eof(&mut self, index: usize);

    /// Consumes the sink after the run.
    fn finish(self) -> Self::Summary;
}

// ---- FullLog ---------------------------------------------------------------

/// The everything-recorded sink: today's [`ExecLog`], event by event.
#[derive(Debug, Default)]
pub struct FullLog {
    log: ExecLog,
}

impl EventSink for FullLog {
    type Summary = ExecLog;

    fn begin(&mut self, input_len: usize) {
        self.log.input_len = input_len;
    }

    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>) {
        self.log.events.push(Event::Cmp(Cmp {
            index: meta.index,
            observed: meta.observed,
            expected: expected.materialise(),
            outcome: meta.outcome,
            depth: meta.depth,
            site: meta.site,
        }));
    }

    fn on_branch(&mut self, branch: BranchId, pos: usize) {
        self.log.events.push(Event::Branch(branch, pos));
    }

    fn on_eof(&mut self, index: usize) {
        self.log.events.push(Event::EofAccess(index));
    }

    fn finish(self) -> ExecLog {
        self.log
    }
}

impl FullLog {
    /// A full-log sink whose event buffer comes from `arena`, so
    /// repeated executions reuse one allocation. Hand the finished
    /// [`ExecLog`] back with [`ExecArena::recycle_log`] once its events
    /// have been reduced.
    pub fn recycled(arena: &mut ExecArena) -> Self {
        let mut events = std::mem::take(&mut arena.events);
        events.clear();
        FullLog {
            log: ExecLog {
                events,
                input_len: 0,
            },
        }
    }
}

// ---- CoverageOnly ----------------------------------------------------------

/// What a coverage-guided consumer needs from one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CovSummary {
    /// Distinct branches covered.
    pub branches: BranchSet,
    /// Covered branches in program order (duplicates included) — the
    /// AFL baseline derives its edge profile from consecutive pairs.
    pub branch_seq: Vec<BranchId>,
    /// First past-the-end access, if any.
    pub eof_access: Option<usize>,
    /// Instrumentation events the run emitted.
    pub events: u64,
}

/// The coverage-only sink: branch sequence plus EOF flag. Comparison
/// events are counted but never materialised, so `strcmp`-style
/// comparisons allocate nothing.
#[derive(Debug, Default)]
pub struct CoverageOnly {
    seq: Vec<BranchId>,
    eof: Option<usize>,
    events: u64,
}

impl EventSink for CoverageOnly {
    type Summary = CovSummary;

    fn begin(&mut self, _input_len: usize) {}

    fn on_cmp(&mut self, _meta: CmpMeta, _expected: LazyCmpValue<'_>) {
        self.events += 1;
    }

    fn on_branch(&mut self, branch: BranchId, _pos: usize) {
        self.events += 1;
        self.seq.push(branch);
    }

    fn on_eof(&mut self, index: usize) {
        self.events += 1;
        if self.eof.is_none() {
            self.eof = Some(index);
        }
    }

    fn finish(self) -> CovSummary {
        let branches = BranchSet::from_seq(&self.seq);
        CovSummary {
            branches,
            branch_seq: self.seq,
            eof_access: self.eof,
            events: self.events,
        }
    }
}

// ---- LastFailure -----------------------------------------------------------

/// What the substitution driver needs from one execution: exactly the
/// [`ExecLog`] queries it used to run, precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSummary {
    /// Distinct branches covered (any outcome).
    pub branches: BranchSet,
    /// Branches covered up to the first comparison of the last compared
    /// character (see [`ExecLog::branches_up_to_rejection`]).
    pub branches_up_to_rejection: BranchSet,
    /// `branches.path_hash()`, precomputed for path deduplication.
    pub path_hash: u64,
    /// Index of the first invalid character
    /// (see [`ExecLog::rejection_index`]).
    pub rejection_index: Option<usize>,
    /// Substitution candidates at the rejection point
    /// (see [`ExecLog::substitution_candidates`]).
    pub candidates: Vec<Candidate>,
    /// Full expected byte strings (length ≥ 2) of the failed observed
    /// string comparisons at the rejection index, in program order with
    /// duplicates removed — the token-miner feed: a failed keyword-table
    /// `strcmp` names the whole keyword here even when only a prefix of
    /// the input matched.
    pub expected_tokens: Vec<Vec<u8>>,
    /// Inclusive ranges of bytes the failed observed comparisons at the
    /// rejection index would have accepted as the *next* byte, in
    /// program order with exact duplicates removed — `Byte` and the
    /// first unmatched `Str` byte collapse to single-byte ranges. Where
    /// [`candidates`](FailureSummary::candidates) compresses a wide
    /// range to three probe bytes, this keeps the full span, so a
    /// dictionary consumer can ask "would the parser have accepted a
    /// token starting with this byte?" exactly.
    pub accepted_first: Vec<(u8, u8)>,
    /// Average stack depth over the last two comparisons.
    pub avg_stack_size: f64,
    /// First past-the-end access, if any.
    pub eof_access: Option<usize>,
    /// Instrumentation events the run emitted.
    pub events: u64,
    /// [`cmp_fingerprint`] of the last comparison event (any outcome),
    /// `0` when the run made no comparison — the tier-escalation filter
    /// key, kept here so full instrumentation can seed the filter state.
    pub last_cmp_fingerprint: u64,
}

const WATERMARK_UNSET: u32 = u32::MAX;

/// The fast driver sink: maintains the rejection index and branch
/// coverage *while the run streams*, discarding each comparison
/// immediately. No event vector is kept; the per-event state is a
/// branch-order list (16 bytes per branch), a per-input-index watermark
/// used to reproduce [`ExecLog::branches_up_to_rejection`] exactly, and
/// the expected values of the failed comparisons at the current
/// rejection index (cleared whenever the index advances). Candidate
/// expansion — the expensive part, up to 16 allocations per range
/// comparison — happens once in [`finish`](EventSink::finish), exactly
/// like the batch [`ExecLog::substitution_candidates`].
#[derive(Debug, Default)]
pub struct LastFailure {
    seq: Vec<BranchId>,
    /// `watermarks[i]` = number of branch events seen before the first
    /// observed comparison at input index `i` (UNSET until then).
    watermarks: Vec<u32>,
    rejection: Option<usize>,
    /// Expected values of the failed observed comparisons at
    /// `rejection`, in program order.
    failed: Vec<CmpValue>,
    /// Depths of the previous-to-last and last comparison.
    last_depths: [usize; 2],
    cmp_seen: u64,
    /// [`cmp_fingerprint`] of the last comparison, any outcome.
    last_cmp: u64,
    eof: Option<usize>,
    events: u64,
}

impl LastFailure {
    /// A sink whose internal buffers come from `arena`, so repeated
    /// executions reuse one allocation set. Pair with
    /// [`finish_into`](LastFailure::finish_into) to hand them back.
    pub fn recycled(arena: &mut ExecArena) -> Self {
        let mut seq = std::mem::take(&mut arena.seq);
        seq.clear();
        let mut watermarks = std::mem::take(&mut arena.watermarks);
        watermarks.clear();
        let mut failed = std::mem::take(&mut arena.failed);
        failed.clear();
        LastFailure {
            seq,
            watermarks,
            failed,
            ..LastFailure::default()
        }
    }

    /// [`finish`](EventSink::finish), then returns the internal buffers
    /// to `arena` for the next execution.
    pub fn finish_into(mut self, arena: &mut ExecArena) -> FailureSummary {
        let summary = self.summarize();
        self.seq.clear();
        self.watermarks.clear();
        self.failed.clear();
        arena.seq = std::mem::take(&mut self.seq);
        arena.watermarks = std::mem::take(&mut self.watermarks);
        arena.failed = std::mem::take(&mut self.failed);
        summary
    }

    fn summarize(&self) -> FailureSummary {
        let branches = BranchSet::from_seq(&self.seq);
        let branches_up_to_rejection = match self.rejection {
            None => branches.clone(),
            Some(r) => {
                let w = self.watermarks[r];
                debug_assert_ne!(w, WATERMARK_UNSET, "rejection implies a watermark");
                BranchSet::from_seq(&self.seq[..w as usize])
            }
        };
        let avg_stack_size = match self.cmp_seen {
            0 => 0.0,
            1 => self.last_depths[1] as f64,
            _ => (self.last_depths[0] + self.last_depths[1]) as f64 / 2.0,
        };
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut expected_tokens: Vec<Vec<u8>> = Vec::new();
        let mut accepted_first: Vec<(u8, u8)> = Vec::new();
        if let Some(idx) = self.rejection {
            for expected in &self.failed {
                let replacement_len = expected.replacement_len();
                expected.for_each_replacement(|bytes| {
                    let duplicate = candidates.iter().any(|o| {
                        o.at_index == idx
                            && o.replacement_len == replacement_len
                            && o.bytes == bytes
                    });
                    if !duplicate {
                        candidates.push(Candidate {
                            at_index: idx,
                            replacement_len,
                            bytes: bytes.to_vec(),
                        });
                    }
                });
                if let CmpValue::Str { full, .. } = expected {
                    if full.len() >= 2 && !expected_tokens.iter().any(|t| t == full) {
                        expected_tokens.push(full.clone());
                    }
                }
                if let Some(span) = expected.accepted_first() {
                    if !accepted_first.contains(&span) {
                        accepted_first.push(span);
                    }
                }
            }
        }
        FailureSummary {
            path_hash: branches.path_hash(),
            branches,
            branches_up_to_rejection,
            rejection_index: self.rejection,
            candidates,
            expected_tokens,
            accepted_first,
            avg_stack_size,
            eof_access: self.eof,
            events: self.events,
            last_cmp_fingerprint: self.last_cmp,
        }
    }
}

impl EventSink for LastFailure {
    type Summary = FailureSummary;

    fn begin(&mut self, input_len: usize) {
        // clear-and-resize rather than a fresh `vec![...]` so recycled
        // sinks reuse the arena's watermark allocation
        self.watermarks.clear();
        self.watermarks.resize(input_len + 1, WATERMARK_UNSET);
    }

    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>) {
        self.events += 1;
        if self.cmp_seen == 0 {
            self.last_depths = [meta.depth, meta.depth];
        } else {
            self.last_depths[0] = self.last_depths[1];
            self.last_depths[1] = meta.depth;
        }
        self.cmp_seen += 1;
        self.last_cmp = cmp_fingerprint(&meta, &expected);
        if meta.observed.is_none() {
            return;
        }
        let w = &mut self.watermarks[meta.index];
        if *w == WATERMARK_UNSET {
            *w = self.seq.len() as u32;
        }
        if meta.outcome {
            return;
        }
        match self.rejection {
            Some(r) if meta.index < r => {}
            Some(r) if meta.index == r => self.failed.push(expected.materialise()),
            _ => {
                self.rejection = Some(meta.index);
                self.failed.clear();
                self.failed.push(expected.materialise());
            }
        }
    }

    fn on_branch(&mut self, branch: BranchId, _pos: usize) {
        self.events += 1;
        self.seq.push(branch);
    }

    fn on_eof(&mut self, index: usize) {
        self.events += 1;
        if self.eof.is_none() {
            self.eof = Some(index);
        }
    }

    fn finish(self) -> FailureSummary {
        self.summarize()
    }
}

// ---- FastFailure -----------------------------------------------------------

/// What the fast execution tier keeps from one run: the rejection index
/// plus the last comparison — nothing else. *Fuzzing with Fast Failure
/// Feedback* observes that this pair is enough to score most candidates;
/// the tiered driver escalates to full instrumentation only when it
/// changes.
#[derive(Debug, Clone, PartialEq)]
pub struct FastSummary {
    /// Index of the first invalid character
    /// (see [`ExecLog::rejection_index`]).
    pub rejection_index: Option<usize>,
    /// Expected value of the last failed observed comparison at the
    /// rejection index — the single comparison fast-mode substitution
    /// candidates derive from.
    pub last_failed: Option<CmpValue>,
    /// [`cmp_fingerprint`] of the last comparison event (any outcome),
    /// `0` when the run made no comparison.
    pub last_cmp_fingerprint: u64,
    /// Average stack depth over the last two comparisons.
    pub avg_stack_size: f64,
    /// First past-the-end access, if any.
    pub eof_access: Option<usize>,
    /// Instrumentation events the run emitted.
    pub events: u64,
}

/// The near-zero-cost sink of the fast execution tier: no branch
/// sequence, no watermarks, no candidate expansion — just the rejection
/// index, the expected value of the last failed comparison there, and a
/// running fingerprint of the latest comparison. Per-event work is a
/// handful of integer stores plus one FNV fold; the only allocation is
/// materialising a failed `strcmp`'s expected string.
#[derive(Debug, Default)]
pub struct FastFailure {
    rejection: Option<usize>,
    last_failed: Option<CmpValue>,
    last_cmp: u64,
    last_depths: [usize; 2],
    cmp_seen: u64,
    eof: Option<usize>,
    events: u64,
}

impl EventSink for FastFailure {
    type Summary = FastSummary;

    fn begin(&mut self, _input_len: usize) {}

    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>) {
        self.events += 1;
        if self.cmp_seen == 0 {
            self.last_depths = [meta.depth, meta.depth];
        } else {
            self.last_depths[0] = self.last_depths[1];
            self.last_depths[1] = meta.depth;
        }
        self.cmp_seen += 1;
        self.last_cmp = cmp_fingerprint(&meta, &expected);
        if meta.observed.is_none() || meta.outcome {
            return;
        }
        match self.rejection {
            // a failed comparison at or past the current rejection index
            // both advances the index and becomes the new last failure
            Some(r) if meta.index < r => {}
            _ => {
                self.rejection = Some(meta.index);
                self.last_failed = Some(expected.materialise());
            }
        }
    }

    fn on_branch(&mut self, _branch: BranchId, _pos: usize) {
        self.events += 1;
    }

    fn on_eof(&mut self, index: usize) {
        self.events += 1;
        if self.eof.is_none() {
            self.eof = Some(index);
        }
    }

    fn finish(self) -> FastSummary {
        let avg_stack_size = match self.cmp_seen {
            0 => 0.0,
            1 => self.last_depths[1] as f64,
            _ => (self.last_depths[0] + self.last_depths[1]) as f64 / 2.0,
        };
        FastSummary {
            rejection_index: self.rejection,
            last_failed: self.last_failed,
            last_cmp_fingerprint: self.last_cmp,
            avg_stack_size,
            eof_access: self.eof,
            events: self.events,
        }
    }
}

// ---- ExecLog reference conversions ----------------------------------------

impl ExecLog {
    /// Reduces a full log to the [`CoverageOnly`] summary — the
    /// reference implementation the streaming sink must agree with, and
    /// the fallback for subjects without a native coverage entry point.
    pub fn coverage_summary(&self) -> CovSummary {
        let branch_seq: Vec<BranchId> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Branch(b, _) => Some(*b),
                _ => None,
            })
            .collect();
        CovSummary {
            branches: branch_seq.iter().copied().collect(),
            branch_seq,
            eof_access: self.eof_access(),
            events: self.events.len() as u64,
        }
    }

    /// Reduces a full log to the [`LastFailure`] summary — the
    /// reference implementation the streaming sink must agree with, and
    /// the fallback for subjects without a native last-failure entry
    /// point.
    pub fn failure_summary(&self) -> FailureSummary {
        let branches = self.branches();
        FailureSummary {
            path_hash: branches.path_hash(),
            branches_up_to_rejection: self.branches_up_to_rejection(),
            branches,
            rejection_index: self.rejection_index(),
            candidates: self.substitution_candidates(),
            expected_tokens: self.expected_tokens(),
            accepted_first: self.accepted_first_bytes(),
            avg_stack_size: self.avg_stack_size(),
            eof_access: self.eof_access(),
            events: self.events.len() as u64,
            last_cmp_fingerprint: self.last_cmp_fingerprint(),
        }
    }

    /// Reduces a full log to the [`FastFailure`] summary — the reference
    /// implementation the streaming sink must agree with, and the
    /// fallback for subjects without a native fast-failure entry point.
    pub fn fast_summary(&self) -> FastSummary {
        let rejection_index = self.rejection_index();
        let last_failed = rejection_index.and_then(|idx| {
            self.comparisons()
                .filter(|c| c.index == idx && c.observed.is_some() && !c.outcome)
                .last()
                .map(|c| c.expected.clone())
        });
        FastSummary {
            rejection_index,
            last_failed,
            last_cmp_fingerprint: self.last_cmp_fingerprint(),
            avg_stack_size: self.avg_stack_size(),
            eof_access: self.eof_access(),
            events: self.events.len() as u64,
        }
    }

    /// [`cmp_fingerprint`] of the last comparison event, `0` when the
    /// run made no comparison.
    pub fn last_cmp_fingerprint(&self) -> u64 {
        self.comparisons().last().map_or(0, Cmp::fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecCtx;
    use crate::{kw, lit, one_of, range};

    fn drive<S: EventSink>(ctx: &mut ExecCtx<S>) {
        one_of!(ctx, b"([{");
        range!(ctx, b'0', b'9');
        if !kw!(ctx, "while") {
            lit!(ctx, b'w');
        }
        lit!(ctx, b'(');
        while ctx.next_byte().is_some() {}
        ctx.at_end();
    }

    fn summaries(input: &[u8]) -> (ExecLog, CovSummary, FailureSummary) {
        let mut full = ExecCtx::new(input);
        drive(&mut full);
        let log = full.into_log();

        let mut cov = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, CoverageOnly::default());
        drive(&mut cov);
        let cov = cov.finish();

        let mut last = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, LastFailure::default());
        drive(&mut last);
        let last = last.finish();

        (log, cov, last)
    }

    #[test]
    fn coverage_sink_matches_full_log_reduction() {
        for input in [&b""[..], b"(", b"w7", b"while(", b"zzz", b"{0while"] {
            let (log, cov, _) = summaries(input);
            assert_eq!(cov, log.coverage_summary(), "input {input:?}");
        }
    }

    #[test]
    fn last_failure_sink_matches_full_log_reduction() {
        for input in [
            &b""[..],
            b"(",
            b"w7",
            b"while(",
            b"zzz",
            b"{0while",
            b"whale",
        ] {
            let (log, _, last) = summaries(input);
            assert_eq!(last, log.failure_summary(), "input {input:?}");
        }
    }

    #[test]
    fn coverage_sink_counts_every_event() {
        let (log, cov, last) = summaries(b"w123");
        assert_eq!(cov.events, log.events.len() as u64);
        assert_eq!(last.events, log.events.len() as u64);
    }

    const INPUTS: [&[u8]; 7] = [b"", b"(", b"w7", b"while(", b"zzz", b"{0while", b"whale"];

    #[test]
    fn fast_failure_sink_matches_full_log_reduction() {
        for input in INPUTS {
            let (log, _, _) = summaries(input);
            let mut fast =
                ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, FastFailure::default());
            drive(&mut fast);
            assert_eq!(fast.finish(), log.fast_summary(), "input {input:?}");
        }
    }

    #[test]
    fn fast_failure_agrees_with_last_failure_on_shared_fields() {
        for input in INPUTS {
            let (_, _, last) = summaries(input);
            let mut ctx =
                ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, FastFailure::default());
            drive(&mut ctx);
            let fast = ctx.finish();
            assert_eq!(
                fast.rejection_index, last.rejection_index,
                "input {input:?}"
            );
            assert_eq!(
                fast.last_cmp_fingerprint, last.last_cmp_fingerprint,
                "input {input:?}"
            );
            assert_eq!(fast.eof_access, last.eof_access, "input {input:?}");
            assert_eq!(fast.events, last.events, "input {input:?}");
            assert_eq!(fast.avg_stack_size, last.avg_stack_size, "input {input:?}");
        }
    }

    #[test]
    fn recycled_last_failure_matches_fresh_sink() {
        let mut arena = ExecArena::default();
        for _ in 0..3 {
            // repeat so later rounds run on reused (dirty) buffers
            for input in INPUTS {
                let mut fresh =
                    ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, LastFailure::default());
                drive(&mut fresh);
                let fresh = fresh.finish();

                let sink = LastFailure::recycled(&mut arena);
                let mut ctx = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, sink);
                drive(&mut ctx);
                let (_, sink) = ctx.into_parts();
                let recycled = sink.finish_into(&mut arena);
                assert_eq!(recycled, fresh, "input {input:?}");
            }
        }
        assert!(arena.seq.capacity() > 0, "buffers returned to the arena");
    }

    #[test]
    fn recycled_full_log_matches_fresh_sink() {
        let mut arena = ExecArena::default();
        for _ in 0..3 {
            for input in INPUTS {
                let mut fresh = ExecCtx::new(input);
                drive(&mut fresh);
                let fresh = fresh.into_log();

                let sink = FullLog::recycled(&mut arena);
                let mut ctx = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, sink);
                drive(&mut ctx);
                let log = ctx.finish();
                assert_eq!(log.events, fresh.events, "input {input:?}");
                assert_eq!(log.input_len, fresh.input_len, "input {input:?}");
                arena.recycle_log(log);
            }
        }
        assert!(arena.events.capacity() > 0, "buffer returned to the arena");
    }
}

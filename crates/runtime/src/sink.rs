//! Streaming event sinks: where instrumentation events go during a run.
//!
//! The paper's instrumentation costs ~100× per execution (Section 4);
//! materialising a full [`ExecLog`] for consumers that only need branch
//! coverage wastes most of that budget. [`ExecCtx`](crate::ExecCtx) is
//! therefore generic over an [`EventSink`] that consumes the event
//! stream *as it happens*:
//!
//! - [`FullLog`] — records everything into an [`ExecLog`] (the default;
//!   used by the substitution engine in full-log mode, the KLEE-style
//!   baseline's path conditions and grammar mining),
//! - [`CoverageOnly`] — branch sequence + EOF flag, zero per-comparison
//!   allocation (the AFL baseline consumes nothing else),
//! - [`LastFailure`] — rejection index, substitution candidates and
//!   coverage without an event vector (the fast driver mode).
//!
//! `CoverageOnly` and `LastFailure` summaries are *defined* by
//! equivalence: they must equal what the corresponding [`ExecLog`]
//! queries compute ([`ExecLog::coverage_summary`] /
//! [`ExecLog::failure_summary`] are the reference implementations, and
//! the property tests in `tests/` hold the streaming versions to them).

use crate::coverage::{BranchId, BranchSet};
use crate::events::{Candidate, Cmp, CmpMeta, CmpValue, Event, ExecLog, LazyCmpValue};

/// Consumes instrumentation events during a subject execution.
///
/// Methods are called in program order: `begin` once, then any mix of
/// `on_cmp`/`on_branch`/`on_eof`, then `finish` once. Implementations
/// decide how much of the stream to retain; `on_cmp` receives the
/// expected value lazily ([`LazyCmpValue`]) so sinks that ignore it pay
/// no allocation.
///
/// # Example
///
/// A custom sink that reduces the whole stream to an event count:
///
/// ```
/// use pdf_runtime::{cov, lit, BranchId, CmpMeta, EventSink, ExecCtx, LazyCmpValue, ParseError};
///
/// #[derive(Default)]
/// struct CountEvents(u64);
///
/// impl EventSink for CountEvents {
///     type Summary = u64;
///     fn begin(&mut self, _input_len: usize) {}
///     fn on_cmp(&mut self, _meta: CmpMeta, _expected: LazyCmpValue<'_>) { self.0 += 1; }
///     fn on_branch(&mut self, _branch: BranchId, _pos: usize) { self.0 += 1; }
///     fn on_eof(&mut self, _index: usize) { self.0 += 1; }
///     fn finish(self) -> u64 { self.0 }
/// }
///
/// fn parse(ctx: &mut ExecCtx<CountEvents>) -> Result<(), ParseError> {
///     cov!(ctx);
///     if !lit!(ctx, b'x') {
///         return Err(ctx.reject("expected 'x'"));
///     }
///     ctx.expect_end()
/// }
///
/// let mut ctx = ExecCtx::with_sink(b"x", 1_000, CountEvents::default());
/// assert!(parse(&mut ctx).is_ok());
/// assert!(ctx.finish() > 0);
/// ```
pub trait EventSink {
    /// What the sink reduces the event stream to.
    type Summary;

    /// Called once before the run with the input length.
    fn begin(&mut self, input_len: usize);

    /// A tracked comparison (always followed by its branch event).
    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>);

    /// A covered branch, tagged with the input cursor position.
    fn on_branch(&mut self, branch: BranchId, pos: usize);

    /// An attempted read past the end of the input.
    fn on_eof(&mut self, index: usize);

    /// Consumes the sink after the run.
    fn finish(self) -> Self::Summary;
}

// ---- FullLog ---------------------------------------------------------------

/// The everything-recorded sink: today's [`ExecLog`], event by event.
#[derive(Debug, Default)]
pub struct FullLog {
    log: ExecLog,
}

impl EventSink for FullLog {
    type Summary = ExecLog;

    fn begin(&mut self, input_len: usize) {
        self.log.input_len = input_len;
    }

    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>) {
        self.log.events.push(Event::Cmp(Cmp {
            index: meta.index,
            observed: meta.observed,
            expected: expected.materialise(),
            outcome: meta.outcome,
            depth: meta.depth,
            site: meta.site,
        }));
    }

    fn on_branch(&mut self, branch: BranchId, pos: usize) {
        self.log.events.push(Event::Branch(branch, pos));
    }

    fn on_eof(&mut self, index: usize) {
        self.log.events.push(Event::EofAccess(index));
    }

    fn finish(self) -> ExecLog {
        self.log
    }
}

// ---- CoverageOnly ----------------------------------------------------------

/// What a coverage-guided consumer needs from one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CovSummary {
    /// Distinct branches covered.
    pub branches: BranchSet,
    /// Covered branches in program order (duplicates included) — the
    /// AFL baseline derives its edge profile from consecutive pairs.
    pub branch_seq: Vec<BranchId>,
    /// First past-the-end access, if any.
    pub eof_access: Option<usize>,
    /// Instrumentation events the run emitted.
    pub events: u64,
}

/// The coverage-only sink: branch sequence plus EOF flag. Comparison
/// events are counted but never materialised, so `strcmp`-style
/// comparisons allocate nothing.
#[derive(Debug, Default)]
pub struct CoverageOnly {
    seq: Vec<BranchId>,
    eof: Option<usize>,
    events: u64,
}

impl EventSink for CoverageOnly {
    type Summary = CovSummary;

    fn begin(&mut self, _input_len: usize) {}

    fn on_cmp(&mut self, _meta: CmpMeta, _expected: LazyCmpValue<'_>) {
        self.events += 1;
    }

    fn on_branch(&mut self, branch: BranchId, _pos: usize) {
        self.events += 1;
        self.seq.push(branch);
    }

    fn on_eof(&mut self, index: usize) {
        self.events += 1;
        if self.eof.is_none() {
            self.eof = Some(index);
        }
    }

    fn finish(self) -> CovSummary {
        let branches = BranchSet::from_seq(&self.seq);
        CovSummary {
            branches,
            branch_seq: self.seq,
            eof_access: self.eof,
            events: self.events,
        }
    }
}

// ---- LastFailure -----------------------------------------------------------

/// What the substitution driver needs from one execution: exactly the
/// [`ExecLog`] queries it used to run, precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSummary {
    /// Distinct branches covered (any outcome).
    pub branches: BranchSet,
    /// Branches covered up to the first comparison of the last compared
    /// character (see [`ExecLog::branches_up_to_rejection`]).
    pub branches_up_to_rejection: BranchSet,
    /// `branches.path_hash()`, precomputed for path deduplication.
    pub path_hash: u64,
    /// Index of the first invalid character
    /// (see [`ExecLog::rejection_index`]).
    pub rejection_index: Option<usize>,
    /// Substitution candidates at the rejection point
    /// (see [`ExecLog::substitution_candidates`]).
    pub candidates: Vec<Candidate>,
    /// Average stack depth over the last two comparisons.
    pub avg_stack_size: f64,
    /// First past-the-end access, if any.
    pub eof_access: Option<usize>,
    /// Instrumentation events the run emitted.
    pub events: u64,
}

const WATERMARK_UNSET: u32 = u32::MAX;

/// The fast driver sink: maintains the rejection index and branch
/// coverage *while the run streams*, discarding each comparison
/// immediately. No event vector is kept; the per-event state is a
/// branch-order list (16 bytes per branch), a per-input-index watermark
/// used to reproduce [`ExecLog::branches_up_to_rejection`] exactly, and
/// the expected values of the failed comparisons at the current
/// rejection index (cleared whenever the index advances). Candidate
/// expansion — the expensive part, up to 16 allocations per range
/// comparison — happens once in [`finish`](EventSink::finish), exactly
/// like the batch [`ExecLog::substitution_candidates`].
#[derive(Debug, Default)]
pub struct LastFailure {
    seq: Vec<BranchId>,
    /// `watermarks[i]` = number of branch events seen before the first
    /// observed comparison at input index `i` (UNSET until then).
    watermarks: Vec<u32>,
    rejection: Option<usize>,
    /// Expected values of the failed observed comparisons at
    /// `rejection`, in program order.
    failed: Vec<CmpValue>,
    /// Depths of the previous-to-last and last comparison.
    last_depths: [usize; 2],
    cmp_seen: u64,
    eof: Option<usize>,
    events: u64,
}

impl EventSink for LastFailure {
    type Summary = FailureSummary;

    fn begin(&mut self, input_len: usize) {
        self.watermarks = vec![WATERMARK_UNSET; input_len + 1];
    }

    fn on_cmp(&mut self, meta: CmpMeta, expected: LazyCmpValue<'_>) {
        self.events += 1;
        if self.cmp_seen == 0 {
            self.last_depths = [meta.depth, meta.depth];
        } else {
            self.last_depths[0] = self.last_depths[1];
            self.last_depths[1] = meta.depth;
        }
        self.cmp_seen += 1;
        if meta.observed.is_none() {
            return;
        }
        let w = &mut self.watermarks[meta.index];
        if *w == WATERMARK_UNSET {
            *w = self.seq.len() as u32;
        }
        if meta.outcome {
            return;
        }
        match self.rejection {
            Some(r) if meta.index < r => {}
            Some(r) if meta.index == r => self.failed.push(expected.materialise()),
            _ => {
                self.rejection = Some(meta.index);
                self.failed.clear();
                self.failed.push(expected.materialise());
            }
        }
    }

    fn on_branch(&mut self, branch: BranchId, _pos: usize) {
        self.events += 1;
        self.seq.push(branch);
    }

    fn on_eof(&mut self, index: usize) {
        self.events += 1;
        if self.eof.is_none() {
            self.eof = Some(index);
        }
    }

    fn finish(self) -> FailureSummary {
        let branches = BranchSet::from_seq(&self.seq);
        let branches_up_to_rejection = match self.rejection {
            None => branches.clone(),
            Some(r) => {
                let w = self.watermarks[r];
                debug_assert_ne!(w, WATERMARK_UNSET, "rejection implies a watermark");
                BranchSet::from_seq(&self.seq[..w as usize])
            }
        };
        let avg_stack_size = match self.cmp_seen {
            0 => 0.0,
            1 => self.last_depths[1] as f64,
            _ => (self.last_depths[0] + self.last_depths[1]) as f64 / 2.0,
        };
        let mut candidates: Vec<Candidate> = Vec::new();
        if let Some(idx) = self.rejection {
            for expected in &self.failed {
                let replacement_len = expected.replacement_len();
                expected.for_each_replacement(|bytes| {
                    let duplicate = candidates.iter().any(|o| {
                        o.at_index == idx
                            && o.replacement_len == replacement_len
                            && o.bytes == bytes
                    });
                    if !duplicate {
                        candidates.push(Candidate {
                            at_index: idx,
                            replacement_len,
                            bytes: bytes.to_vec(),
                        });
                    }
                });
            }
        }
        FailureSummary {
            path_hash: branches.path_hash(),
            branches,
            branches_up_to_rejection,
            rejection_index: self.rejection,
            candidates,
            avg_stack_size,
            eof_access: self.eof,
            events: self.events,
        }
    }
}

// ---- ExecLog reference conversions ----------------------------------------

impl ExecLog {
    /// Reduces a full log to the [`CoverageOnly`] summary — the
    /// reference implementation the streaming sink must agree with, and
    /// the fallback for subjects without a native coverage entry point.
    pub fn coverage_summary(&self) -> CovSummary {
        let branch_seq: Vec<BranchId> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Branch(b, _) => Some(*b),
                _ => None,
            })
            .collect();
        CovSummary {
            branches: branch_seq.iter().copied().collect(),
            branch_seq,
            eof_access: self.eof_access(),
            events: self.events.len() as u64,
        }
    }

    /// Reduces a full log to the [`LastFailure`] summary — the
    /// reference implementation the streaming sink must agree with, and
    /// the fallback for subjects without a native last-failure entry
    /// point.
    pub fn failure_summary(&self) -> FailureSummary {
        let branches = self.branches();
        FailureSummary {
            path_hash: branches.path_hash(),
            branches_up_to_rejection: self.branches_up_to_rejection(),
            branches,
            rejection_index: self.rejection_index(),
            candidates: self.substitution_candidates(),
            avg_stack_size: self.avg_stack_size(),
            eof_access: self.eof_access(),
            events: self.events.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ExecCtx;
    use crate::{kw, lit, one_of, range};

    fn drive<S: EventSink>(ctx: &mut ExecCtx<S>) {
        one_of!(ctx, b"([{");
        range!(ctx, b'0', b'9');
        if !kw!(ctx, "while") {
            lit!(ctx, b'w');
        }
        lit!(ctx, b'(');
        while ctx.next_byte().is_some() {}
        ctx.at_end();
    }

    fn summaries(input: &[u8]) -> (ExecLog, CovSummary, FailureSummary) {
        let mut full = ExecCtx::new(input);
        drive(&mut full);
        let log = full.into_log();

        let mut cov = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, CoverageOnly::default());
        drive(&mut cov);
        let cov = cov.finish();

        let mut last = ExecCtx::with_sink(input, crate::ctx::DEFAULT_FUEL, LastFailure::default());
        drive(&mut last);
        let last = last.finish();

        (log, cov, last)
    }

    #[test]
    fn coverage_sink_matches_full_log_reduction() {
        for input in [&b""[..], b"(", b"w7", b"while(", b"zzz", b"{0while"] {
            let (log, cov, _) = summaries(input);
            assert_eq!(cov, log.coverage_summary(), "input {input:?}");
        }
    }

    #[test]
    fn last_failure_sink_matches_full_log_reduction() {
        for input in [
            &b""[..],
            b"(",
            b"w7",
            b"while(",
            b"zzz",
            b"{0while",
            b"whale",
        ] {
            let (log, _, last) = summaries(input);
            assert_eq!(last, log.failure_summary(), "input {input:?}");
        }
    }

    #[test]
    fn coverage_sink_counts_every_event() {
        let (log, cov, last) = summaries(b"w123");
        assert_eq!(cov.events, log.events.len() as u64);
        assert_eq!(last.events, log.events.len() as u64);
    }
}

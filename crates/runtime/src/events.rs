//! The execution event log and the queries the fuzzers run over it.

use crate::coverage::{BranchId, BranchSet};
use crate::journal::Digest;
use crate::site::SiteId;

/// What a tainted input byte was compared against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmpValue {
    /// Comparison against a single byte (e.g. `c == '('`).
    Byte(u8),
    /// Comparison against an inclusive byte range (e.g. `isdigit(c)`).
    Range(u8, u8),
    /// A `strcmp`-style comparison of a tainted string against an expected
    /// string; `matched` bytes agreed before the comparison failed (or the
    /// whole string matched).
    Str {
        /// The full expected string.
        full: Vec<u8>,
        /// How many leading bytes of `full` matched the tainted string.
        matched: usize,
    },
}

impl CmpValue {
    /// The replacement strings that would satisfy this comparison, as used
    /// by pFuzzer's substitution step. Ranges are expanded exhaustively
    /// when small, otherwise sampled at the endpoints and midpoint; string
    /// comparisons yield the unmatched suffix (this is how pFuzzer
    /// synthesizes whole keywords from a single failed `strcmp`).
    ///
    /// Allocating callers only; the hot paths visit the replacements
    /// in place via [`CmpValue::for_each_replacement`].
    pub fn satisfying_replacements(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.for_each_replacement(|bytes| out.push(bytes.to_vec()));
        out
    }

    /// A borrowing view of this value (see [`LazyCmpValue`]).
    pub fn as_lazy(&self) -> LazyCmpValue<'_> {
        match self {
            CmpValue::Byte(b) => LazyCmpValue::Byte(*b),
            CmpValue::Range(lo, hi) => LazyCmpValue::Range(*lo, *hi),
            CmpValue::Str { full, matched } => LazyCmpValue::Str {
                full,
                matched: *matched,
            },
        }
    }

    /// Visits each satisfying replacement without allocating: same
    /// values, same order as [`CmpValue::satisfying_replacements`].
    pub fn for_each_replacement(&self, f: impl FnMut(&[u8])) {
        self.as_lazy().for_each_replacement(f);
    }

    /// Length of the replacement this comparison suggests (`len(c)` in the
    /// heuristic of Algorithm 1, line 49).
    pub fn replacement_len(&self) -> usize {
        match self {
            CmpValue::Byte(_) => 1,
            CmpValue::Range(..) => 1,
            CmpValue::Str { full, matched } => full.len().saturating_sub(*matched),
        }
    }

    /// The inclusive range of bytes that would satisfy this comparison
    /// as the *next* input byte: the byte itself, the full range (even
    /// where replacement expansion compresses wide ranges to probe
    /// bytes), or the first unmatched byte of an expected string.
    /// `None` for a fully-matched string comparison, which constrains
    /// no further byte.
    pub fn accepted_first(&self) -> Option<(u8, u8)> {
        match self {
            CmpValue::Byte(b) => Some((*b, *b)),
            CmpValue::Range(lo, hi) => Some((*lo.min(hi), *lo.max(hi))),
            CmpValue::Str { full, matched } => full.get(*matched).map(|&b| (b, b)),
        }
    }
}

/// A borrowing, allocation-free view of what a tainted byte was compared
/// against. This is what streams through
/// [`EventSink::on_cmp`](crate::EventSink::on_cmp): sinks that need to
/// retain the value call
/// [`materialise`](LazyCmpValue::materialise); sinks that only need the
/// satisfying replacements visit them in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LazyCmpValue<'a> {
    /// Comparison against a single byte.
    Byte(u8),
    /// Comparison against an inclusive byte range.
    Range(u8, u8),
    /// A `strcmp`-style comparison; `full` borrows the expected string.
    Str {
        /// The full expected string.
        full: &'a [u8],
        /// How many leading bytes of `full` matched.
        matched: usize,
    },
}

impl LazyCmpValue<'_> {
    /// Copies this view into an owned [`CmpValue`].
    pub fn materialise(&self) -> CmpValue {
        match *self {
            LazyCmpValue::Byte(b) => CmpValue::Byte(b),
            LazyCmpValue::Range(lo, hi) => CmpValue::Range(lo, hi),
            LazyCmpValue::Str { full, matched } => CmpValue::Str {
                full: full.to_vec(),
                matched,
            },
        }
    }

    /// Visits each replacement that would satisfy this comparison, in
    /// the same order [`CmpValue::satisfying_replacements`] returns
    /// them, without building any intermediate vectors.
    pub fn for_each_replacement(&self, mut f: impl FnMut(&[u8])) {
        match *self {
            LazyCmpValue::Byte(b) => f(&[b]),
            LazyCmpValue::Range(lo, hi) => {
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                let span = usize::from(hi - lo) + 1;
                if span <= 16 {
                    for b in lo..=hi {
                        f(&[b]);
                    }
                } else {
                    let mid = lo + (hi - lo) / 2;
                    f(&[lo]);
                    f(&[mid]);
                    f(&[hi]);
                }
            }
            LazyCmpValue::Str { full, matched } => {
                if matched < full.len() {
                    f(&full[matched..]);
                }
            }
        }
    }

    /// Length of the replacement this comparison suggests (mirrors
    /// [`CmpValue::replacement_len`]).
    pub fn replacement_len(&self) -> usize {
        match *self {
            LazyCmpValue::Byte(_) => 1,
            LazyCmpValue::Range(..) => 1,
            LazyCmpValue::Str { full, matched } => full.len().saturating_sub(matched),
        }
    }
}

/// Caller-supplied scratch for replacement expansion: one flat byte
/// buffer plus spans into it, cleared-and-reused instead of allocating a
/// `Vec<Vec<u8>>` per call. This is the allocation-free counterpart of
/// [`CmpValue::satisfying_replacements`] for callers that expand
/// replacements per comparison in a hot loop.
///
/// # Example
///
/// ```
/// use pdf_runtime::{CmpValue, ReplacementScratch};
///
/// let mut scratch = ReplacementScratch::default();
/// CmpValue::Byte(b'(').satisfying_replacements_into(&mut scratch);
/// assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![&b"("[..]]);
/// // the same scratch is reused — no fresh allocation once warm
/// CmpValue::Range(b'0', b'9').satisfying_replacements_into(&mut scratch);
/// assert_eq!(scratch.len(), 10);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ReplacementScratch {
    bytes: Vec<u8>,
    spans: Vec<(u32, u32)>,
}

impl ReplacementScratch {
    /// Empties the scratch, keeping its capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.spans.clear();
    }

    /// Number of replacements currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the scratch holds no replacements.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th replacement.
    pub fn get(&self, i: usize) -> &[u8] {
        let (off, len) = self.spans[i];
        &self.bytes[off as usize..off as usize + len as usize]
    }

    /// Iterates the replacements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.spans
            .iter()
            .map(|&(off, len)| &self.bytes[off as usize..off as usize + len as usize])
    }

    fn push(&mut self, replacement: &[u8]) {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(replacement);
        self.spans.push((off, replacement.len() as u32));
    }
}

impl CmpValue {
    /// Writes the satisfying replacements into caller-supplied scratch —
    /// same values, same order as
    /// [`satisfying_replacements`](CmpValue::satisfying_replacements),
    /// but reusing the scratch's buffers across calls. The scratch is
    /// cleared first.
    pub fn satisfying_replacements_into(&self, scratch: &mut ReplacementScratch) {
        scratch.clear();
        self.for_each_replacement(|bytes| scratch.push(bytes));
    }
}

/// The position-and-outcome half of a comparison event: everything
/// except the expected value, which streams separately as a
/// [`LazyCmpValue`] so sinks can skip materialising it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpMeta {
    /// Input index of the compared byte.
    pub index: usize,
    /// The observed byte (`None` past the end of the input).
    pub observed: Option<u8>,
    /// Whether the comparison succeeded.
    pub outcome: bool,
    /// Parser call-stack depth at the time of the comparison.
    pub depth: usize,
    /// Static location of the comparison.
    pub site: SiteId,
}

/// Stable fingerprint of one comparison event: FNV-1a over the input
/// index, observed byte, outcome, comparison site and expected value.
///
/// This is the "last comparison value" of *Fuzzing with Fast Failure
/// Feedback*: two executions whose final comparisons fingerprint
/// equally stalled against the same check, so the tiered driver treats
/// the later one as redundant. The streaming
/// [`FastFailure`](crate::FastFailure) sink and the [`ExecLog`]
/// reference reductions must call this same function so their summaries
/// agree bit-for-bit.
pub fn cmp_fingerprint(meta: &CmpMeta, expected: &LazyCmpValue<'_>) -> u64 {
    let mut d = Digest::new();
    d.write_u64(meta.index as u64);
    match meta.observed {
        Some(b) => {
            d.write_u8(1);
            d.write_u8(b);
        }
        None => d.write_u8(0),
    }
    d.write_u8(meta.outcome as u8);
    d.write_u64(meta.site.0);
    match *expected {
        LazyCmpValue::Byte(b) => {
            d.write_u8(1);
            d.write_u8(b);
        }
        LazyCmpValue::Range(lo, hi) => {
            d.write_u8(2);
            d.write_u8(lo);
            d.write_u8(hi);
        }
        LazyCmpValue::Str { full, matched } => {
            d.write_u8(3);
            d.write_u64(matched as u64);
            d.write_bytes(full);
        }
    }
    d.finish()
}

/// A recorded comparison of a tainted input byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cmp {
    /// Input index of the compared byte. For `Str` comparisons this is the
    /// index of the byte at which matching stopped.
    pub index: usize,
    /// The byte that was observed (`None` if the comparison read past the
    /// end of the input).
    pub observed: Option<u8>,
    /// What it was compared against.
    pub expected: CmpValue,
    /// Whether the comparison succeeded.
    pub outcome: bool,
    /// Parser call-stack depth at the time of the comparison.
    pub depth: usize,
    /// Static location of the comparison.
    pub site: SiteId,
}

impl Cmp {
    /// The position-and-outcome half of this comparison.
    pub fn meta(&self) -> CmpMeta {
        CmpMeta {
            index: self.index,
            observed: self.observed,
            outcome: self.outcome,
            depth: self.depth,
            site: self.site,
        }
    }

    /// This comparison's [`cmp_fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        cmp_fingerprint(&self.meta(), &self.expected.as_lazy())
    }
}

/// One entry of the execution event stream, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A tracked comparison.
    Cmp(Cmp),
    /// A covered branch, tagged with the input cursor position at the time.
    Branch(BranchId, usize),
    /// An attempt to access input index `0` past the end of the input —
    /// the EOF signal ("an attempt to access a character beyond the length
    /// of the input string is interpreted as the program encountering EOF
    /// before processing is complete").
    EofAccess(usize),
}

/// The complete instrumentation record of one subject execution.
///
/// # Example
///
/// ```
/// use pdf_runtime::{cov, lit, ExecCtx, ParseError, Subject};
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     cov!(ctx);
///     if !lit!(ctx, b'x') { return Err(ctx.reject("want x")); }
///     ctx.expect_end()
/// }
/// let exec = Subject::new("x", p).run(b"y");
/// assert_eq!(exec.log.rejection_index(), Some(0));
/// assert!(exec.log.eof_access().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecLog {
    /// Events in program order.
    pub events: Vec<Event>,
    /// Length of the input that was executed.
    pub input_len: usize,
}

/// A substitution candidate derived from the comparisons at the rejection
/// point: replace the input from `at_index` on with `bytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the first replaced byte.
    pub at_index: usize,
    /// Replacement bytes (one byte for character comparisons, possibly many
    /// for failed `strcmp`s).
    pub bytes: Vec<u8>,
    /// `len(c)` for the heuristic: the replacement length the comparison
    /// suggested.
    pub replacement_len: usize,
}

impl ExecLog {
    /// All comparisons, in program order.
    pub fn comparisons(&self) -> impl Iterator<Item = &Cmp> {
        self.events.iter().filter_map(|e| match e {
            Event::Cmp(c) => Some(c),
            _ => None,
        })
    }

    /// The first past-the-end access, if any: the parser consumed the whole
    /// input and wanted more.
    pub fn eof_access(&self) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            Event::EofAccess(i) => Some(*i),
            _ => None,
        })
    }

    /// The index of the *first invalid character*: the largest input index
    /// at which a comparison **failed**. Everything before it is the valid
    /// prefix ("the mutations always occur at the last index where the
    /// comparison failed").
    ///
    /// Successful comparisons do not move this point: a tokenizer that
    /// keeps reading word characters after a keyword-table `strcmp`
    /// failed must not mask the keyword suggestion.
    pub fn rejection_index(&self) -> Option<usize> {
        self.comparisons()
            .filter(|c| c.observed.is_some() && !c.outcome)
            .map(|c| c.index)
            .max()
    }

    /// Substitution candidates from the failed comparisons at the
    /// rejection point (Algorithm 1, `addInputs`): for every comparison
    /// made against the first invalid character, a replacement that would
    /// satisfy it.
    pub fn substitution_candidates(&self) -> Vec<Candidate> {
        let Some(idx) = self.rejection_index() else {
            return Vec::new();
        };
        let mut out: Vec<Candidate> = Vec::new();
        for c in self.comparisons().filter(|c| c.index == idx && !c.outcome) {
            let replacement_len = c.expected.replacement_len();
            c.expected.for_each_replacement(|bytes| {
                let duplicate = out.iter().any(|o| {
                    o.at_index == idx && o.replacement_len == replacement_len && o.bytes == bytes
                });
                if !duplicate {
                    out.push(Candidate {
                        at_index: idx,
                        replacement_len,
                        bytes: bytes.to_vec(),
                    });
                }
            });
        }
        out
    }

    /// Full expected byte strings (length ≥ 2) of the failed string
    /// comparisons at the rejection point, in program order with
    /// duplicates removed — the token-miner feed. Unlike
    /// [`substitution_candidates`](ExecLog::substitution_candidates),
    /// which yields only the unmatched suffix of a keyword comparison,
    /// this returns the whole keyword: a failed `strcmp` against
    /// `"while"` contributes `b"while"` even when the input already
    /// matched `"wh"`.
    pub fn expected_tokens(&self) -> Vec<Vec<u8>> {
        let Some(idx) = self.rejection_index() else {
            return Vec::new();
        };
        let mut out: Vec<Vec<u8>> = Vec::new();
        for c in self.comparisons().filter(|c| c.index == idx && !c.outcome) {
            if let CmpValue::Str { full, .. } = &c.expected {
                if full.len() >= 2 && !out.iter().any(|t| t == full) {
                    out.push(full.clone());
                }
            }
        }
        out
    }

    /// Inclusive ranges of bytes the failed comparisons at the
    /// rejection point would have accepted as the next byte, in program
    /// order with exact duplicates removed — see
    /// [`CmpValue::accepted_first`]. The dictionary-anchoring feed:
    /// keeps the full span of wide range comparisons that
    /// [`substitution_candidates`](ExecLog::substitution_candidates)
    /// compresses to three probe bytes.
    pub fn accepted_first_bytes(&self) -> Vec<(u8, u8)> {
        let Some(idx) = self.rejection_index() else {
            return Vec::new();
        };
        let mut out: Vec<(u8, u8)> = Vec::new();
        for c in self.comparisons().filter(|c| c.index == idx && !c.outcome) {
            if let Some(span) = c.expected.accepted_first() {
                if !out.contains(&span) {
                    out.push(span);
                }
            }
        }
        out
    }

    /// All branches covered during the execution.
    pub fn branches(&self) -> BranchSet {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Branch(b, _) => Some(*b),
                _ => None,
            })
            .collect()
    }

    /// Branches covered *up to the first comparison of the last compared
    /// character* — the paper's guard against crediting error-handling
    /// code: "we only consider the covered branches up to the last
    /// accepted character of the input".
    pub fn branches_up_to_rejection(&self) -> BranchSet {
        let Some(idx) = self.rejection_index() else {
            return self.branches();
        };
        let mut out = BranchSet::new();
        for e in &self.events {
            match e {
                Event::Cmp(c) if c.index == idx && c.observed.is_some() => break,
                Event::Branch(b, _) => {
                    out.insert(*b);
                }
                _ => {}
            }
        }
        out
    }

    /// Average stack depth over the last two comparisons (Algorithm 1,
    /// line 50, `avgStackSize`). Zero when no comparison happened.
    pub fn avg_stack_size(&self) -> f64 {
        let depths: Vec<usize> = self.comparisons().map(|c| c.depth).collect();
        match depths.len() {
            0 => 0.0,
            1 => depths[0] as f64,
            n => (depths[n - 1] + depths[n - 2]) as f64 / 2.0,
        }
    }

    /// Number of comparison events (used by execution-cost accounting and
    /// tests).
    pub fn cmp_count(&self) -> usize {
        self.comparisons().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(index: usize, observed: Option<u8>, expected: CmpValue, outcome: bool) -> Event {
        Event::Cmp(Cmp {
            index,
            observed,
            expected,
            outcome,
            depth: 1,
            site: SiteId::from_raw(9),
        })
    }

    fn branch(raw: u64, pos: usize) -> Event {
        Event::Branch(BranchId::new(SiteId::from_raw(raw), true), pos)
    }

    #[test]
    fn byte_replacements() {
        assert_eq!(
            CmpValue::Byte(b'(').satisfying_replacements(),
            vec![vec![b'(']]
        );
    }

    #[test]
    fn small_range_expands_fully() {
        let r = CmpValue::Range(b'0', b'9').satisfying_replacements();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], vec![b'0']);
        assert_eq!(r[9], vec![b'9']);
    }

    #[test]
    fn large_range_samples() {
        let r = CmpValue::Range(b'a', b'z').satisfying_replacements();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], vec![b'a']);
        assert_eq!(r[2], vec![b'z']);
    }

    #[test]
    fn reversed_range_is_normalised() {
        let r = CmpValue::Range(b'9', b'0').satisfying_replacements();
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn str_replacement_is_unmatched_suffix() {
        let v = CmpValue::Str {
            full: b"while".to_vec(),
            matched: 2,
        };
        assert_eq!(v.satisfying_replacements(), vec![b"ile".to_vec()]);
        assert_eq!(v.replacement_len(), 3);
    }

    #[test]
    fn fully_matched_str_has_no_replacement() {
        let v = CmpValue::Str {
            full: b"if".to_vec(),
            matched: 2,
        };
        assert!(v.satisfying_replacements().is_empty());
        assert_eq!(v.replacement_len(), 0);
    }

    #[test]
    fn accepted_first_keeps_full_range_spans() {
        assert_eq!(CmpValue::Byte(b'(').accepted_first(), Some((b'(', b'(')));
        // wide ranges keep their whole span where replacement
        // expansion compresses them to three probe bytes
        assert_eq!(
            CmpValue::Range(b'a', b'z').accepted_first(),
            Some((b'a', b'z'))
        );
        assert_eq!(
            CmpValue::Range(b'9', b'0').accepted_first(),
            Some((b'0', b'9'))
        );
        let partial = CmpValue::Str {
            full: b"while".to_vec(),
            matched: 2,
        };
        assert_eq!(partial.accepted_first(), Some((b'i', b'i')));
        let done = CmpValue::Str {
            full: b"if".to_vec(),
            matched: 2,
        };
        assert_eq!(done.accepted_first(), None);
    }

    #[test]
    fn accepted_first_bytes_dedups_in_program_order() {
        let log = ExecLog {
            events: vec![
                cmp(0, Some(b'x'), CmpValue::Range(b'a', b'z'), false),
                cmp(0, Some(b'x'), CmpValue::Byte(b'{'), false),
                cmp(0, Some(b'x'), CmpValue::Range(b'a', b'z'), false),
                // passed comparisons contribute nothing
                cmp(0, Some(b'x'), CmpValue::Byte(b'x'), true),
            ],
            input_len: 1,
        };
        assert_eq!(log.accepted_first_bytes(), vec![(b'a', b'z'), (b'{', b'{')]);
        let empty = ExecLog {
            events: vec![],
            input_len: 0,
        };
        assert!(empty.accepted_first_bytes().is_empty());
    }

    #[test]
    fn scratch_replacements_match_allocating_replacements() {
        let values = [
            CmpValue::Byte(b'('),
            CmpValue::Range(b'0', b'9'),
            CmpValue::Range(b'a', b'z'),
            CmpValue::Range(b'9', b'0'),
            CmpValue::Str {
                full: b"while".to_vec(),
                matched: 2,
            },
            CmpValue::Str {
                full: b"if".to_vec(),
                matched: 2,
            },
        ];
        let mut scratch = ReplacementScratch::default();
        for v in &values {
            v.satisfying_replacements_into(&mut scratch);
            let via_scratch: Vec<Vec<u8>> = scratch.iter().map(<[u8]>::to_vec).collect();
            assert_eq!(via_scratch, v.satisfying_replacements(), "{v:?}");
            assert_eq!(scratch.len(), via_scratch.len());
            assert_eq!(scratch.is_empty(), via_scratch.is_empty());
            for (i, r) in via_scratch.iter().enumerate() {
                assert_eq!(scratch.get(i), &r[..]);
            }
        }
    }

    #[test]
    fn fingerprint_separates_comparisons() {
        let base = Cmp {
            index: 3,
            observed: Some(b'x'),
            expected: CmpValue::Byte(b'a'),
            outcome: false,
            depth: 1,
            site: SiteId::from_raw(9),
        };
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let mut other = base.clone();
        other.index = 4;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.expected = CmpValue::Byte(b'b');
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = base.clone();
        other.outcome = true;
        assert_ne!(base.fingerprint(), other.fingerprint());
        // the fingerprint matches the lazy-view computation the sinks use
        assert_eq!(
            base.fingerprint(),
            cmp_fingerprint(&base.meta(), &base.expected.as_lazy())
        );
    }

    #[test]
    fn rejection_index_is_max_compared() {
        let log = ExecLog {
            events: vec![
                cmp(0, Some(b'a'), CmpValue::Byte(b'a'), true),
                cmp(1, Some(b'x'), CmpValue::Byte(b'b'), false),
                cmp(1, Some(b'x'), CmpValue::Byte(b'c'), false),
            ],
            input_len: 2,
        };
        assert_eq!(log.rejection_index(), Some(1));
        let cands = log.substitution_candidates();
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.at_index == 1));
    }

    #[test]
    fn candidates_exclude_successful_comparisons() {
        let log = ExecLog {
            events: vec![
                cmp(0, Some(b'a'), CmpValue::Byte(b'a'), true),
                cmp(0, Some(b'a'), CmpValue::Byte(b'z'), false),
            ],
            input_len: 1,
        };
        let cands = log.substitution_candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].bytes, vec![b'z']);
    }

    #[test]
    fn candidates_dedup() {
        let log = ExecLog {
            events: vec![
                cmp(0, Some(b'a'), CmpValue::Byte(b'z'), false),
                cmp(0, Some(b'a'), CmpValue::Byte(b'z'), false),
            ],
            input_len: 1,
        };
        assert_eq!(log.substitution_candidates().len(), 1);
    }

    #[test]
    fn branches_up_to_rejection_stops_at_first_cmp_of_last_index() {
        let log = ExecLog {
            events: vec![
                branch(1, 0),
                cmp(0, Some(b'a'), CmpValue::Byte(b'a'), true),
                branch(2, 1),
                cmp(1, Some(b'x'), CmpValue::Byte(b'b'), false),
                branch(3, 1), // error-handling branch, must not be counted
            ],
            input_len: 2,
        };
        let pre = log.branches_up_to_rejection();
        assert_eq!(pre.len(), 2);
        assert_eq!(log.branches().len(), 3);
    }

    #[test]
    fn eof_access_found() {
        let log = ExecLog {
            events: vec![
                cmp(0, Some(b'('), CmpValue::Byte(b'('), true),
                Event::EofAccess(1),
            ],
            input_len: 1,
        };
        assert_eq!(log.eof_access(), Some(1));
    }

    #[test]
    fn avg_stack_size_last_two() {
        let mk = |d: usize| {
            Event::Cmp(Cmp {
                index: 0,
                observed: Some(b'a'),
                expected: CmpValue::Byte(b'a'),
                outcome: true,
                depth: d,
                site: SiteId::from_raw(1),
            })
        };
        let log = ExecLog {
            events: vec![mk(2), mk(4), mk(8)],
            input_len: 1,
        };
        assert!((log.avg_stack_size() - 6.0).abs() < 1e-9);
        let one = ExecLog {
            events: vec![mk(5)],
            input_len: 1,
        };
        assert!((one.avg_stack_size() - 5.0).abs() < 1e-9);
        let empty = ExecLog::default();
        assert_eq!(empty.avg_stack_size(), 0.0);
    }
}

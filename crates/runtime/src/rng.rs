//! A small, fully deterministic random number generator.
//!
//! All three fuzzers take explicit seeds so every experiment is exactly
//! reproducible; rather than depending on an external RNG crate whose
//! stream might change across versions, the whole workspace shares this
//! fixed xoshiro256** implementation (public-domain algorithm by Blackman
//! and Vigna), seeded via SplitMix64.

/// Deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use pdf_runtime::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let byte = a.gen_range(0, 256) as u8;
/// let _ = byte;
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    draws: u64,
    digest: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            draws: 0,
            digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        self.draws += 1;
        for b in result.to_le_bytes() {
            self.digest = (self.digest ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        result
    }

    /// How many raw 64-bit values this generator has produced. Recorded
    /// into replay journals so a re-run can assert it consumed exactly
    /// the same amount of randomness.
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Rolling FNV-1a digest over every value this generator has
    /// produced — a compact fingerprint of the whole random stream.
    pub fn stream_digest(&self) -> u64 {
        self.digest
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.gen_range(0, items.len());
        &items[i]
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// A random printable-ish ASCII byte. pFuzzer appends "a random
    /// character from the set of all ASCII characters"; like the
    /// prototype we bias towards the printable range plus the common
    /// whitespace controls to keep examples legible. The full byte range
    /// is reachable via [`byte_any`](Self::byte_any).
    pub fn byte_ascii(&mut self) -> u8 {
        const EXTRA: [u8; 3] = [b'\t', b'\n', b'\r'];
        if self.chance(1, 16) {
            *self.pick(&EXTRA)
        } else {
            self.gen_range(0x20, 0x7f) as u8
        }
    }

    /// A uniformly random byte from the full 0..256 range.
    pub fn byte_any(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }

    /// Derives an independent generator (for per-run streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Discards `n` draws, fast-forwarding the generator — the draw
    /// count and rolling digest advance exactly as if the values had
    /// been consumed. Used by campaign resume: a checkpoint records the
    /// draw count, and a fresh generator skipped to it continues the
    /// stream byte-identically.
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u64();
        }
    }

    /// Expands one accounted draw into a [`DerivedRng`] bulk stream.
    ///
    /// Costs exactly one [`next_u64`](Self::next_u64) — counted and
    /// digest-folded like any other draw — and every value the derived
    /// stream will ever produce is a pure function of that draw. A
    /// seeded campaign therefore replays derived values byte-identically,
    /// and the parent's draw count and stream digest still witness them.
    pub fn derive_stream(&mut self) -> DerivedRng {
        DerivedRng {
            state: self.next_u64(),
        }
    }
}

/// A cheap bulk stream expanded from a single accounted [`Rng`] draw.
///
/// This is the randomness source for inner loops that would otherwise be
/// dominated by the chokepoint's per-draw accounting (counter bump plus
/// an eight-step digest fold): the compiled grammar generator samples
/// one alternative per expanded rule, and at millions of inputs per
/// second the accounting would cost more than the generation. The
/// derived stream is plain SplitMix64 — a few arithmetic instructions
/// per value, no accounting — and it has **no public seed constructor**:
/// the only way to obtain one is [`Rng::derive_stream`], so bulk
/// consumers still cannot acquire randomness outside the chokepoint.
///
/// # Example
///
/// ```
/// use pdf_runtime::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// let mut sa = a.derive_stream();
/// let mut sb = b.derive_stream();
/// assert_eq!(sa.next_u64(), sb.next_u64());
/// assert_eq!(a.draw_count(), 1); // the derivation is one accounted draw
/// ```
#[derive(Debug, Clone)]
pub struct DerivedRng {
    state: u64,
}

impl DerivedRng {
    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform index in `[0, n)` by multiply-shift (one draw, no
    /// division; bias is bounded by `n / 2^64`). Returns `0` when `n`
    /// is `0`.
    #[inline]
    pub fn index(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.gen_range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        Rng::new(0).gen_range(3, 3);
    }

    #[test]
    fn byte_ascii_is_reasonable() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let b = r.byte_ascii();
            assert!(
                (0x20..0x7f).contains(&b) || b == b'\t' || b == b'\n' || b == b'\r',
                "byte {b:#x} outside expected set"
            );
        }
    }

    #[test]
    fn byte_ascii_covers_many_values() {
        let mut r = Rng::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4000 {
            seen.insert(r.byte_ascii());
        }
        assert!(seen.len() > 80, "only {} distinct bytes", seen.len());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut r = Rng::new(9);
        let mut f = r.fork();
        assert_ne!(r.next_u64(), f.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(13);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }

    #[test]
    fn draw_count_and_digest_track_the_stream() {
        let mut a = Rng::new(21);
        let mut b = Rng::new(21);
        assert_eq!(a.draw_count(), 0);
        assert_eq!(a.stream_digest(), b.stream_digest());
        for _ in 0..50 {
            a.next_u64();
            b.next_u64();
        }
        assert_eq!(a.draw_count(), 50);
        assert_eq!(a.stream_digest(), b.stream_digest());
        a.next_u64();
        assert_ne!(a.stream_digest(), b.stream_digest());
        assert_eq!(a.draw_count(), b.draw_count() + 1);
    }

    #[test]
    fn skip_fast_forwards_the_stream() {
        let mut consumed = Rng::new(17);
        for _ in 0..37 {
            consumed.next_u64();
        }
        let mut skipped = Rng::new(17);
        skipped.skip(37);
        assert_eq!(skipped.draw_count(), 37);
        assert_eq!(skipped.stream_digest(), consumed.stream_digest());
        assert_eq!(skipped.next_u64(), consumed.next_u64());
    }

    #[test]
    fn byte_ascii_draws_exactly_two() {
        let mut r = Rng::new(33);
        let before = r.draw_count();
        r.byte_ascii();
        assert_eq!(r.draw_count(), before + 2);
    }

    #[test]
    fn derived_stream_is_one_draw_and_deterministic() {
        let mut a = Rng::new(51);
        let mut b = Rng::new(51);
        let mut sa = a.derive_stream();
        let mut sb = b.derive_stream();
        assert_eq!(a.draw_count(), 1);
        assert_eq!(a.stream_digest(), b.stream_digest());
        for _ in 0..1000 {
            assert_eq!(sa.next_u64(), sb.next_u64());
        }
        // arbitrarily many derived values cost no further accounting
        assert_eq!(a.draw_count(), 1);
    }

    #[test]
    fn derived_streams_from_successive_draws_differ() {
        let mut r = Rng::new(8);
        let mut s1 = r.derive_stream();
        let mut s2 = r.derive_stream();
        let a: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_index_in_bounds() {
        let mut r = Rng::new(19);
        let mut s = r.derive_stream();
        assert_eq!(s.index(0), 0);
        for n in [1u64, 2, 3, 7, 100] {
            for _ in 0..200 {
                assert!(s.index(n) < n);
            }
        }
    }
}

//! Branch identifiers and branch sets.

use std::collections::BTreeSet;
use std::fmt;

use crate::site::SiteId;

/// A dynamic branch: a static site together with the direction taken.
///
/// Comparison sites produce two branches (outcome `true` / `false`);
/// plain coverage points (`ExecCtx::cov`) produce a single branch with
/// `outcome = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchId {
    /// The static location of the branch.
    pub site: SiteId,
    /// Which way the branch went.
    pub outcome: bool,
}

impl BranchId {
    /// Creates a branch id.
    pub fn new(site: SiteId, outcome: bool) -> Self {
        BranchId { site, outcome }
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, if self.outcome { "T" } else { "F" })
    }
}

/// A set of covered branches.
///
/// Used both per-execution (the branches one run covered) and globally
/// (`vBr` in Algorithm 1 of the paper: all branches covered by valid
/// inputs so far).
///
/// # Example
///
/// ```
/// use pdf_runtime::{BranchId, BranchSet, SiteId};
/// let mut a = BranchSet::new();
/// a.insert(BranchId::new(SiteId::from_raw(1), true));
/// let mut b = BranchSet::new();
/// b.insert(BranchId::new(SiteId::from_raw(1), true));
/// b.insert(BranchId::new(SiteId::from_raw(2), false));
/// assert_eq!(b.difference_size(&a), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchSet {
    set: BTreeSet<BranchId>,
}

impl BranchSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a branch; returns `true` if it was not present before.
    pub fn insert(&mut self, b: BranchId) -> bool {
        self.set.insert(b)
    }

    /// Whether the branch is present.
    pub fn contains(&self, b: &BranchId) -> bool {
        self.set.contains(b)
    }

    /// Number of branches in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the branches in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &BranchId> {
        self.set.iter()
    }

    /// Number of branches in `self` that are not in `other`
    /// (`size(branches \ vBr)` in Algorithm 1).
    pub fn difference_size(&self, other: &BranchSet) -> usize {
        self.set.iter().filter(|b| !other.contains(b)).count()
    }

    /// Adds every branch of `other` to `self`.
    pub fn union_with(&mut self, other: &BranchSet) {
        for b in other.iter() {
            self.set.insert(*b);
        }
    }

    /// A stable 64-bit hash of the set, used for path deduplication
    /// (Section 3.2: "pFuzzer keeps track of all paths that were already
    /// taken").
    pub fn path_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.set {
            h ^= b.site.0 ^ u64::from(b.outcome);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl FromIterator<BranchId> for BranchSet {
    fn from_iter<I: IntoIterator<Item = BranchId>>(iter: I) -> Self {
        BranchSet {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<BranchId> for BranchSet {
    fn extend<I: IntoIterator<Item = BranchId>>(&mut self, iter: I) {
        self.set.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(raw: u64, outcome: bool) -> BranchId {
        BranchId::new(SiteId::from_raw(raw), outcome)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = BranchSet::new();
        assert!(s.insert(b(1, true)));
        assert!(!s.insert(b(1, true)));
        assert!(s.contains(&b(1, true)));
        assert!(!s.contains(&b(1, false)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn difference_counts_new_branches_only() {
        let old: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let run: BranchSet = [b(1, true), b(3, false), b(4, true)].into_iter().collect();
        assert_eq!(run.difference_size(&old), 2);
        assert_eq!(old.difference_size(&run), 1);
    }

    #[test]
    fn union_with_grows() {
        let mut a: BranchSet = [b(1, true)].into_iter().collect();
        let c: BranchSet = [b(1, true), b(2, false)].into_iter().collect();
        a.union_with(&c);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn path_hash_distinguishes_paths() {
        let p1: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let p2: BranchSet = [b(1, true), b(2, false)].into_iter().collect();
        assert_ne!(p1.path_hash(), p2.path_hash());
    }

    #[test]
    fn path_hash_is_order_independent() {
        let p1: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let p2: BranchSet = [b(2, true), b(1, true)].into_iter().collect();
        assert_eq!(p1.path_hash(), p2.path_hash());
    }

    #[test]
    fn empty_set_behaviour() {
        let s = BranchSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.difference_size(&s), 0);
    }
}

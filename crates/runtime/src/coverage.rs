//! Branch identifiers and branch sets.

use std::fmt;

use crate::site::SiteId;

/// A dynamic branch: a static site together with the direction taken.
///
/// Comparison sites produce two branches (outcome `true` / `false`);
/// plain coverage points (`ExecCtx::cov`) produce a single branch with
/// `outcome = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchId {
    /// The static location of the branch.
    pub site: SiteId,
    /// Which way the branch went.
    pub outcome: bool,
}

impl BranchId {
    /// Creates a branch id.
    pub fn new(site: SiteId, outcome: bool) -> Self {
        BranchId { site, outcome }
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, if self.outcome { "T" } else { "F" })
    }
}

/// A set of covered branches.
///
/// Used both per-execution (the branches one run covered) and globally
/// (`vBr` in Algorithm 1 of the paper: all branches covered by valid
/// inputs so far).
///
/// # Example
///
/// ```
/// use pdf_runtime::{BranchId, BranchSet, SiteId};
/// let mut a = BranchSet::new();
/// a.insert(BranchId::new(SiteId::from_raw(1), true));
/// let mut b = BranchSet::new();
/// b.insert(BranchId::new(SiteId::from_raw(1), true));
/// b.insert(BranchId::new(SiteId::from_raw(2), false));
/// assert_eq!(b.difference_size(&a), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchSet {
    /// Sorted, deduplicated. Branch sets are small (tens of branches per
    /// subject), so a flat sorted vector beats a tree set: one
    /// allocation, cache-friendly binary search, and `collect` from a
    /// long branch sequence is a sort + dedup instead of per-node
    /// insertions. Building these per execution is the hot path of the
    /// streaming sinks.
    set: Vec<BranchId>,
}

impl BranchSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the set of distinct branches in an execution-order
    /// sequence. Faster than `collect()` when the sequence is much
    /// longer than its distinct-branch count (the per-execution case):
    /// it never materialises the full sequence, only the small set.
    pub fn from_seq(seq: &[BranchId]) -> Self {
        // Linear-probe scratch table on the stack (4 KiB: the bool niche
        // keeps Option<BranchId> at 16 bytes). Site ids are FNV hashes,
        // so the low bits probe well. Typical runs cover a few dozen
        // distinct branches; a dense run falls back to sorting.
        const SLOTS: usize = 256;
        if seq.len() <= 32 {
            // sort + dedup beats zeroing the probe table for short runs
            return seq.iter().copied().collect();
        }
        let mut table: [Option<BranchId>; SLOTS] = [None; SLOTS];
        let mut count = 0usize;
        let mut last: Option<BranchId> = None;
        for &b in seq {
            // runs of the same branch are common in parse loops
            if last == Some(b) {
                continue;
            }
            last = Some(b);
            let mut i = ((b.site.0 ^ u64::from(b.outcome)) as usize) & (SLOTS - 1);
            loop {
                match table[i] {
                    Some(x) if x == b => break,
                    Some(_) => i = (i + 1) & (SLOTS - 1),
                    None => {
                        if count >= SLOTS / 2 {
                            return seq.iter().copied().collect();
                        }
                        table[i] = Some(b);
                        count += 1;
                        break;
                    }
                }
            }
        }
        let mut set: Vec<BranchId> = table.iter().flatten().copied().collect();
        set.sort_unstable();
        BranchSet { set }
    }

    /// Inserts a branch; returns `true` if it was not present before.
    pub fn insert(&mut self, b: BranchId) -> bool {
        match self.set.binary_search(&b) {
            Ok(_) => false,
            Err(i) => {
                self.set.insert(i, b);
                true
            }
        }
    }

    /// Whether the branch is present.
    pub fn contains(&self, b: &BranchId) -> bool {
        self.set.binary_search(b).is_ok()
    }

    /// Number of branches in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the branches in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &BranchId> {
        self.set.iter()
    }

    /// Number of branches in `self` that are not in `other`
    /// (`size(branches \ vBr)` in Algorithm 1). A merge walk over the
    /// two sorted sets.
    pub fn difference_size(&self, other: &BranchSet) -> usize {
        let mut count = 0;
        let mut o = other.set.iter().peekable();
        for b in &self.set {
            while o.next_if(|&x| x < b).is_some() {}
            if o.peek() != Some(&b) {
                count += 1;
            }
        }
        count
    }

    /// Adds every branch of `other` to `self`.
    pub fn union_with(&mut self, other: &BranchSet) {
        if other.set.is_empty() {
            return;
        }
        if self.set.is_empty() {
            self.set = other.set.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.set.len() + other.set.len());
        let (mut i, mut j) = (0, 0);
        while i < self.set.len() && j < other.set.len() {
            match self.set[i].cmp(&other.set[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.set[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.set[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.set[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.set[i..]);
        merged.extend_from_slice(&other.set[j..]);
        self.set = merged;
    }

    /// A stable 64-bit hash of the set, used for path deduplication
    /// (Section 3.2: "pFuzzer keeps track of all paths that were already
    /// taken").
    pub fn path_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.set {
            h ^= b.site.0 ^ u64::from(b.outcome);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl FromIterator<BranchId> for BranchSet {
    fn from_iter<I: IntoIterator<Item = BranchId>>(iter: I) -> Self {
        let mut set: Vec<BranchId> = iter.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        BranchSet { set }
    }
}

impl Extend<BranchId> for BranchSet {
    fn extend<I: IntoIterator<Item = BranchId>>(&mut self, iter: I) {
        self.set.extend(iter);
        self.set.sort_unstable();
        self.set.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(raw: u64, outcome: bool) -> BranchId {
        BranchId::new(SiteId::from_raw(raw), outcome)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = BranchSet::new();
        assert!(s.insert(b(1, true)));
        assert!(!s.insert(b(1, true)));
        assert!(s.contains(&b(1, true)));
        assert!(!s.contains(&b(1, false)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn difference_counts_new_branches_only() {
        let old: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let run: BranchSet = [b(1, true), b(3, false), b(4, true)].into_iter().collect();
        assert_eq!(run.difference_size(&old), 2);
        assert_eq!(old.difference_size(&run), 1);
    }

    #[test]
    fn union_with_grows() {
        let mut a: BranchSet = [b(1, true)].into_iter().collect();
        let c: BranchSet = [b(1, true), b(2, false)].into_iter().collect();
        a.union_with(&c);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn path_hash_distinguishes_paths() {
        let p1: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let p2: BranchSet = [b(1, true), b(2, false)].into_iter().collect();
        assert_ne!(p1.path_hash(), p2.path_hash());
    }

    #[test]
    fn path_hash_is_order_independent() {
        let p1: BranchSet = [b(1, true), b(2, true)].into_iter().collect();
        let p2: BranchSet = [b(2, true), b(1, true)].into_iter().collect();
        assert_eq!(p1.path_hash(), p2.path_hash());
    }

    #[test]
    fn empty_set_behaviour() {
        let s = BranchSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.difference_size(&s), 0);
    }

    #[test]
    fn from_seq_matches_collect() {
        // repeated runs, duplicates out of order, and enough distinct
        // branches to force probing past the first slot
        let mut seq = Vec::new();
        for i in 0..400u64 {
            seq.push(b(i % 37, i % 3 == 0));
            seq.push(b(i % 37, i % 3 == 0));
            seq.push(b((i * 7) % 11, true));
        }
        let fast = BranchSet::from_seq(&seq);
        let reference: BranchSet = seq.iter().copied().collect();
        assert_eq!(fast, reference);
        assert_eq!(BranchSet::from_seq(&[]), BranchSet::new());
    }

    #[test]
    fn from_seq_dense_fallback_matches_collect() {
        // more than SLOTS/2 distinct branches triggers the sort fallback
        let seq: Vec<BranchId> = (0..300u64).map(|i| b(i, i % 2 == 0)).collect();
        let fast = BranchSet::from_seq(&seq);
        let reference: BranchSet = seq.iter().copied().collect();
        assert_eq!(fast, reference);
        assert_eq!(fast.len(), 300);
    }

    #[test]
    fn difference_size_merge_walk_cases() {
        let empty = BranchSet::new();
        let a: BranchSet = [b(1, true), b(5, false), b(9, true)].into_iter().collect();
        let c: BranchSet = [b(5, false)].into_iter().collect();
        assert_eq!(a.difference_size(&empty), 3);
        assert_eq!(empty.difference_size(&a), 0);
        assert_eq!(a.difference_size(&c), 2);
        assert_eq!(c.difference_size(&a), 0);
        let disjoint: BranchSet = [b(2, true), b(100, false)].into_iter().collect();
        assert_eq!(a.difference_size(&disjoint), 3);
    }
}

//! Tainted strings: byte buffers that remember the input indices their
//! bytes came from.
//!
//! The paper's instrumentation associates every input character with a
//! unique taint and propagates taints through copies (`strcpy` and
//! friends are wrapped). Tokenizing parsers copy identifier characters
//! into a buffer and then `strcmp` the buffer against keyword tables; the
//! taints let pFuzzer map a failed keyword comparison back to concrete
//! input indices. [`TStr`] is that wrapped buffer.

/// A tainted string: bytes plus the input index each byte was read from.
///
/// # Example
///
/// ```
/// use pdf_runtime::TStr;
/// let mut ts = TStr::new();
/// ts.push(b'i', 4);
/// ts.push(b'f', 5);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.byte(1), b'f');
/// assert_eq!(ts.index(1), 5);
/// assert_eq!(ts.end_index(), 6);
/// assert_eq!(ts.as_bytes(), b"if");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TStr {
    bytes: Vec<u8>,
    indices: Vec<usize>,
}

impl TStr {
    /// Creates an empty tainted string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a byte read from input index `index`.
    pub fn push(&mut self, byte: u8, index: usize) {
        self.bytes.push(byte);
        self.indices.push(index);
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The byte at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn byte(&self, i: usize) -> u8 {
        self.bytes[i]
    }

    /// The input index the byte at position `i` was read from.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn index(&self, i: usize) -> usize {
        self.indices[i]
    }

    /// The input index one past the last byte (where an appended character
    /// would land). Zero for an empty string.
    pub fn end_index(&self) -> usize {
        self.indices.last().map_or(0, |&i| i + 1)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The bytes as UTF-8, if valid (identifiers always are).
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.bytes).ok()
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.indices.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ts = TStr::new();
        assert!(ts.is_empty());
        ts.push(b'a', 10);
        ts.push(b'b', 11);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.byte(0), b'a');
        assert_eq!(ts.index(1), 11);
        assert_eq!(ts.as_bytes(), b"ab");
        assert_eq!(ts.as_str(), Some("ab"));
    }

    #[test]
    fn end_index_empty_is_zero() {
        assert_eq!(TStr::new().end_index(), 0);
    }

    #[test]
    fn end_index_past_last() {
        let mut ts = TStr::new();
        ts.push(b'x', 7);
        assert_eq!(ts.end_index(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut ts = TStr::new();
        ts.push(b'x', 0);
        ts.clear();
        assert!(ts.is_empty());
        assert_eq!(ts.end_index(), 0);
    }

    #[test]
    fn non_utf8_as_str_is_none() {
        let mut ts = TStr::new();
        ts.push(0xff, 0);
        assert_eq!(ts.as_str(), None);
    }
}

//! Subjects: instrumented programs under test.

use std::fmt;

use crate::ctx::{ExecCtx, ParseError, DEFAULT_FUEL};
use crate::events::ExecLog;
use crate::isolate::catch_silent;
use crate::sink::{CovSummary, CoverageOnly, EventSink, FailureSummary, FullLog, LastFailure};

/// The type of an instrumented parser entry point (full-log sink).
pub type SubjectFn = fn(&mut ExecCtx) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the coverage-only sink.
pub type CoverageSubjectFn = fn(&mut ExecCtx<CoverageOnly>) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the last-failure sink.
pub type LastFailureSubjectFn = fn(&mut ExecCtx<LastFailure>) -> Result<(), ParseError>;

/// How one subject execution ended — the paper's process exit status,
/// refined into a four-point lattice. Accept and reject are the normal
/// parser outcomes; a hang is a run that exhausted its fuel budget (the
/// in-process analogue of a timeout kill); a crash is a panic that
/// unwound out of the subject and was caught at the
/// [`Subject`] chokepoint.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject, Verdict};
///
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'a') {
///         return Err(ctx.reject("want 'a'"));
///     }
///     if ctx.peek().is_some() {
///         panic!("trailing input");
///     }
///     Ok(())
/// }
/// let s = Subject::new("a", p);
/// assert_eq!(s.run(b"a").verdict, Verdict::Accept);
/// assert!(matches!(s.run(b"b").verdict, Verdict::Reject { .. }));
/// // the panic is caught at the chokepoint; the campaign survives
/// assert!(matches!(s.run(b"ab").verdict, Verdict::Crash { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The input was accepted as valid.
    Accept,
    /// The parser rejected the input.
    Reject {
        /// The parser's rejection message.
        msg: String,
    },
    /// The run exhausted its fuel budget before finishing. Takes
    /// precedence over accept/reject: whatever the parser returned after
    /// running out of fuel is an artifact of the starved reads, not a
    /// judgement about the input.
    Hang,
    /// The subject panicked; the panic was caught and the campaign
    /// continues.
    Crash {
        /// The panic message.
        panic_msg: String,
        /// Stable crash fingerprint: FNV-1a over the tail of recorded
        /// sites (see [`ExecCtx::crash_dedup_key`]). Two crashes with
        /// equal keys died at the same place via the same approach.
        dedup_key: u64,
    },
}

impl Verdict {
    /// Whether the input was accepted.
    pub fn is_accept(&self) -> bool {
        matches!(self, Verdict::Accept)
    }

    /// Whether the run exhausted its fuel.
    pub fn is_hang(&self) -> bool {
        matches!(self, Verdict::Hang)
    }

    /// Whether the subject panicked.
    pub fn is_crash(&self) -> bool {
        matches!(self, Verdict::Crash { .. })
    }

    /// The failure message for non-accepting verdicts, `None` on accept.
    /// Hangs and crashes carry stable prefixes (`"hang: "` / `"crash: "`)
    /// so downstream triage can classify from the message alone.
    pub fn error(&self) -> Option<String> {
        match self {
            Verdict::Accept => None,
            Verdict::Reject { msg } => Some(msg.clone()),
            Verdict::Hang => Some("hang: fuel exhausted".to_string()),
            Verdict::Crash { panic_msg, .. } => Some(format!("crash: {panic_msg}")),
        }
    }
}

/// The result of running a subject on one input: the verdict (the
/// paper's process exit code) plus the instrumentation log.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The recorded event streams.
    pub log: ExecLog,
}

/// The result of a coverage-only run.
#[derive(Debug, Clone)]
pub struct CovExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The coverage summary of the run.
    pub cov: CovSummary,
}

/// The result of a last-failure run.
#[derive(Debug, Clone)]
pub struct FailureExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The failure summary of the run.
    pub failure: FailureSummary,
}

/// An instrumented program under test.
///
/// Wraps a parser entry point together with a display name; each call to
/// [`run`](Subject::run) executes the parser in a fresh [`ExecCtx`], so
/// runs are independent and deterministic.
///
/// Subjects registered through [`instrument_subject!`](crate::instrument_subject)
/// additionally carry entry points monomorphised for the streaming
/// [`CoverageOnly`] and [`LastFailure`] sinks, making
/// [`run_coverage`](Subject::run_coverage) and
/// [`run_last_failure`](Subject::run_last_failure) allocation-lean. For
/// subjects built with plain [`Subject::new`], both fall back to a
/// full-log run reduced after the fact — same summaries, full-log cost.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject};
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
/// let s = Subject::new("bang", p);
/// assert!(s.run(b"!").valid);
/// assert!(!s.run(b"?").valid);
/// ```
#[derive(Clone, Copy)]
pub struct Subject {
    name: &'static str,
    entry: SubjectFn,
    coverage_entry: Option<CoverageSubjectFn>,
    last_failure_entry: Option<LastFailureSubjectFn>,
    fuel: u64,
}

fn classify(
    result: Result<Result<(), ParseError>, String>,
    ctx_hung: bool,
    dedup_key: u64,
) -> Verdict {
    match result {
        Err(panic_msg) => Verdict::Crash {
            panic_msg,
            dedup_key,
        },
        Ok(_) if ctx_hung => Verdict::Hang,
        Ok(Ok(())) => Verdict::Accept,
        Ok(Err(e)) => Verdict::Reject {
            msg: e.message().to_string(),
        },
    }
}

impl Subject {
    /// Creates a subject with the default fuel budget.
    pub fn new(name: &'static str, entry: SubjectFn) -> Self {
        Subject {
            name,
            entry,
            coverage_entry: None,
            last_failure_entry: None,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the per-run fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Registers a coverage-only entry point (the same parser
    /// monomorphised over [`CoverageOnly`]).
    pub fn with_coverage_entry(mut self, entry: CoverageSubjectFn) -> Self {
        self.coverage_entry = Some(entry);
        self
    }

    /// Registers a last-failure entry point (the same parser
    /// monomorphised over [`LastFailure`]).
    pub fn with_last_failure_entry(mut self, entry: LastFailureSubjectFn) -> Self {
        self.last_failure_entry = Some(entry);
        self
    }

    /// The subject's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether native (streaming-sink) entry points are registered.
    pub fn has_native_sinks(&self) -> bool {
        self.coverage_entry.is_some() && self.last_failure_entry.is_some()
    }

    /// The full-log entry point. Exposed so wrapper subjects (e.g. the
    /// chaos layer in `pdf-subjects`) can delegate to the inner parser.
    pub fn entry(&self) -> SubjectFn {
        self.entry
    }

    /// The coverage-only entry point, when registered.
    pub fn coverage_entry(&self) -> Option<CoverageSubjectFn> {
        self.coverage_entry
    }

    /// The last-failure entry point, when registered.
    pub fn last_failure_entry(&self) -> Option<LastFailureSubjectFn> {
        self.last_failure_entry
    }

    /// The per-run fuel budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The single execution chokepoint: every run of every sink flavour
    /// goes through here, so panic isolation (the subject runs under
    /// [`catch_silent`]), the hang/crash classification and the metrics
    /// instrumentation are uniform across [`run`](Self::run),
    /// [`run_coverage`](Self::run_coverage) and
    /// [`run_last_failure`](Self::run_last_failure).
    ///
    /// Metrics (exec count, verdict class, latency, input length) go to
    /// the thread's installed `pdf-obs` registry, if any. The clock is
    /// read only when a registry is installed, and nothing recorded here
    /// flows back into the run — metrics are observe-only by
    /// construction.
    fn exec<S: EventSink>(
        &self,
        input: &[u8],
        entry: fn(&mut ExecCtx<S>) -> Result<(), ParseError>,
        sink: S,
    ) -> (Verdict, S::Summary) {
        let start = pdf_obs::enabled().then(std::time::Instant::now);
        let mut ctx = ExecCtx::with_sink(input, self.fuel, sink);
        let result = catch_silent(|| entry(&mut ctx));
        let verdict = classify(result, ctx.exhausted(), ctx.crash_dedup_key());
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            pdf_obs::record(|m| {
                m.execs.inc();
                match &verdict {
                    Verdict::Accept => m.accepts.inc(),
                    Verdict::Reject { .. } => m.rejects.inc(),
                    Verdict::Hang => m.hangs.inc(),
                    Verdict::Crash { .. } => m.crashes.inc(),
                }
                m.exec_latency_ns.observe(ns);
                m.input_len.observe(input.len() as u64);
            });
        }
        (verdict, ctx.finish())
    }

    /// Runs the subject on `input`, returning verdict and log.
    ///
    /// A run that exhausts its fuel (a hang, in the paper's terms) counts
    /// as invalid, as does one that panics (the panic is caught here).
    pub fn run(&self, input: &[u8]) -> Execution {
        let (verdict, log) = self.exec(input, self.entry, FullLog::default());
        Execution {
            valid: verdict.is_accept(),
            error: verdict.error(),
            verdict,
            log,
        }
    }

    /// Runs the subject with the [`CoverageOnly`] sink: verdict, branch
    /// coverage and EOF flag, nothing else.
    pub fn run_coverage(&self, input: &[u8]) -> CovExecution {
        match self.coverage_entry {
            Some(entry) => {
                let (verdict, cov) = self.exec(input, entry, CoverageOnly::default());
                CovExecution {
                    valid: verdict.is_accept(),
                    error: verdict.error(),
                    verdict,
                    cov,
                }
            }
            None => {
                let exec = self.run(input);
                CovExecution {
                    valid: exec.valid,
                    error: exec.error,
                    verdict: exec.verdict,
                    cov: exec.log.coverage_summary(),
                }
            }
        }
    }

    /// Runs the subject with the [`LastFailure`] sink: verdict plus the
    /// precomputed substitution-driver summary.
    pub fn run_last_failure(&self, input: &[u8]) -> FailureExecution {
        match self.last_failure_entry {
            Some(entry) => {
                let (verdict, failure) = self.exec(input, entry, LastFailure::default());
                FailureExecution {
                    valid: verdict.is_accept(),
                    error: verdict.error(),
                    verdict,
                    failure,
                }
            }
            None => {
                let exec = self.run(input);
                FailureExecution {
                    valid: exec.valid,
                    error: exec.error,
                    verdict: exec.verdict,
                    failure: exec.log.failure_summary(),
                }
            }
        }
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.name)
            .field("fuel", &self.fuel)
            .field("native_sinks", &self.has_native_sinks())
            .finish()
    }
}

/// Builds a [`Subject`] from a sink-generic parser entry point,
/// registering all three monomorphisations (full log, coverage only,
/// last failure):
///
/// ```
/// use pdf_runtime::{instrument_subject, lit, EventSink, ExecCtx, ParseError};
///
/// fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
///
/// let subject = instrument_subject!("bang", parse);
/// assert!(subject.has_native_sinks());
/// assert!(subject.run_coverage(b"!").valid);
/// ```
#[macro_export]
macro_rules! instrument_subject {
    ($name:expr, $entry:ident) => {
        $crate::Subject::new($name, $entry::<$crate::FullLog>)
            .with_coverage_entry($entry::<$crate::CoverageOnly>)
            .with_last_failure_entry($entry::<$crate::LastFailure>)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cov, lit};

    fn accept_a<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
        if !lit!(ctx, b'a') {
            return Err(ctx.reject("want a"));
        }
        ctx.expect_end()
    }

    fn spin(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        while ctx.tick() {}
        Ok(())
    }

    #[test]
    fn run_valid_and_invalid() {
        let s = Subject::new("a", accept_a);
        let ok = s.run(b"a");
        assert!(ok.valid);
        assert!(ok.error.is_none());
        let bad = s.run(b"b");
        assert!(!bad.valid);
        assert_eq!(bad.error.as_deref(), Some("want a"));
    }

    #[test]
    fn runs_are_independent() {
        let s = Subject::new("a", accept_a);
        let first = s.run(b"b");
        let second = s.run(b"b");
        assert_eq!(first.log.cmp_count(), second.log.cmp_count());
    }

    #[test]
    fn hang_counts_as_invalid() {
        let s = Subject::new("spin", spin).with_fuel(100);
        let e = s.run(b"x");
        assert!(!e.valid);
        assert!(e.error.unwrap().contains("hang"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Subject::new("a", accept_a);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn instrumented_subject_has_native_sinks() {
        let s = instrument_subject!("a", accept_a);
        assert!(s.has_native_sinks());
        assert!(!Subject::new("a", accept_a).has_native_sinks());
    }

    #[test]
    fn native_and_emulated_summaries_agree() {
        let native = instrument_subject!("a", accept_a);
        let emulated = Subject::new("a", accept_a);
        for input in [&b""[..], b"a", b"b", b"ab"] {
            let n = native.run_coverage(input);
            let e = emulated.run_coverage(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.cov, e.cov, "coverage mismatch on {input:?}");
            let n = native.run_last_failure(input);
            let e = emulated.run_last_failure(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.failure, e.failure, "failure mismatch on {input:?}");
        }
    }

    #[test]
    fn hang_verdict_matches_across_sinks() {
        fn spin_generic<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            while ctx.tick() {}
            Ok(())
        }
        let s = instrument_subject!("spin", spin_generic).with_fuel(50);
        assert!(!s.run(b"x").valid);
        assert!(!s.run_coverage(b"x").valid);
        assert!(!s.run_last_failure(b"x").valid);
    }

    #[test]
    fn hang_message_is_uniform_across_sinks() {
        // satellite: run_coverage / run_last_failure must report fuel
        // exhaustion exactly like run — including when the parser
        // technically "rejected" after its reads were starved
        fn starved<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            while ctx.tick() {}
            Err(ctx.reject("spurious reject after starvation"))
        }
        let s = instrument_subject!("starved", starved).with_fuel(25);
        let full = s.run(b"x");
        let cov = s.run_coverage(b"x");
        let lf = s.run_last_failure(b"x");
        for (error, verdict) in [
            (&full.error, &full.verdict),
            (&cov.error, &cov.verdict),
            (&lf.error, &lf.verdict),
        ] {
            assert_eq!(error.as_deref(), Some("hang: fuel exhausted"));
            assert_eq!(*verdict, Verdict::Hang);
        }
    }

    #[test]
    fn panicking_subject_yields_crash_verdict() {
        fn boom<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            if lit!(ctx, b'a') {
                panic!("subject exploded");
            }
            ctx.expect_end()
        }
        let s = instrument_subject!("boom", boom);
        let e = s.run(b"a");
        assert!(!e.valid);
        let Verdict::Crash {
            ref panic_msg,
            dedup_key,
        } = e.verdict
        else {
            panic!("expected crash, got {:?}", e.verdict);
        };
        assert_eq!(panic_msg, "subject exploded");
        assert_eq!(e.error.as_deref(), Some("crash: subject exploded"));
        // the same crash via every sink carries the same dedup key
        let cov = s.run_coverage(b"a");
        let lf = s.run_last_failure(b"a");
        for v in [&cov.verdict, &lf.verdict] {
            let Verdict::Crash { dedup_key: k, .. } = v else {
                panic!("expected crash, got {v:?}");
            };
            assert_eq!(*k, dedup_key);
        }
        // the non-panicking path still works after a caught crash
        assert!(!s.run(b"b").valid);
        assert!(!s.run(b"b").verdict.is_crash());
    }

    #[test]
    fn distinct_panic_sites_have_distinct_dedup_keys() {
        fn two_ways<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            if lit!(ctx, b'1') {
                cov!(ctx);
                panic!("path one");
            }
            if lit!(ctx, b'2') {
                cov!(ctx);
                panic!("path two");
            }
            ctx.expect_end()
        }
        let s = instrument_subject!("two-ways", two_ways);
        let key = |input: &[u8]| match s.run(input).verdict {
            Verdict::Crash { dedup_key, .. } => dedup_key,
            v => panic!("expected crash, got {v:?}"),
        };
        assert_ne!(key(b"1"), key(b"2"));
        // same site, same approach: stable key
        assert_eq!(key(b"1"), key(b"1"));
    }

    #[test]
    fn exec_chokepoint_records_metrics() {
        let reg = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(std::sync::Arc::clone(&reg));
        let s = instrument_subject!("a", accept_a);
        s.run(b"a"); // accept
        s.run_coverage(b"b"); // reject, native sink
        s.run_last_failure(b"ab"); // reject, native sink
        let hang = Subject::new("spin", spin).with_fuel(10);
        hang.run(b"x");
        assert_eq!(reg.execs.get(), 4);
        assert_eq!(reg.accepts.get(), 1);
        assert_eq!(reg.rejects.get(), 2);
        assert_eq!(reg.hangs.get(), 1);
        assert_eq!(reg.input_len.count(), 4);
        assert_eq!(reg.exec_latency_ns.count(), 4);
        assert!(reg.snapshot().check_identities().is_ok());
    }

    #[test]
    fn verdict_error_messages() {
        assert_eq!(Verdict::Accept.error(), None);
        assert!(Verdict::Accept.is_accept());
        assert_eq!(
            Verdict::Reject {
                msg: "nope".to_string()
            }
            .error()
            .as_deref(),
            Some("nope")
        );
        assert!(Verdict::Hang.is_hang());
        let crash = Verdict::Crash {
            panic_msg: "kaboom".to_string(),
            dedup_key: 7,
        };
        assert!(crash.is_crash());
        assert_eq!(crash.error().as_deref(), Some("crash: kaboom"));
    }
}

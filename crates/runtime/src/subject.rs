//! Subjects: instrumented programs under test.

use std::fmt;

use crate::ctx::{ExecCtx, ParseError, DEFAULT_FUEL};
use crate::events::ExecLog;

/// The type of an instrumented parser entry point.
pub type SubjectFn = fn(&mut ExecCtx) -> Result<(), ParseError>;

/// The result of running a subject on one input: the accept/reject verdict
/// (the paper's process exit code) plus the instrumentation log.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// The recorded event streams.
    pub log: ExecLog,
}

/// An instrumented program under test.
///
/// Wraps a parser entry point together with a display name; each call to
/// [`run`](Subject::run) executes the parser in a fresh [`ExecCtx`], so
/// runs are independent and deterministic.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject};
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
/// let s = Subject::new("bang", p);
/// assert!(s.run(b"!").valid);
/// assert!(!s.run(b"?").valid);
/// ```
#[derive(Clone, Copy)]
pub struct Subject {
    name: &'static str,
    entry: SubjectFn,
    fuel: u64,
}

impl Subject {
    /// Creates a subject with the default fuel budget.
    pub fn new(name: &'static str, entry: SubjectFn) -> Self {
        Subject {
            name,
            entry,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the per-run fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The subject's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs the subject on `input`, returning verdict and log.
    ///
    /// A run that exhausts its fuel (a hang, in the paper's terms) counts
    /// as invalid.
    pub fn run(&self, input: &[u8]) -> Execution {
        let mut ctx = ExecCtx::with_fuel(input, self.fuel);
        let result = (self.entry)(&mut ctx);
        let hung = ctx.exhausted();
        let log = ctx.into_log();
        match result {
            Ok(()) if !hung => Execution {
                valid: true,
                error: None,
                log,
            },
            Ok(()) => Execution {
                valid: false,
                error: Some("hang: fuel exhausted".to_string()),
                log,
            },
            Err(e) => Execution {
                valid: false,
                error: Some(e.message().to_string()),
                log,
            },
        }
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.name)
            .field("fuel", &self.fuel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit;

    fn accept_a(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        if !lit!(ctx, b'a') {
            return Err(ctx.reject("want a"));
        }
        ctx.expect_end()
    }

    fn spin(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        while ctx.tick() {}
        Ok(())
    }

    #[test]
    fn run_valid_and_invalid() {
        let s = Subject::new("a", accept_a);
        let ok = s.run(b"a");
        assert!(ok.valid);
        assert!(ok.error.is_none());
        let bad = s.run(b"b");
        assert!(!bad.valid);
        assert_eq!(bad.error.as_deref(), Some("want a"));
    }

    #[test]
    fn runs_are_independent() {
        let s = Subject::new("a", accept_a);
        let first = s.run(b"b");
        let second = s.run(b"b");
        assert_eq!(first.log.cmp_count(), second.log.cmp_count());
    }

    #[test]
    fn hang_counts_as_invalid() {
        let s = Subject::new("spin", spin).with_fuel(100);
        let e = s.run(b"x");
        assert!(!e.valid);
        assert!(e.error.unwrap().contains("hang"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Subject::new("a", accept_a);
        assert!(!format!("{s:?}").is_empty());
    }
}

//! Subjects: instrumented programs under test.

use std::fmt;

use crate::ctx::{ExecCtx, ParseError, DEFAULT_FUEL};
use crate::events::ExecLog;
use crate::sink::{CovSummary, CoverageOnly, EventSink, FailureSummary, FullLog, LastFailure};

/// The type of an instrumented parser entry point (full-log sink).
pub type SubjectFn = fn(&mut ExecCtx) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the coverage-only sink.
pub type CoverageSubjectFn = fn(&mut ExecCtx<CoverageOnly>) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the last-failure sink.
pub type LastFailureSubjectFn = fn(&mut ExecCtx<LastFailure>) -> Result<(), ParseError>;

/// The result of running a subject on one input: the accept/reject verdict
/// (the paper's process exit code) plus the instrumentation log.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// The recorded event streams.
    pub log: ExecLog,
}

/// The result of a coverage-only run.
#[derive(Debug, Clone)]
pub struct CovExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// The coverage summary of the run.
    pub cov: CovSummary,
}

/// The result of a last-failure run.
#[derive(Debug, Clone)]
pub struct FailureExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// The failure summary of the run.
    pub failure: FailureSummary,
}

/// An instrumented program under test.
///
/// Wraps a parser entry point together with a display name; each call to
/// [`run`](Subject::run) executes the parser in a fresh [`ExecCtx`], so
/// runs are independent and deterministic.
///
/// Subjects registered through [`instrument_subject!`](crate::instrument_subject)
/// additionally carry entry points monomorphised for the streaming
/// [`CoverageOnly`] and [`LastFailure`] sinks, making
/// [`run_coverage`](Subject::run_coverage) and
/// [`run_last_failure`](Subject::run_last_failure) allocation-lean. For
/// subjects built with plain [`Subject::new`], both fall back to a
/// full-log run reduced after the fact — same summaries, full-log cost.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject};
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
/// let s = Subject::new("bang", p);
/// assert!(s.run(b"!").valid);
/// assert!(!s.run(b"?").valid);
/// ```
#[derive(Clone, Copy)]
pub struct Subject {
    name: &'static str,
    entry: SubjectFn,
    coverage_entry: Option<CoverageSubjectFn>,
    last_failure_entry: Option<LastFailureSubjectFn>,
    fuel: u64,
}

fn verdict(result: Result<(), ParseError>, hung: bool) -> (bool, Option<String>) {
    match result {
        Ok(()) if !hung => (true, None),
        Ok(()) => (false, Some("hang: fuel exhausted".to_string())),
        Err(e) => (false, Some(e.message().to_string())),
    }
}

impl Subject {
    /// Creates a subject with the default fuel budget.
    pub fn new(name: &'static str, entry: SubjectFn) -> Self {
        Subject {
            name,
            entry,
            coverage_entry: None,
            last_failure_entry: None,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the per-run fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Registers a coverage-only entry point (the same parser
    /// monomorphised over [`CoverageOnly`]).
    pub fn with_coverage_entry(mut self, entry: CoverageSubjectFn) -> Self {
        self.coverage_entry = Some(entry);
        self
    }

    /// Registers a last-failure entry point (the same parser
    /// monomorphised over [`LastFailure`]).
    pub fn with_last_failure_entry(mut self, entry: LastFailureSubjectFn) -> Self {
        self.last_failure_entry = Some(entry);
        self
    }

    /// The subject's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether native (streaming-sink) entry points are registered.
    pub fn has_native_sinks(&self) -> bool {
        self.coverage_entry.is_some() && self.last_failure_entry.is_some()
    }

    fn exec<S: EventSink>(
        &self,
        input: &[u8],
        entry: fn(&mut ExecCtx<S>) -> Result<(), ParseError>,
        sink: S,
    ) -> (bool, Option<String>, S::Summary) {
        let mut ctx = ExecCtx::with_sink(input, self.fuel, sink);
        let result = entry(&mut ctx);
        let hung = ctx.exhausted();
        let (valid, error) = verdict(result, hung);
        (valid, error, ctx.finish())
    }

    /// Runs the subject on `input`, returning verdict and log.
    ///
    /// A run that exhausts its fuel (a hang, in the paper's terms) counts
    /// as invalid.
    pub fn run(&self, input: &[u8]) -> Execution {
        let (valid, error, log) = self.exec(input, self.entry, FullLog::default());
        Execution { valid, error, log }
    }

    /// Runs the subject with the [`CoverageOnly`] sink: verdict, branch
    /// coverage and EOF flag, nothing else.
    pub fn run_coverage(&self, input: &[u8]) -> CovExecution {
        match self.coverage_entry {
            Some(entry) => {
                let (valid, error, cov) = self.exec(input, entry, CoverageOnly::default());
                CovExecution { valid, error, cov }
            }
            None => {
                let exec = self.run(input);
                CovExecution {
                    valid: exec.valid,
                    error: exec.error,
                    cov: exec.log.coverage_summary(),
                }
            }
        }
    }

    /// Runs the subject with the [`LastFailure`] sink: verdict plus the
    /// precomputed substitution-driver summary.
    pub fn run_last_failure(&self, input: &[u8]) -> FailureExecution {
        match self.last_failure_entry {
            Some(entry) => {
                let (valid, error, failure) = self.exec(input, entry, LastFailure::default());
                FailureExecution {
                    valid,
                    error,
                    failure,
                }
            }
            None => {
                let exec = self.run(input);
                FailureExecution {
                    valid: exec.valid,
                    error: exec.error,
                    failure: exec.log.failure_summary(),
                }
            }
        }
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.name)
            .field("fuel", &self.fuel)
            .field("native_sinks", &self.has_native_sinks())
            .finish()
    }
}

/// Builds a [`Subject`] from a sink-generic parser entry point,
/// registering all three monomorphisations (full log, coverage only,
/// last failure):
///
/// ```
/// use pdf_runtime::{instrument_subject, lit, EventSink, ExecCtx, ParseError};
///
/// fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
///
/// let subject = instrument_subject!("bang", parse);
/// assert!(subject.has_native_sinks());
/// assert!(subject.run_coverage(b"!").valid);
/// ```
#[macro_export]
macro_rules! instrument_subject {
    ($name:expr, $entry:ident) => {
        $crate::Subject::new($name, $entry::<$crate::FullLog>)
            .with_coverage_entry($entry::<$crate::CoverageOnly>)
            .with_last_failure_entry($entry::<$crate::LastFailure>)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit;

    fn accept_a<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
        if !lit!(ctx, b'a') {
            return Err(ctx.reject("want a"));
        }
        ctx.expect_end()
    }

    fn spin(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        while ctx.tick() {}
        Ok(())
    }

    #[test]
    fn run_valid_and_invalid() {
        let s = Subject::new("a", accept_a);
        let ok = s.run(b"a");
        assert!(ok.valid);
        assert!(ok.error.is_none());
        let bad = s.run(b"b");
        assert!(!bad.valid);
        assert_eq!(bad.error.as_deref(), Some("want a"));
    }

    #[test]
    fn runs_are_independent() {
        let s = Subject::new("a", accept_a);
        let first = s.run(b"b");
        let second = s.run(b"b");
        assert_eq!(first.log.cmp_count(), second.log.cmp_count());
    }

    #[test]
    fn hang_counts_as_invalid() {
        let s = Subject::new("spin", spin).with_fuel(100);
        let e = s.run(b"x");
        assert!(!e.valid);
        assert!(e.error.unwrap().contains("hang"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Subject::new("a", accept_a);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn instrumented_subject_has_native_sinks() {
        let s = instrument_subject!("a", accept_a);
        assert!(s.has_native_sinks());
        assert!(!Subject::new("a", accept_a).has_native_sinks());
    }

    #[test]
    fn native_and_emulated_summaries_agree() {
        let native = instrument_subject!("a", accept_a);
        let emulated = Subject::new("a", accept_a);
        for input in [&b""[..], b"a", b"b", b"ab"] {
            let n = native.run_coverage(input);
            let e = emulated.run_coverage(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.cov, e.cov, "coverage mismatch on {input:?}");
            let n = native.run_last_failure(input);
            let e = emulated.run_last_failure(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.failure, e.failure, "failure mismatch on {input:?}");
        }
    }

    #[test]
    fn hang_verdict_matches_across_sinks() {
        fn spin_generic<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            while ctx.tick() {}
            Ok(())
        }
        let s = instrument_subject!("spin", spin_generic).with_fuel(50);
        assert!(!s.run(b"x").valid);
        assert!(!s.run_coverage(b"x").valid);
        assert!(!s.run_last_failure(b"x").valid);
    }
}

//! Subjects: instrumented programs under test.

use std::fmt;

use crate::arena::ExecArena;
use crate::ctx::{ExecCtx, ParseError, DEFAULT_FUEL};
use crate::events::ExecLog;
use crate::isolate::catch_silent;
use crate::sink::{
    CovSummary, CoverageOnly, EventSink, FailureSummary, FastFailure, FastSummary, FullLog,
    LastFailure,
};

/// The type of an instrumented parser entry point (full-log sink).
pub type SubjectFn = fn(&mut ExecCtx) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the coverage-only sink.
pub type CoverageSubjectFn = fn(&mut ExecCtx<CoverageOnly>) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the last-failure sink.
pub type LastFailureSubjectFn = fn(&mut ExecCtx<LastFailure>) -> Result<(), ParseError>;

/// A parser entry point monomorphised for the fast-failure sink.
pub type FastFailureSubjectFn = fn(&mut ExecCtx<FastFailure>) -> Result<(), ParseError>;

/// How one subject execution ended — the paper's process exit status,
/// refined into a four-point lattice. Accept and reject are the normal
/// parser outcomes; a hang is a run that exhausted its fuel budget (the
/// in-process analogue of a timeout kill); a crash is a panic that
/// unwound out of the subject and was caught at the
/// [`Subject`] chokepoint.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject, Verdict};
///
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'a') {
///         return Err(ctx.reject("want 'a'"));
///     }
///     if ctx.peek().is_some() {
///         panic!("trailing input");
///     }
///     Ok(())
/// }
/// let s = Subject::new("a", p);
/// assert_eq!(s.run(b"a").verdict, Verdict::Accept);
/// assert!(matches!(s.run(b"b").verdict, Verdict::Reject { .. }));
/// // the panic is caught at the chokepoint; the campaign survives
/// assert!(matches!(s.run(b"ab").verdict, Verdict::Crash { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The input was accepted as valid.
    Accept,
    /// The parser rejected the input.
    Reject {
        /// The parser's rejection message. A [`Cow`](std::borrow::Cow)
        /// so the (near-universal) static-literal rejection costs no
        /// allocation per execution.
        msg: std::borrow::Cow<'static, str>,
    },
    /// The run exhausted its fuel budget before finishing. Takes
    /// precedence over accept/reject: whatever the parser returned after
    /// running out of fuel is an artifact of the starved reads, not a
    /// judgement about the input.
    Hang,
    /// The subject panicked; the panic was caught and the campaign
    /// continues.
    Crash {
        /// The panic message.
        panic_msg: String,
        /// Stable crash fingerprint: FNV-1a over the tail of recorded
        /// sites (see [`ExecCtx::crash_dedup_key`]). Two crashes with
        /// equal keys died at the same place via the same approach.
        dedup_key: u64,
    },
}

impl Verdict {
    /// Whether the input was accepted.
    pub fn is_accept(&self) -> bool {
        matches!(self, Verdict::Accept)
    }

    /// Whether the run exhausted its fuel.
    pub fn is_hang(&self) -> bool {
        matches!(self, Verdict::Hang)
    }

    /// Whether the subject panicked.
    pub fn is_crash(&self) -> bool {
        matches!(self, Verdict::Crash { .. })
    }

    /// The failure message for non-accepting verdicts, `None` on accept.
    /// Hangs and crashes carry stable prefixes (`"hang: "` / `"crash: "`)
    /// so downstream triage can classify from the message alone.
    pub fn error(&self) -> Option<String> {
        match self {
            Verdict::Accept => None,
            Verdict::Reject { msg } => Some(msg.clone().into_owned()),
            Verdict::Hang => Some("hang: fuel exhausted".to_string()),
            Verdict::Crash { panic_msg, .. } => Some(format!("crash: {panic_msg}")),
        }
    }
}

/// The result of running a subject on one input: the verdict (the
/// paper's process exit code) plus the instrumentation log.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The recorded event streams.
    pub log: ExecLog,
}

/// The result of a coverage-only run.
#[derive(Debug, Clone)]
pub struct CovExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The coverage summary of the run.
    pub cov: CovSummary,
}

/// The result of a last-failure run.
#[derive(Debug, Clone)]
pub struct FailureExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// Rejection message, when invalid.
    pub error: Option<String>,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The failure summary of the run.
    pub failure: FailureSummary,
}

/// The result of a fast-failure run (the cheap tier).
///
/// Unlike the other execution results there is no eager `error` field:
/// the fast tier exists to keep per-execution cost near zero, and
/// cloning the rejection message out of the verdict would put one
/// allocation back on every rejected execution. Use
/// [`error`](FastExecution::error) when a message is actually needed.
#[derive(Debug, Clone)]
pub struct FastExecution {
    /// Whether the input was accepted as valid.
    pub valid: bool,
    /// How the run ended (accept / reject / hang / crash).
    pub verdict: Verdict,
    /// The fast summary of the run.
    pub fast: FastSummary,
}

impl FastExecution {
    /// Rejection message, when invalid — cloned out of the verdict on
    /// demand rather than on every execution.
    pub fn error(&self) -> Option<String> {
        self.verdict.error()
    }
}

/// An instrumented program under test.
///
/// Wraps a parser entry point together with a display name; each call to
/// [`run`](Subject::run) executes the parser in a fresh [`ExecCtx`], so
/// runs are independent and deterministic.
///
/// Subjects registered through [`instrument_subject!`](crate::instrument_subject)
/// additionally carry entry points monomorphised for the streaming
/// [`CoverageOnly`] and [`LastFailure`] sinks, making
/// [`run_coverage`](Subject::run_coverage) and
/// [`run_last_failure`](Subject::run_last_failure) allocation-lean. For
/// subjects built with plain [`Subject::new`], both fall back to a
/// full-log run reduced after the fact — same summaries, full-log cost.
///
/// # Example
///
/// ```
/// use pdf_runtime::{lit, ExecCtx, ParseError, Subject};
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
/// let s = Subject::new("bang", p);
/// assert!(s.run(b"!").valid);
/// assert!(!s.run(b"?").valid);
/// ```
#[derive(Clone, Copy)]
pub struct Subject {
    name: &'static str,
    entry: SubjectFn,
    coverage_entry: Option<CoverageSubjectFn>,
    last_failure_entry: Option<LastFailureSubjectFn>,
    fast_failure_entry: Option<FastFailureSubjectFn>,
    fuel: u64,
}

fn classify(
    result: Result<Result<(), ParseError>, String>,
    ctx_hung: bool,
    dedup_key: u64,
) -> Verdict {
    match result {
        Err(panic_msg) => Verdict::Crash {
            panic_msg,
            dedup_key,
        },
        Ok(_) if ctx_hung => Verdict::Hang,
        Ok(Ok(())) => Verdict::Accept,
        Ok(Err(e)) => Verdict::Reject {
            msg: e.into_message(),
        },
    }
}

impl Subject {
    /// Creates a subject with the default fuel budget.
    pub fn new(name: &'static str, entry: SubjectFn) -> Self {
        Subject {
            name,
            entry,
            coverage_entry: None,
            last_failure_entry: None,
            fast_failure_entry: None,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the per-run fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Registers a coverage-only entry point (the same parser
    /// monomorphised over [`CoverageOnly`]).
    pub fn with_coverage_entry(mut self, entry: CoverageSubjectFn) -> Self {
        self.coverage_entry = Some(entry);
        self
    }

    /// Registers a last-failure entry point (the same parser
    /// monomorphised over [`LastFailure`]).
    pub fn with_last_failure_entry(mut self, entry: LastFailureSubjectFn) -> Self {
        self.last_failure_entry = Some(entry);
        self
    }

    /// Registers a fast-failure entry point (the same parser
    /// monomorphised over [`FastFailure`]).
    pub fn with_fast_failure_entry(mut self, entry: FastFailureSubjectFn) -> Self {
        self.fast_failure_entry = Some(entry);
        self
    }

    /// The subject's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether native (streaming-sink) entry points are registered.
    pub fn has_native_sinks(&self) -> bool {
        self.coverage_entry.is_some() && self.last_failure_entry.is_some()
    }

    /// The full-log entry point. Exposed so wrapper subjects (e.g. the
    /// chaos layer in `pdf-subjects`) can delegate to the inner parser.
    pub fn entry(&self) -> SubjectFn {
        self.entry
    }

    /// The coverage-only entry point, when registered.
    pub fn coverage_entry(&self) -> Option<CoverageSubjectFn> {
        self.coverage_entry
    }

    /// The last-failure entry point, when registered.
    pub fn last_failure_entry(&self) -> Option<LastFailureSubjectFn> {
        self.last_failure_entry
    }

    /// The fast-failure entry point, when registered.
    pub fn fast_failure_entry(&self) -> Option<FastFailureSubjectFn> {
        self.fast_failure_entry
    }

    /// The per-run fuel budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The single execution chokepoint (with [`exec_ctx`](Self::exec_ctx)
    /// as its body): every run of every sink flavour — including the
    /// batch executors — goes through here, so panic isolation (the
    /// subject runs under [`catch_silent`]), the hang/crash
    /// classification and the metrics instrumentation are uniform across
    /// [`run`](Self::run), [`run_coverage`](Self::run_coverage),
    /// [`run_last_failure`](Self::run_last_failure),
    /// [`run_fast_failure`](Self::run_fast_failure) and the
    /// `exec_batch_*` family.
    ///
    /// Metrics (exec count, verdict class, latency, input length) go to
    /// the thread's installed `pdf-obs` registry, if any. The clock is
    /// read only when a registry is installed, and nothing recorded here
    /// flows back into the run — metrics are observe-only by
    /// construction.
    fn exec<S: EventSink>(
        &self,
        input: &[u8],
        entry: fn(&mut ExecCtx<S>) -> Result<(), ParseError>,
        sink: S,
    ) -> (Verdict, S::Summary) {
        let (verdict, ctx) = self.exec_ctx(input.to_vec(), entry, sink);
        (verdict, ctx.finish())
    }

    /// The chokepoint body over an owned input buffer, returning the
    /// context unfinished so the batch executors can recycle its input
    /// buffer and sink. All metrics are recorded here, before the sink
    /// is summarised.
    fn exec_ctx<S: EventSink>(
        &self,
        input: Vec<u8>,
        entry: fn(&mut ExecCtx<S>) -> Result<(), ParseError>,
        sink: S,
    ) -> (Verdict, ExecCtx<S>) {
        let start = pdf_obs::enabled().then(std::time::Instant::now);
        let input_len = input.len();
        let mut ctx = ExecCtx::with_sink_owned(input, self.fuel, sink);
        let result = catch_silent(|| entry(&mut ctx));
        let verdict = classify(result, ctx.exhausted(), ctx.crash_dedup_key());
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            pdf_obs::record(|m| {
                m.execs.inc();
                match &verdict {
                    Verdict::Accept => m.accepts.inc(),
                    Verdict::Reject { .. } => m.rejects.inc(),
                    Verdict::Hang => m.hangs.inc(),
                    Verdict::Crash { .. } => m.crashes.inc(),
                }
                m.exec_latency_ns.observe(ns);
                m.input_len.observe(input_len as u64);
            });
        }
        (verdict, ctx)
    }

    /// Runs the subject on `input`, returning verdict and log.
    ///
    /// A run that exhausts its fuel (a hang, in the paper's terms) counts
    /// as invalid, as does one that panics (the panic is caught here).
    pub fn run(&self, input: &[u8]) -> Execution {
        let (verdict, log) = self.exec(input, self.entry, FullLog::default());
        Execution {
            valid: verdict.is_accept(),
            error: verdict.error(),
            verdict,
            log,
        }
    }

    /// Runs the subject with the [`CoverageOnly`] sink: verdict, branch
    /// coverage and EOF flag, nothing else.
    pub fn run_coverage(&self, input: &[u8]) -> CovExecution {
        match self.coverage_entry {
            Some(entry) => {
                let (verdict, cov) = self.exec(input, entry, CoverageOnly::default());
                CovExecution {
                    valid: verdict.is_accept(),
                    error: verdict.error(),
                    verdict,
                    cov,
                }
            }
            None => {
                let exec = self.run(input);
                CovExecution {
                    valid: exec.valid,
                    error: exec.error,
                    verdict: exec.verdict,
                    cov: exec.log.coverage_summary(),
                }
            }
        }
    }

    /// Runs the subject with the [`LastFailure`] sink: verdict plus the
    /// precomputed substitution-driver summary.
    pub fn run_last_failure(&self, input: &[u8]) -> FailureExecution {
        match self.last_failure_entry {
            Some(entry) => {
                let (verdict, failure) = self.exec(input, entry, LastFailure::default());
                FailureExecution {
                    valid: verdict.is_accept(),
                    error: verdict.error(),
                    verdict,
                    failure,
                }
            }
            None => {
                let exec = self.run(input);
                FailureExecution {
                    valid: exec.valid,
                    error: exec.error,
                    verdict: exec.verdict,
                    failure: exec.log.failure_summary(),
                }
            }
        }
    }

    /// Runs the subject with the [`FastFailure`] sink: verdict, rejection
    /// index and last comparison, nothing else. Falls back to a full-log
    /// run reduced via [`ExecLog::fast_summary`] for subjects without a
    /// native fast-failure entry point.
    pub fn run_fast_failure(&self, input: &[u8]) -> FastExecution {
        match self.fast_failure_entry {
            Some(entry) => {
                let (verdict, fast) = self.exec(input, entry, FastFailure::default());
                FastExecution {
                    valid: verdict.is_accept(),
                    verdict,
                    fast,
                }
            }
            None => {
                let exec = self.run(input);
                FastExecution {
                    valid: exec.valid,
                    verdict: exec.verdict,
                    fast: exec.log.fast_summary(),
                }
            }
        }
    }

    /// [`run_fast_failure`](Self::run_fast_failure) through an
    /// [`ExecArena`]: the input copy reuses the arena's buffer. Summary
    /// and verdict are identical to the arena-less run.
    pub fn run_fast_failure_arena(&self, arena: &mut ExecArena, input: &[u8]) -> FastExecution {
        let Some(entry) = self.fast_failure_entry else {
            return self.run_fast_failure(input);
        };
        let mut buf = std::mem::take(&mut arena.input_buf);
        buf.clear();
        buf.extend_from_slice(input);
        let (verdict, ctx) = self.exec_ctx(buf, entry, FastFailure::default());
        let (buf, sink) = ctx.into_parts();
        arena.input_buf = buf;
        FastExecution {
            valid: verdict.is_accept(),
            verdict,
            fast: sink.finish(),
        }
    }

    /// [`run_last_failure`](Self::run_last_failure) through an
    /// [`ExecArena`]: the input copy and the sink's internal vectors all
    /// reuse the arena's buffers. Summary and verdict are identical to
    /// the arena-less run (the recycled-sink property tests hold the two
    /// paths equal).
    pub fn run_last_failure_arena(&self, arena: &mut ExecArena, input: &[u8]) -> FailureExecution {
        let Some(entry) = self.last_failure_entry else {
            return self.run_last_failure(input);
        };
        let mut buf = std::mem::take(&mut arena.input_buf);
        buf.clear();
        buf.extend_from_slice(input);
        let sink = LastFailure::recycled(arena);
        let (verdict, ctx) = self.exec_ctx(buf, entry, sink);
        let (buf, sink) = ctx.into_parts();
        arena.input_buf = buf;
        let failure = sink.finish_into(arena);
        FailureExecution {
            valid: verdict.is_accept(),
            error: verdict.error(),
            verdict,
            failure,
        }
    }

    /// Executes every candidate in `inputs` under the [`FastFailure`]
    /// sink, amortising input copies, sink wiring and result storage
    /// through `arena`. Returns the per-candidate results in input
    /// order; the slice lives in the arena and is overwritten by the
    /// next batch call.
    ///
    /// Each candidate still passes through the metrics chokepoint
    /// individually, so exec counters and verdict identities are
    /// unchanged relative to N single runs.
    pub fn exec_batch_fast<'a, I: AsRef<[u8]>>(
        &self,
        arena: &'a mut ExecArena,
        inputs: &[I],
    ) -> &'a [FastExecution] {
        let mut results = std::mem::take(&mut arena.fast_results);
        results.clear();
        results.reserve(inputs.len());
        match self.fast_failure_entry {
            Some(entry) => {
                let mut buf = std::mem::take(&mut arena.input_buf);
                for input in inputs {
                    buf.clear();
                    buf.extend_from_slice(input.as_ref());
                    let (verdict, ctx) = self.exec_ctx(buf, entry, FastFailure::default());
                    let (ret, sink) = ctx.into_parts();
                    buf = ret;
                    results.push(FastExecution {
                        valid: verdict.is_accept(),
                        verdict,
                        fast: sink.finish(),
                    });
                }
                arena.input_buf = buf;
            }
            None => {
                // full-log fallback, still recycling the event buffer
                for input in inputs {
                    let sink = FullLog::recycled(arena);
                    let mut buf = std::mem::take(&mut arena.input_buf);
                    buf.clear();
                    buf.extend_from_slice(input.as_ref());
                    let (verdict, ctx) = self.exec_ctx(buf, self.entry, sink);
                    let (ret, sink) = ctx.into_parts();
                    arena.input_buf = ret;
                    let log = sink.finish();
                    let fast = log.fast_summary();
                    arena.recycle_log(log);
                    results.push(FastExecution {
                        valid: verdict.is_accept(),
                        verdict,
                        fast,
                    });
                }
            }
        }
        arena.fast_results = results;
        &arena.fast_results
    }

    /// Executes every candidate in `inputs` under the [`LastFailure`]
    /// sink through `arena` — the full-instrumentation counterpart of
    /// [`exec_batch_fast`](Self::exec_batch_fast), with the same
    /// amortisation and the same result-slice lifetime.
    pub fn exec_batch_failure<'a, I: AsRef<[u8]>>(
        &self,
        arena: &'a mut ExecArena,
        inputs: &[I],
    ) -> &'a [FailureExecution] {
        let mut results = std::mem::take(&mut arena.failure_results);
        results.clear();
        results.reserve(inputs.len());
        for input in inputs {
            results.push(self.run_last_failure_arena(arena, input.as_ref()));
        }
        arena.failure_results = results;
        &arena.failure_results
    }
}

impl fmt::Debug for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subject")
            .field("name", &self.name)
            .field("fuel", &self.fuel)
            .field("native_sinks", &self.has_native_sinks())
            .finish()
    }
}

/// Builds a [`Subject`] from a sink-generic parser entry point,
/// registering all four monomorphisations (full log, coverage only,
/// last failure, fast failure):
///
/// ```
/// use pdf_runtime::{instrument_subject, lit, EventSink, ExecCtx, ParseError};
///
/// fn parse<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
///     if !lit!(ctx, b'!') { return Err(ctx.reject("want '!'")); }
///     ctx.expect_end()
/// }
///
/// let subject = instrument_subject!("bang", parse);
/// assert!(subject.has_native_sinks());
/// assert!(subject.run_coverage(b"!").valid);
/// assert!(subject.run_fast_failure(b"!").valid);
/// ```
#[macro_export]
macro_rules! instrument_subject {
    ($name:expr, $entry:ident) => {
        $crate::Subject::new($name, $entry::<$crate::FullLog>)
            .with_coverage_entry($entry::<$crate::CoverageOnly>)
            .with_last_failure_entry($entry::<$crate::LastFailure>)
            .with_fast_failure_entry($entry::<$crate::FastFailure>)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cov, lit};

    fn accept_a<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
        if !lit!(ctx, b'a') {
            return Err(ctx.reject("want a"));
        }
        ctx.expect_end()
    }

    fn spin(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        while ctx.tick() {}
        Ok(())
    }

    #[test]
    fn run_valid_and_invalid() {
        let s = Subject::new("a", accept_a);
        let ok = s.run(b"a");
        assert!(ok.valid);
        assert!(ok.error.is_none());
        let bad = s.run(b"b");
        assert!(!bad.valid);
        assert_eq!(bad.error.as_deref(), Some("want a"));
    }

    #[test]
    fn runs_are_independent() {
        let s = Subject::new("a", accept_a);
        let first = s.run(b"b");
        let second = s.run(b"b");
        assert_eq!(first.log.cmp_count(), second.log.cmp_count());
    }

    #[test]
    fn hang_counts_as_invalid() {
        let s = Subject::new("spin", spin).with_fuel(100);
        let e = s.run(b"x");
        assert!(!e.valid);
        assert!(e.error.unwrap().contains("hang"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Subject::new("a", accept_a);
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn instrumented_subject_has_native_sinks() {
        let s = instrument_subject!("a", accept_a);
        assert!(s.has_native_sinks());
        assert!(!Subject::new("a", accept_a).has_native_sinks());
    }

    #[test]
    fn native_and_emulated_summaries_agree() {
        let native = instrument_subject!("a", accept_a);
        let emulated = Subject::new("a", accept_a);
        for input in [&b""[..], b"a", b"b", b"ab"] {
            let n = native.run_coverage(input);
            let e = emulated.run_coverage(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.cov, e.cov, "coverage mismatch on {input:?}");
            let n = native.run_last_failure(input);
            let e = emulated.run_last_failure(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.failure, e.failure, "failure mismatch on {input:?}");
        }
    }

    #[test]
    fn fast_failure_native_and_emulated_agree() {
        let native = instrument_subject!("a", accept_a);
        let emulated = Subject::new("a", accept_a);
        for input in [&b""[..], b"a", b"b", b"ab"] {
            let n = native.run_fast_failure(input);
            let e = emulated.run_fast_failure(input);
            assert_eq!(n.valid, e.valid);
            assert_eq!(n.error(), e.error());
            assert_eq!(n.fast, e.fast, "fast summary mismatch on {input:?}");
        }
    }

    #[test]
    fn batch_results_match_single_runs() {
        let inputs: Vec<&[u8]> = vec![b"", b"a", b"b", b"ab", b"aa"];
        for s in [
            instrument_subject!("a", accept_a),
            Subject::new("a", accept_a),
        ] {
            let mut arena = crate::ExecArena::new();
            let fast = s.exec_batch_fast(&mut arena, &inputs).to_vec();
            assert_eq!(fast.len(), inputs.len());
            for (got, input) in fast.iter().zip(&inputs) {
                let single = s.run_fast_failure(input);
                assert_eq!(got.valid, single.valid, "input {input:?}");
                assert_eq!(got.error(), single.error(), "input {input:?}");
                assert_eq!(got.fast, single.fast, "input {input:?}");
            }
            let failure = s.exec_batch_failure(&mut arena, &inputs).to_vec();
            for (got, input) in failure.iter().zip(&inputs) {
                let single = s.run_last_failure(input);
                assert_eq!(got.valid, single.valid, "input {input:?}");
                assert_eq!(got.failure, single.failure, "input {input:?}");
            }
            // the accessors expose the latest batch
            assert_eq!(arena.failure_results().len(), inputs.len());
        }
    }

    #[test]
    fn arena_runs_match_plain_runs() {
        let s = instrument_subject!("a", accept_a);
        let mut arena = crate::ExecArena::new();
        for _ in 0..2 {
            for input in [&b""[..], b"a", b"b", b"ab"] {
                let a = s.run_last_failure_arena(&mut arena, input);
                let p = s.run_last_failure(input);
                assert_eq!(a.valid, p.valid);
                assert_eq!(a.failure, p.failure, "input {input:?}");
                let a = s.run_fast_failure_arena(&mut arena, input);
                let p = s.run_fast_failure(input);
                assert_eq!(a.fast, p.fast, "input {input:?}");
            }
        }
    }

    #[test]
    fn batch_execs_hit_the_metrics_chokepoint() {
        let reg = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(std::sync::Arc::clone(&reg));
        let s = instrument_subject!("a", accept_a);
        let inputs: Vec<&[u8]> = vec![b"a", b"b", b"ab"];
        let mut arena = crate::ExecArena::new();
        s.exec_batch_fast(&mut arena, &inputs);
        assert_eq!(reg.execs.get(), 3);
        assert_eq!(reg.accepts.get(), 1);
        assert_eq!(reg.rejects.get(), 2);
        s.exec_batch_failure(&mut arena, &inputs);
        assert_eq!(reg.execs.get(), 6);
        assert_eq!(reg.input_len.count(), 6);
        assert!(reg.snapshot().check_identities().is_ok());
    }

    #[test]
    fn hang_verdict_matches_across_sinks() {
        fn spin_generic<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            while ctx.tick() {}
            Ok(())
        }
        let s = instrument_subject!("spin", spin_generic).with_fuel(50);
        assert!(!s.run(b"x").valid);
        assert!(!s.run_coverage(b"x").valid);
        assert!(!s.run_last_failure(b"x").valid);
        assert!(!s.run_fast_failure(b"x").valid);
        assert_eq!(s.run_fast_failure(b"x").verdict, Verdict::Hang);
    }

    #[test]
    fn hang_message_is_uniform_across_sinks() {
        // satellite: run_coverage / run_last_failure must report fuel
        // exhaustion exactly like run — including when the parser
        // technically "rejected" after its reads were starved
        fn starved<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            while ctx.tick() {}
            Err(ctx.reject("spurious reject after starvation"))
        }
        let s = instrument_subject!("starved", starved).with_fuel(25);
        let full = s.run(b"x");
        let cov = s.run_coverage(b"x");
        let lf = s.run_last_failure(b"x");
        for (error, verdict) in [
            (&full.error, &full.verdict),
            (&cov.error, &cov.verdict),
            (&lf.error, &lf.verdict),
        ] {
            assert_eq!(error.as_deref(), Some("hang: fuel exhausted"));
            assert_eq!(*verdict, Verdict::Hang);
        }
    }

    #[test]
    fn panicking_subject_yields_crash_verdict() {
        fn boom<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            if lit!(ctx, b'a') {
                panic!("subject exploded");
            }
            ctx.expect_end()
        }
        let s = instrument_subject!("boom", boom);
        let e = s.run(b"a");
        assert!(!e.valid);
        let Verdict::Crash {
            ref panic_msg,
            dedup_key,
        } = e.verdict
        else {
            panic!("expected crash, got {:?}", e.verdict);
        };
        assert_eq!(panic_msg, "subject exploded");
        assert_eq!(e.error.as_deref(), Some("crash: subject exploded"));
        // the same crash via every sink carries the same dedup key
        let cov = s.run_coverage(b"a");
        let lf = s.run_last_failure(b"a");
        for v in [&cov.verdict, &lf.verdict] {
            let Verdict::Crash { dedup_key: k, .. } = v else {
                panic!("expected crash, got {v:?}");
            };
            assert_eq!(*k, dedup_key);
        }
        // the non-panicking path still works after a caught crash
        assert!(!s.run(b"b").valid);
        assert!(!s.run(b"b").verdict.is_crash());
    }

    #[test]
    fn distinct_panic_sites_have_distinct_dedup_keys() {
        fn two_ways<S: EventSink>(ctx: &mut ExecCtx<S>) -> Result<(), ParseError> {
            if lit!(ctx, b'1') {
                cov!(ctx);
                panic!("path one");
            }
            if lit!(ctx, b'2') {
                cov!(ctx);
                panic!("path two");
            }
            ctx.expect_end()
        }
        let s = instrument_subject!("two-ways", two_ways);
        let key = |input: &[u8]| match s.run(input).verdict {
            Verdict::Crash { dedup_key, .. } => dedup_key,
            v => panic!("expected crash, got {v:?}"),
        };
        assert_ne!(key(b"1"), key(b"2"));
        // same site, same approach: stable key
        assert_eq!(key(b"1"), key(b"1"));
    }

    #[test]
    fn exec_chokepoint_records_metrics() {
        let reg = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(std::sync::Arc::clone(&reg));
        let s = instrument_subject!("a", accept_a);
        s.run(b"a"); // accept
        s.run_coverage(b"b"); // reject, native sink
        s.run_last_failure(b"ab"); // reject, native sink
        let hang = Subject::new("spin", spin).with_fuel(10);
        hang.run(b"x");
        assert_eq!(reg.execs.get(), 4);
        assert_eq!(reg.accepts.get(), 1);
        assert_eq!(reg.rejects.get(), 2);
        assert_eq!(reg.hangs.get(), 1);
        assert_eq!(reg.input_len.count(), 4);
        assert_eq!(reg.exec_latency_ns.count(), 4);
        assert!(reg.snapshot().check_identities().is_ok());
    }

    #[test]
    fn verdict_error_messages() {
        assert_eq!(Verdict::Accept.error(), None);
        assert!(Verdict::Accept.is_accept());
        assert_eq!(
            Verdict::Reject { msg: "nope".into() }.error().as_deref(),
            Some("nope")
        );
        assert!(Verdict::Hang.is_hang());
        let crash = Verdict::Crash {
            panic_msg: "kaboom".to_string(),
            dedup_key: 7,
        };
        assert!(crash.is_crash());
        assert_eq!(crash.error().as_deref(), Some("crash: kaboom"));
    }
}

//! Instrumentation substrate for parser-directed fuzzing.
//!
//! The pFuzzer paper ("Parser-Directed Fuzzing", PLDI 2019) instruments C
//! programs with an LLVM pass that records four streams of information
//! while the program parses an input:
//!
//! 1. **dynamic taints** relating every processed value to the input
//!    character(s) it was derived from,
//! 2. **comparisons** of tainted values (character and string comparisons),
//! 3. the **call stack** at the time of each comparison, and
//! 4. **branch coverage** (the sequence of basic blocks taken).
//!
//! This crate provides the same event streams for parsers written in Rust
//! against the [`ExecCtx`] API. A subject parser reads its input through
//! the context; every read, comparison and coverage point is recorded in an
//! [`ExecLog`] which the fuzzers in `pdf-core`, `pdf-afl` and
//! `pdf-symbolic` consume. Reading past the end of the input is recorded
//! as an *EOF access*, the signal pFuzzer uses to decide that the current
//! prefix is valid but incomplete.
//!
//! # Example
//!
//! A minimal instrumented parser that accepts the language `a+`:
//!
//! ```
//! use pdf_runtime::{cov, lit, ExecCtx, ParseError, Subject};
//!
//! fn parse_as(ctx: &mut ExecCtx) -> Result<(), ParseError> {
//!     cov!(ctx);
//!     if !lit!(ctx, b'a') {
//!         return Err(ctx.reject("expected 'a'"));
//!     }
//!     while lit!(ctx, b'a') {}
//!     ctx.expect_end()
//! }
//!
//! let subject = Subject::new("as", parse_as);
//! assert!(subject.run(b"aaa").valid);
//! assert!(!subject.run(b"ab").valid);
//! let exec = subject.run(b"b");
//! // The failed comparison against 'a' at index 0 was recorded:
//! let cands = exec.log.substitution_candidates();
//! assert_eq!(cands.len(), 1);
//! assert_eq!(cands[0].bytes, vec![b'a']);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod corpus;
mod coverage;
mod ctx;
mod events;
mod isolate;
mod journal;
mod rng;
mod sink;
mod site;
mod stats;
mod subject;
mod taint;

pub use arena::ExecArena;
pub use corpus::distill;
pub use coverage::{BranchId, BranchSet};
pub use ctx::{ExecCtx, ParseError, DEFAULT_FUEL, SITE_TAIL_LEN};
pub use events::{
    cmp_fingerprint, Candidate, Cmp, CmpMeta, CmpValue, Event, ExecLog, LazyCmpValue,
    ReplacementScratch,
};
pub use isolate::catch_silent;
pub use journal::{
    digest_bytes, hex_decode, hex_encode, CellRecord, Digest, Journal, JournalError,
};
pub use rng::{DerivedRng, Rng};
pub use sink::{
    CovSummary, CoverageOnly, EventSink, FailureSummary, FastFailure, FastSummary, FullLog,
    LastFailure,
};
pub use site::SiteId;
pub use stats::{PhaseClock, RunStats};
pub use subject::{
    CovExecution, CoverageSubjectFn, Execution, FailureExecution, FastExecution,
    FastFailureSubjectFn, LastFailureSubjectFn, Subject, SubjectFn, Verdict,
};
pub use taint::TStr;

//! The tracked execution context subject parsers run against.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

use crate::coverage::BranchId;
use crate::events::{CmpMeta, ExecLog, LazyCmpValue};
use crate::journal::Digest;
use crate::sink::{EventSink, FullLog};
use crate::site::SiteId;
use crate::taint::TStr;

/// Default execution fuel: the maximum number of tracked operations per
/// run. Generous enough for every subject; exists so that interpreter
/// subjects (tinyC, mjs) cannot hang the fuzzer — the paper hit exactly
/// this with a generated `while(9);` input.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// How many trailing sites the context remembers for crash deduplication
/// (see [`ExecCtx::crash_dedup_key`]).
pub const SITE_TAIL_LEN: usize = 8;

/// Error returned by subject parsers on rejecting an input.
///
/// The fuzzers only look at accept/reject (the paper's "non-zero exit
/// code"); the message exists for debugging and example output. It is
/// a [`Cow`] because rejections happen millions of times per campaign
/// and virtually every message is a static literal — the common case
/// must not allocate on the execution hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: Cow<'static, str>,
}

impl ParseError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<Cow<'static, str>>) -> Self {
        ParseError { msg: msg.into() }
    }

    /// The rejection message.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Consumes the error into its message without copying it.
    pub fn into_message(self) -> Cow<'static, str> {
        self.msg
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl Error for ParseError {}

/// The instrumented execution context.
///
/// Subject parsers read their input exclusively through this type, which
/// records the event streams the paper's LLVM instrumentation would emit:
/// tainted comparisons, branch coverage, stack depth and EOF accesses.
///
/// Parsers written against `ExecCtx` use the tracking macros:
///
/// ```
/// use pdf_runtime::{cov, kw, lit, one_of, range, ExecCtx, ParseError};
///
/// fn parse(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     cov!(ctx);
///     if kw!(ctx, "let") {
///         // ...parse a binding...
///     } else if lit!(ctx, b'(') || one_of!(ctx, b"+-") || range!(ctx, b'0', b'9') {
///         // ...parse an expression...
///     } else {
///         return Err(ctx.reject("unexpected start of input"));
///     }
///     ctx.expect_end()
/// }
/// # let mut ctx = ExecCtx::new(b"let");
/// # assert!(parse(&mut ctx).is_ok());
/// ```
///
/// The context is generic over the [`EventSink`] that consumes the
/// event stream; the default sink is [`FullLog`], which records
/// everything into an [`ExecLog`]. Subject code is written once over a
/// generic sink (`fn parse<S: EventSink>(ctx: &mut ExecCtx<S>)`) and
/// monomorphises per consumer: coverage-guided fuzzers run with
/// [`CoverageOnly`](crate::CoverageOnly), the substitution driver with
/// [`LastFailure`](crate::LastFailure).
#[derive(Debug)]
pub struct ExecCtx<S: EventSink = FullLog> {
    input: Vec<u8>,
    pos: usize,
    depth: usize,
    fuel: u64,
    exhausted: bool,
    /// Ring buffer of the last [`SITE_TAIL_LEN`] sites that recorded a
    /// branch, in chronological order modulo `site_count` — the crash
    /// fingerprint a real fuzzer would take from the top of the stack
    /// trace.
    site_tail: [SiteId; SITE_TAIL_LEN],
    /// Total branches recorded (monotone; indexes the ring).
    site_count: u64,
    sink: S,
}

impl ExecCtx<FullLog> {
    /// Creates a full-log context over `input` with [`DEFAULT_FUEL`].
    pub fn new(input: &[u8]) -> Self {
        Self::with_fuel(input, DEFAULT_FUEL)
    }

    /// Creates a full-log context with an explicit fuel budget.
    pub fn with_fuel(input: &[u8], fuel: u64) -> Self {
        Self::with_sink(input, fuel, FullLog::default())
    }

    /// Extracts the event log after the run.
    pub fn into_log(self) -> ExecLog {
        self.finish()
    }
}

impl<S: EventSink> ExecCtx<S> {
    /// Creates a context that streams events into `sink`.
    pub fn with_sink(input: &[u8], fuel: u64, sink: S) -> Self {
        Self::with_sink_owned(input.to_vec(), fuel, sink)
    }

    /// [`with_sink`](Self::with_sink) over an owned input buffer: the
    /// batch executors pass a recycled arena buffer here to skip the
    /// per-execution input copy.
    pub fn with_sink_owned(input: Vec<u8>, fuel: u64, mut sink: S) -> Self {
        sink.begin(input.len());
        ExecCtx {
            input,
            pos: 0,
            depth: 0,
            fuel,
            exhausted: false,
            site_tail: [SiteId::from_raw(0); SITE_TAIL_LEN],
            site_count: 0,
            sink,
        }
    }

    /// Consumes the context, yielding the sink's summary of the run.
    pub fn finish(self) -> S::Summary {
        self.sink.finish()
    }

    /// Dismantles the context into its input buffer and sink *without*
    /// finishing the sink, so batch executors can recycle the buffer and
    /// summarise through an arena-aware path (e.g.
    /// [`LastFailure::finish_into`](crate::LastFailure::finish_into)).
    pub fn into_parts(self) -> (Vec<u8>, S) {
        (self.input, self.sink)
    }

    /// The input being parsed.
    pub fn input(&self) -> &[u8] {
        &self.input
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Resets the cursor (used by backtracking parsers).
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos.min(self.input.len());
    }

    /// Whether the fuel budget ran out. Interpreter subjects check this in
    /// their evaluation loops to abort runaway programs.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Consumes one unit of fuel; returns `false` once the budget is gone.
    /// Interpreter loops call this once per evaluation step.
    pub fn tick(&mut self) -> bool {
        if self.fuel == 0 {
            self.exhausted = true;
            return false;
        }
        self.fuel -= 1;
        true
    }

    // ---- reads -----------------------------------------------------------

    /// Reads the byte at the cursor without consuming it. Reading past the
    /// end of the input records an EOF access — the signal pFuzzer uses to
    /// detect that the parser wanted more input.
    pub fn peek(&mut self) -> Option<u8> {
        if !self.tick() {
            return None;
        }
        match self.input.get(self.pos) {
            Some(&b) => Some(b),
            None => {
                self.sink.on_eof(self.pos);
                None
            }
        }
    }

    /// Consumes and returns the byte at the cursor.
    pub fn next_byte(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Advances the cursor by one byte (no-op at end of input).
    pub fn advance(&mut self) {
        if self.pos < self.input.len() {
            self.pos += 1;
        }
    }

    /// Whether the cursor is at the end of the input. This performs a
    /// tracked read, so checking for end at the accept point records the
    /// EOF access a real parser's final `getc()` would make.
    pub fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    // ---- tracked comparisons ---------------------------------------------

    /// The single chokepoint every branch event flows through: updates
    /// the crash-fingerprint site tail, then forwards to the sink.
    fn note_branch(&mut self, id: BranchId, pos: usize) {
        self.site_tail[(self.site_count % SITE_TAIL_LEN as u64) as usize] = id.site;
        self.site_count += 1;
        self.sink.on_branch(id, pos);
    }

    /// Stable fingerprint of where the execution was when it died: an
    /// FNV-1a digest over the last [`SITE_TAIL_LEN`] recorded sites, in
    /// chronological order. Two crashes at the same parser location with
    /// the same approach path share a key regardless of the input bytes
    /// that led there; crashes at distinct sites get distinct keys.
    pub fn crash_dedup_key(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("crash-dedup-v1");
        let n = self.site_count.min(SITE_TAIL_LEN as u64);
        d.write_u64(n);
        for i in 0..n {
            let idx = ((self.site_count - n + i) % SITE_TAIL_LEN as u64) as usize;
            d.write_u64(self.site_tail[idx].0);
        }
        d.finish()
    }

    fn record_cmp(
        &mut self,
        site: SiteId,
        observed: Option<u8>,
        expected: LazyCmpValue<'_>,
        outcome: bool,
    ) {
        self.sink.on_cmp(
            CmpMeta {
                index: self.pos.min(self.input.len()),
                observed,
                outcome,
                depth: self.depth,
                site,
            },
            expected,
        );
        self.note_branch(BranchId::new(site, outcome), self.pos);
    }

    /// Records a coverage point (a basic block with no comparison).
    pub fn cov(&mut self, site: SiteId) {
        self.tick();
        self.note_branch(BranchId::new(site, true), self.pos);
    }

    /// Compares the byte at the cursor against `expected` without
    /// consuming it.
    pub fn cmp_eq_at(&mut self, site: SiteId, expected: u8) -> bool {
        let observed = self.peek();
        let outcome = observed == Some(expected);
        self.record_cmp(site, observed, LazyCmpValue::Byte(expected), outcome);
        outcome
    }

    /// Compares the byte at the cursor against `expected` and consumes it
    /// on a match. The workhorse of recursive-descent subjects.
    pub fn lit_at(&mut self, site: SiteId, expected: u8) -> bool {
        let ok = self.cmp_eq_at(site, expected);
        if ok {
            self.advance();
        }
        ok
    }

    /// Compares the byte at the cursor against each byte of `set` in turn
    /// (like a C `switch` or chained `||`), stopping at the first match.
    /// Does not consume.
    pub fn one_of_at(&mut self, site: SiteId, set: &[u8]) -> bool {
        let observed = self.peek();
        for &b in set {
            let outcome = observed == Some(b);
            self.record_cmp(site, observed, LazyCmpValue::Byte(b), outcome);
            if outcome {
                return true;
            }
        }
        false
    }

    /// Consuming variant of [`one_of_at`](Self::one_of_at).
    pub fn lit_one_of_at(&mut self, site: SiteId, set: &[u8]) -> bool {
        let ok = self.one_of_at(site, set);
        if ok {
            self.advance();
        }
        ok
    }

    /// Range check (e.g. `isdigit`). Does not consume.
    pub fn range_at(&mut self, site: SiteId, lo: u8, hi: u8) -> bool {
        let observed = self.peek();
        let outcome = observed.is_some_and(|b| b >= lo && b <= hi);
        self.record_cmp(site, observed, LazyCmpValue::Range(lo, hi), outcome);
        outcome
    }

    /// Consuming variant of [`range_at`](Self::range_at).
    pub fn lit_range_at(&mut self, site: SiteId, lo: u8, hi: u8) -> bool {
        let ok = self.range_at(site, lo, hi);
        if ok {
            self.advance();
        }
        ok
    }

    /// Matches the literal string `kw` at the cursor, consuming it on a
    /// full match and leaving the cursor untouched otherwise. Recorded as
    /// a single `strcmp`-style comparison whose failed form suggests the
    /// unmatched keyword suffix as a (multi-byte) replacement.
    pub fn kw_at(&mut self, site: SiteId, kw: &str) -> bool {
        let expected = kw.as_bytes();
        let start = self.pos;
        let mut matched = 0;
        while matched < expected.len() {
            match self.peek() {
                Some(b) if b == expected[matched] => {
                    self.advance();
                    matched += 1;
                }
                _ => break,
            }
        }
        let outcome = matched == expected.len();
        let observed = self.input.get(start + matched).copied();
        let index = (start + matched).min(self.input.len());
        self.sink.on_cmp(
            CmpMeta {
                index,
                observed,
                outcome,
                depth: self.depth,
                site,
            },
            LazyCmpValue::Str {
                full: expected,
                matched,
            },
        );
        self.note_branch(BranchId::new(site, outcome), self.pos);
        if !outcome {
            self.pos = start;
        }
        outcome
    }

    /// `strcmp`-style comparison of an already-read tainted string against
    /// an expected string. Used by tokenizing subjects (tinyC, mjs), where
    /// the identifier text is copied into a buffer first — the paper wraps
    /// `strcpy`/`strcmp` so taints survive exactly this pattern.
    pub fn strcmp_at(&mut self, site: SiteId, ts: &TStr, expected: &str) -> bool {
        let exp = expected.as_bytes();
        let mut matched = 0;
        while matched < exp.len() && matched < ts.len() && ts.byte(matched) == exp[matched] {
            matched += 1;
        }
        let outcome = matched == exp.len() && ts.len() == exp.len();
        // Index of the byte where matching stopped: inside the tainted
        // string if it diverged, right past its end if it was a proper
        // prefix of the expected string.
        let index = if matched < ts.len() {
            ts.index(matched)
        } else {
            ts.end_index()
        };
        let observed = if matched < ts.len() {
            Some(ts.byte(matched))
        } else {
            self.input.get(index).copied()
        };
        self.sink.on_cmp(
            CmpMeta {
                index: index.min(self.input.len()),
                observed,
                outcome,
                depth: self.depth,
                site,
            },
            LazyCmpValue::Str { full: exp, matched },
        );
        self.note_branch(BranchId::new(site, outcome), self.pos);
        outcome
    }

    // ---- structure --------------------------------------------------------

    /// Runs `f` one stack level deeper. Subjects wrap each grammar
    /// production in a frame so comparison events carry the recursive-
    /// descent stack depth the heuristic uses (Algorithm 1, line 50).
    pub fn frame<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Builds a rejection error. Also spends a fuel tick so that rejection
    /// loops terminate.
    pub fn reject(&mut self, msg: impl Into<Cow<'static, str>>) -> ParseError {
        self.tick();
        ParseError::new(msg)
    }

    /// Accepts only if the whole input was consumed; performs a tracked
    /// read so the final EOF check is observable.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when unconsumed input remains.
    pub fn expect_end(&mut self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.reject("trailing input"))
        }
    }
}

/// Records a coverage point at the invocation site.
#[macro_export]
macro_rules! cov {
    ($ctx:expr) => {
        $ctx.cov($crate::site!())
    };
}

/// Tracked compare-and-consume of a single byte.
#[macro_export]
macro_rules! lit {
    ($ctx:expr, $b:expr) => {
        $ctx.lit_at($crate::site!(), $b)
    };
}

/// Tracked non-consuming equality check of a single byte.
#[macro_export]
macro_rules! peek_is {
    ($ctx:expr, $b:expr) => {
        $ctx.cmp_eq_at($crate::site!(), $b)
    };
}

/// Tracked non-consuming membership check against a byte set.
#[macro_export]
macro_rules! one_of {
    ($ctx:expr, $set:expr) => {
        $ctx.one_of_at($crate::site!(), $set)
    };
}

/// Tracked consuming membership check against a byte set.
#[macro_export]
macro_rules! lit_one_of {
    ($ctx:expr, $set:expr) => {
        $ctx.lit_one_of_at($crate::site!(), $set)
    };
}

/// Tracked non-consuming range check.
#[macro_export]
macro_rules! range {
    ($ctx:expr, $lo:expr, $hi:expr) => {
        $ctx.range_at($crate::site!(), $lo, $hi)
    };
}

/// Tracked consuming range check.
#[macro_export]
macro_rules! lit_range {
    ($ctx:expr, $lo:expr, $hi:expr) => {
        $ctx.lit_range_at($crate::site!(), $lo, $hi)
    };
}

/// Tracked keyword match (consumes on success, backtracks on failure).
#[macro_export]
macro_rules! kw {
    ($ctx:expr, $kw:expr) => {
        $ctx.kw_at($crate::site!(), $kw)
    };
}

/// Tracked `strcmp` of a tainted string against an expected string.
#[macro_export]
macro_rules! strcmp {
    ($ctx:expr, $ts:expr, $expected:expr) => {
        $ctx.strcmp_at($crate::site!(), $ts, $expected)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CmpValue;

    #[test]
    fn peek_past_end_records_eof() {
        let mut ctx = ExecCtx::new(b"");
        assert_eq!(ctx.peek(), None);
        let log = ctx.into_log();
        assert_eq!(log.eof_access(), Some(0));
    }

    #[test]
    fn peek_in_bounds_records_nothing() {
        let mut ctx = ExecCtx::new(b"a");
        assert_eq!(ctx.peek(), Some(b'a'));
        assert!(ctx.into_log().events.is_empty());
    }

    #[test]
    fn lit_consumes_on_match_only() {
        let mut ctx = ExecCtx::new(b"ab");
        assert!(lit!(ctx, b'a'));
        assert_eq!(ctx.pos(), 1);
        assert!(!lit!(ctx, b'a'));
        assert_eq!(ctx.pos(), 1);
    }

    #[test]
    fn one_of_logs_until_match() {
        let mut ctx = ExecCtx::new(b"c");
        assert!(one_of!(ctx, b"abc"));
        let log = ctx.into_log();
        assert_eq!(log.cmp_count(), 3);
        let outcomes: Vec<bool> = log.comparisons().map(|c| c.outcome).collect();
        assert_eq!(outcomes, vec![false, false, true]);
    }

    #[test]
    fn one_of_miss_logs_all() {
        let mut ctx = ExecCtx::new(b"z");
        assert!(!one_of!(ctx, b"abc"));
        assert_eq!(ctx.into_log().cmp_count(), 3);
    }

    #[test]
    fn range_outcome() {
        let mut ctx = ExecCtx::new(b"5x");
        assert!(lit_range!(ctx, b'0', b'9'));
        assert!(!range!(ctx, b'0', b'9'));
        let cands = ctx.into_log().substitution_candidates();
        // failing at index 1: all ten digits suggested
        assert_eq!(cands.len(), 10);
        assert!(cands.iter().all(|c| c.at_index == 1));
    }

    #[test]
    fn kw_full_match_consumes() {
        let mut ctx = ExecCtx::new(b"while(1)");
        assert!(kw!(ctx, "while"));
        assert_eq!(ctx.pos(), 5);
    }

    #[test]
    fn kw_partial_match_backtracks_and_suggests_suffix() {
        let mut ctx = ExecCtx::new(b"whale");
        assert!(!kw!(ctx, "while"));
        assert_eq!(ctx.pos(), 0);
        let log = ctx.into_log();
        let cands = log.substitution_candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].at_index, 2);
        assert_eq!(cands[0].bytes, b"ile".to_vec());
    }

    #[test]
    fn kw_at_eof_suggests_remainder() {
        let mut ctx = ExecCtx::new(b"wh");
        assert!(!kw!(ctx, "while"));
        let log = ctx.into_log();
        assert_eq!(log.eof_access(), Some(2));
        // the comparison at the (virtual) index 2 has no observed byte, so
        // no substitution candidate — pFuzzer appends instead.
        assert_eq!(log.rejection_index(), None);
    }

    #[test]
    fn strcmp_divergence_inside() {
        let mut ctx = ExecCtx::new(b"forx");
        let mut ts = TStr::new();
        for i in 0..4 {
            ts.push(ctx.input()[i], i);
        }
        assert!(!strcmp!(ctx, &ts, "for"));
        let log = ctx.into_log();
        let c = log.comparisons().next().unwrap();
        // ts is longer than "for": everything matched, failure is length.
        assert_eq!(
            c.expected,
            CmpValue::Str {
                full: b"for".to_vec(),
                matched: 3
            }
        );
        assert!(!c.outcome);
    }

    #[test]
    fn strcmp_exact_match() {
        let mut ctx = ExecCtx::new(b"for");
        let mut ts = TStr::new();
        for i in 0..3 {
            ts.push(ctx.input()[i], i);
        }
        assert!(strcmp!(ctx, &ts, "for"));
    }

    #[test]
    fn strcmp_prefix_suggests_suffix_past_string() {
        // tainted string "fo" (indices 0..2) vs expected "for":
        // replacement "r" suggested at index 2.
        let mut ctx = ExecCtx::new(b"fo;");
        let mut ts = TStr::new();
        ts.push(b'f', 0);
        ts.push(b'o', 1);
        assert!(!strcmp!(ctx, &ts, "for"));
        let log = ctx.into_log();
        let cands = log.substitution_candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].at_index, 2);
        assert_eq!(cands[0].bytes, b"r".to_vec());
    }

    #[test]
    fn frame_tracks_depth() {
        let mut ctx = ExecCtx::new(b"ab");
        ctx.frame(|ctx| {
            assert_eq!(ctx.depth(), 1);
            ctx.frame(|ctx| {
                assert_eq!(ctx.depth(), 2);
                lit!(ctx, b'a');
            });
        });
        assert_eq!(ctx.depth(), 0);
        let log = ctx.into_log();
        assert_eq!(log.comparisons().next().unwrap().depth, 2);
    }

    #[test]
    fn fuel_exhaustion_stops_reads() {
        let mut ctx = ExecCtx::with_fuel(b"aaaa", 2);
        assert!(ctx.peek().is_some());
        assert!(ctx.peek().is_some());
        assert!(ctx.peek().is_none());
        assert!(ctx.exhausted());
    }

    #[test]
    fn expect_end_rejects_trailing() {
        let mut ctx = ExecCtx::new(b"a");
        assert!(ctx.expect_end().is_err());
        ctx.advance();
        // cursor now at end; a fresh check accepts
        let mut ctx2 = ExecCtx::new(b"");
        assert!(ctx2.expect_end().is_ok());
    }

    #[test]
    fn crash_dedup_key_depends_on_sites_not_input_bytes() {
        // the same comparison path over different inputs fingerprints
        // identically: the key is a function of *where* execution went,
        // not of what bytes drove it there
        fn walk(ctx: &mut ExecCtx) {
            crate::lit!(ctx, b'a');
            crate::lit!(ctx, b'b');
        }
        let mut a = ExecCtx::new(b"ab");
        walk(&mut a);
        let mut b = ExecCtx::new(b"zz");
        walk(&mut b);
        assert_eq!(a.crash_dedup_key(), b.crash_dedup_key());
    }

    #[test]
    fn crash_dedup_key_separates_distinct_site_paths() {
        let mut a = ExecCtx::new(b"a");
        crate::lit!(a, b'a');
        let mut b = ExecCtx::new(b"a");
        crate::lit!(b, b'a');
        crate::cov!(b);
        assert_ne!(a.crash_dedup_key(), b.crash_dedup_key());
        // and the empty tail has a stable key of its own
        assert_eq!(
            ExecCtx::new(b"").crash_dedup_key(),
            ExecCtx::new(b"xyz").crash_dedup_key()
        );
    }

    #[test]
    fn crash_dedup_key_windows_to_the_tail() {
        // histories that differ only before the last SITE_TAIL_LEN
        // branches fingerprint identically
        fn spin_cov(ctx: &mut ExecCtx, times: usize) {
            for _ in 0..times {
                crate::cov!(ctx); // one site, hit repeatedly
            }
        }
        let mut a = ExecCtx::new(b"");
        spin_cov(&mut a, SITE_TAIL_LEN + 1);
        let mut b = ExecCtx::new(b"");
        spin_cov(&mut b, SITE_TAIL_LEN + 17);
        assert_eq!(a.crash_dedup_key(), b.crash_dedup_key());
    }

    #[test]
    fn cmp_at_eof_records_unsubstitutable_comparison() {
        let mut ctx = ExecCtx::new(b"");
        assert!(!lit!(ctx, b'x'));
        let log = ctx.into_log();
        assert_eq!(log.eof_access(), Some(0));
        assert_eq!(log.rejection_index(), None);
        assert!(log.substitution_candidates().is_empty());
    }
}

//! Corpus utilities: coverage-preserving distillation.
//!
//! All three fuzzers emit corpora of valid inputs; downstream users
//! (regression suites, the grammar miner) often want the smallest
//! subset that still covers every branch — the `afl-cmin` operation.

use crate::coverage::BranchSet;
use crate::subject::Subject;

/// Greedily selects a minimal-ish subset of `corpus` that covers the
/// same branches as the whole corpus (classic greedy set cover: repeat
/// picking the input adding the most uncovered branches).
///
/// Inputs that fail to execute as valid are dropped. Order within the
/// result follows selection order (highest-gain first), so the result
/// doubles as a priority-ranked regression suite.
///
/// # Example
///
/// ```
/// use pdf_runtime::{cov, lit, distill, ExecCtx, ParseError, Subject};
///
/// fn p(ctx: &mut ExecCtx) -> Result<(), ParseError> {
///     cov!(ctx);
///     if lit!(ctx, b'x') { cov!(ctx); }
///     ctx.expect_end()
/// }
/// let subject = Subject::new("x?", p);
/// let corpus = vec![b"".to_vec(), b"x".to_vec(), b"x".to_vec()];
/// let kept = distill(subject, &corpus);
/// // the duplicate "x" is dropped; "" stays because its failed `x`
/// // comparison is a branch of its own
/// assert_eq!(kept, vec![b"x".to_vec(), b"".to_vec()]);
/// ```
pub fn distill(subject: Subject, corpus: &[Vec<u8>]) -> Vec<Vec<u8>> {
    // run everything once, keep (input, branches) of valid runs
    let mut runs: Vec<(&Vec<u8>, BranchSet)> = Vec::new();
    let mut union = BranchSet::new();
    for input in corpus {
        let exec = subject.run(input);
        if exec.valid {
            let branches = exec.log.branches();
            union.union_with(&branches);
            runs.push((input, branches));
        }
    }
    let mut covered = BranchSet::new();
    let mut kept: Vec<Vec<u8>> = Vec::new();
    while covered.len() < union.len() {
        let best = runs
            .iter()
            .enumerate()
            .max_by_key(|(i, (input, branches))| {
                // gain, then prefer shorter inputs, then earlier ones
                (
                    branches.difference_size(&covered),
                    usize::MAX - input.len(),
                    usize::MAX - i,
                )
            })
            .map(|(i, _)| i);
        let Some(i) = best else { break };
        let (input, branches) = runs.swap_remove(i);
        if branches.difference_size(&covered) == 0 {
            break; // nothing adds coverage any more
        }
        covered.union_with(&branches);
        kept.push(input.clone());
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{ExecCtx, ParseError};
    use crate::{cov, lit};

    /// Accepts "a", "b" or "ab", with distinct coverage for each arm.
    fn subject_fn(ctx: &mut ExecCtx) -> Result<(), ParseError> {
        cov!(ctx);
        if lit!(ctx, b'a') {
            cov!(ctx);
            if lit!(ctx, b'b') {
                cov!(ctx);
            }
            return ctx.expect_end();
        }
        if lit!(ctx, b'b') {
            cov!(ctx);
            return ctx.expect_end();
        }
        Err(ctx.reject("expected a or b"))
    }

    fn subject() -> Subject {
        Subject::new("ab", subject_fn)
    }

    #[test]
    fn duplicates_are_dropped() {
        let corpus = vec![b"a".to_vec(), b"a".to_vec(), b"a".to_vec()];
        assert_eq!(distill(subject(), &corpus).len(), 1);
    }

    #[test]
    fn coverage_is_preserved() {
        let corpus = vec![b"a".to_vec(), b"b".to_vec(), b"ab".to_vec()];
        let kept = distill(subject(), &corpus);
        // "ab" subsumes "a"; "b" is needed separately
        let mut union_before = BranchSet::new();
        for i in &corpus {
            union_before.union_with(&subject().run(i).log.branches());
        }
        let mut union_after = BranchSet::new();
        for i in &kept {
            union_after.union_with(&subject().run(i).log.branches());
        }
        assert_eq!(union_before, union_after);
        // ("ab" does not subsume "a": the failed `b` comparison of "a"
        // is its own branch, so all three may be kept — never more)
        assert!(kept.len() <= corpus.len());
    }

    #[test]
    fn invalid_inputs_are_dropped() {
        let corpus = vec![b"zzz".to_vec(), b"a".to_vec()];
        let kept = distill(subject(), &corpus);
        assert_eq!(kept, vec![b"a".to_vec()]);
    }

    #[test]
    fn empty_corpus_is_empty() {
        assert!(distill(subject(), &[]).is_empty());
    }

    #[test]
    fn all_duplicate_corpus_collapses_to_one() {
        let corpus = vec![b"ab".to_vec(); 6];
        assert_eq!(distill(subject(), &corpus), vec![b"ab".to_vec()]);
    }

    #[test]
    fn distilled_set_is_order_independent() {
        // Every permutation of the corpus distills to the same *set* of
        // inputs (selection order may differ, membership may not).
        let corpus = [b"a".to_vec(), b"b".to_vec(), b"ab".to_vec(), b"a".to_vec()];
        let permutations: [[usize; 4]; 6] = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [1, 0, 3, 2],
            [2, 3, 0, 1],
            [2, 0, 1, 3],
            [1, 3, 2, 0],
        ];
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for perm in permutations {
            let shuffled: Vec<Vec<u8>> = perm.iter().map(|&i| corpus[i].clone()).collect();
            let mut kept = distill(subject(), &shuffled);
            kept.sort();
            match &reference {
                None => reference = Some(kept),
                Some(first) => assert_eq!(&kept, first, "order {perm:?} changed the set"),
            }
        }
    }

    #[test]
    fn greedy_picks_high_gain_first() {
        let corpus = vec![b"a".to_vec(), b"ab".to_vec(), b"b".to_vec()];
        let kept = distill(subject(), &corpus);
        // "ab" covers the most branches, so it is selected first
        assert_eq!(kept[0], b"ab".to_vec());
    }
}

//! Token inventories and *input coverage* scoring.
//!
//! Section 5.3 of the paper measures input coverage: which of a
//! subject's language tokens appear in the valid inputs a tool
//! generated. "Strings, numbers and identifiers are classified as one
//! token as they can consist of many different characters but will all
//! trigger the same behavior in the program. Any non-token characters
//! (e.g. whitespaces) are ignored."
//!
//! This crate provides, per subject:
//!
//! - the **token inventory** with each token's length — exactly the
//!   paper's Tables 2 (json), 3 (tinyC) and 4 (mjs); for ini and csv
//!   (which the paper describes only in prose) and for the mjs tokens
//!   the paper lists as "..." the concrete choices are documented on the
//!   inventory functions;
//! - a **scanner** mapping a (valid) input to the set of inventory
//!   tokens it contains;
//! - [`TokenCoverage`], which accumulates found tokens over a corpus and
//!   produces the per-length counts of Figure 3 and the headline
//!   aggregates ("for tokens of length ≤ 3, AFL finds 91.5%, ...").
//!
//! # Example
//!
//! ```
//! use pdf_tokens::{inventory, TokenCoverage};
//!
//! let inv = inventory("cjson").unwrap();
//! assert_eq!(inv.total(), 12); // Table 2: 8 + 1 + 2 + 1
//!
//! let mut cov = TokenCoverage::new("cjson").unwrap();
//! cov.add_input(b"{\"a\": [1, true]}");
//! assert!(cov.found("true"));
//! assert!(!cov.found("false"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dict;
mod miner;
mod scan;

use std::collections::BTreeSet;

pub use dict::{DictError, Dictionary};
pub use miner::{MinerConfig, TokenMiner};
pub use scan::found_tokens;

/// One token of a subject's input language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenDef {
    /// Display name; for classes (number, string, identifier) the class
    /// name.
    pub name: &'static str,
    /// The length the paper's tables assign to the token.
    pub length: usize,
}

const fn tok(name: &'static str, length: usize) -> TokenDef {
    TokenDef { name, length }
}

/// A subject's full token inventory.
#[derive(Debug, Clone)]
pub struct TokenInventory {
    /// Subject name (paper spelling: ini, csv, cjson, tinyC, mjs).
    pub subject: &'static str,
    /// All tokens.
    pub tokens: Vec<TokenDef>,
}

impl TokenInventory {
    /// Total number of tokens.
    pub fn total(&self) -> usize {
        self.tokens.len()
    }

    /// Number of tokens of exactly this length.
    pub fn count_of_length(&self, length: usize) -> usize {
        self.tokens.iter().filter(|t| t.length == length).count()
    }

    /// The distinct lengths present, ascending.
    pub fn lengths(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.tokens.iter().map(|t| t.length).collect();
        set.into_iter().collect()
    }

    /// Tokens with length in `range` (inclusive bounds).
    pub fn tokens_in(&self, min: usize, max: usize) -> Vec<&TokenDef> {
        self.tokens
            .iter()
            .filter(|t| t.length >= min && t.length <= max)
            .collect()
    }
}

/// The ini inventory. The paper gives no table for ini; Figure 3 shows
/// five length-1 tokens (KLEE missing the two brackets) and two longer
/// classes. We use: `[`, `]`, `=`, `:`, `;` plus the `name` and `value`
/// classes (at length 2, matching the figure's second column).
pub fn ini_inventory() -> TokenInventory {
    TokenInventory {
        subject: "ini",
        tokens: vec![
            tok("[", 1),
            tok("]", 1),
            tok("=", 1),
            tok(":", 1),
            tok(";", 1),
            tok("name", 2),
            tok("value", 2),
        ],
    }
}

/// The csv inventory (no table in the paper): the comma and the
/// unquoted `field` class at length 1, the newline separator and the
/// `quoted` field class at length 2.
pub fn csv_inventory() -> TokenInventory {
    TokenInventory {
        subject: "csv",
        tokens: vec![
            tok(",", 1),
            tok("field", 1),
            tok("newline", 2),
            tok("quoted", 2),
        ],
    }
}

/// Table 2: the json tokens — 8 of length 1, `string` at length 2,
/// `null`/`true` at length 4, `false` at length 5.
pub fn json_inventory() -> TokenInventory {
    TokenInventory {
        subject: "cjson",
        tokens: vec![
            tok("{", 1),
            tok("}", 1),
            tok("[", 1),
            tok("]", 1),
            tok("-", 1),
            tok(":", 1),
            tok(",", 1),
            tok("number", 1),
            tok("string", 2),
            tok("null", 4),
            tok("true", 4),
            tok("false", 5),
        ],
    }
}

/// Table 3: the tinyC tokens — 11 of length 1 (including the
/// `identifier` and `number` classes), `if`/`do`, `else`, `while`.
pub fn tinyc_inventory() -> TokenInventory {
    TokenInventory {
        subject: "tinyC",
        tokens: vec![
            tok("<", 1),
            tok("+", 1),
            tok("-", 1),
            tok(";", 1),
            tok("=", 1),
            tok("{", 1),
            tok("}", 1),
            tok("(", 1),
            tok(")", 1),
            tok("identifier", 1),
            tok("number", 1),
            tok("if", 2),
            tok("do", 2),
            tok("else", 4),
            tok("while", 5),
        ],
    }
}

/// Table 4: the mjs tokens, 99 in total with the paper's per-length
/// counts (27, 24, 13, 10, 9, 7, 3, 3, 2, 1). Table 4 only lists
/// examples per length; where it prints "..." we complete the inventory
/// with the remaining operators, keywords and builtin names of our mjs
/// subject (builtin method names such as `indexOf` and `stringify` are
/// tokens in the paper's own table). The single-quoted string form
/// counts as its own length-1 class (the quote character selects a
/// distinct lexer path), keeping the length-1 count at 27.
pub fn mjs_inventory() -> TokenInventory {
    let mut tokens = Vec::new();
    // length 1: 24 punctuation/operator characters + 3 classes
    for p in [
        "{", "}", "(", ")", "[", "]", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", ":",
        ";", ",", "<", ">", "=", ".",
    ] {
        tokens.push(tok(p, 1));
    }
    tokens.push(tok("identifier", 1));
    tokens.push(tok("number", 1));
    tokens.push(tok("sq-string", 1));
    // length 2: 19 operators + 4 keywords + the double-quoted string class
    for p in [
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=", "<<", ">>", "&&",
        "||", "++", "--", "**",
    ] {
        tokens.push(tok(p, 2));
    }
    for k in ["if", "in", "do", "of"] {
        tokens.push(tok(k, 2));
    }
    tokens.push(tok("string", 2));
    // length 3: 5 operators + 5 keywords + 3 builtin names
    for p in ["===", "!==", "<<=", ">>=", ">>>"] {
        tokens.push(tok(p, 3));
    }
    for k in ["for", "try", "let", "var", "new", "NaN", "abs", "pow"] {
        tokens.push(tok(k, 3));
    }
    // length 4
    for k in [
        ">>>=", "true", "null", "void", "with", "else", "case", "this", "Math", "JSON",
    ] {
        tokens.push(tok(k, 4));
    }
    // length 5
    for k in [
        "false", "throw", "while", "break", "catch", "const", "floor", "slice", "split",
    ] {
        tokens.push(tok(k, 5));
    }
    // length 6
    for k in [
        "return", "delete", "typeof", "Object", "switch", "String", "length",
    ] {
        tokens.push(tok(k, 6));
    }
    // length 7
    for k in ["default", "finally", "indexOf"] {
        tokens.push(tok(k, 7));
    }
    // length 8
    for k in ["continue", "function", "debugger"] {
        tokens.push(tok(k, 8));
    }
    // length 9
    for k in ["undefined", "stringify"] {
        tokens.push(tok(k, 9));
    }
    // length 10
    tokens.push(tok("instanceof", 10));
    TokenInventory {
        subject: "mjs",
        tokens,
    }
}

/// Looks up a subject's inventory by its paper name.
pub fn inventory(subject: &str) -> Option<TokenInventory> {
    match subject {
        "ini" => Some(ini_inventory()),
        "csv" => Some(csv_inventory()),
        "cjson" | "json" => Some(json_inventory()),
        "tinyC" | "tinyc" => Some(tinyc_inventory()),
        "mjs" => Some(mjs_inventory()),
        _ => None,
    }
}

/// Accumulates the tokens found in a corpus of valid inputs and scores
/// them against the inventory — the Figure 3 measurement.
#[derive(Debug, Clone)]
pub struct TokenCoverage {
    inventory: TokenInventory,
    found: BTreeSet<&'static str>,
}

impl TokenCoverage {
    /// Creates an empty coverage record for `subject`.
    pub fn new(subject: &str) -> Option<Self> {
        Some(TokenCoverage {
            inventory: inventory(subject)?,
            found: BTreeSet::new(),
        })
    }

    /// Scans one (valid) input and records the tokens it contains.
    pub fn add_input(&mut self, input: &[u8]) {
        for name in found_tokens(self.inventory.subject, input) {
            self.found.insert(name);
        }
    }

    /// Whether the named token has been seen.
    pub fn found(&self, name: &str) -> bool {
        self.found.contains(name)
    }

    /// The inventory being scored against.
    pub fn inventory(&self) -> &TokenInventory {
        &self.inventory
    }

    /// Number of found tokens of exactly this length — one bar of
    /// Figure 3.
    pub fn found_of_length(&self, length: usize) -> usize {
        self.inventory
            .tokens
            .iter()
            .filter(|t| t.length == length && self.found.contains(t.name))
            .count()
    }

    /// Found / total over tokens with length in `[min, max]` — the
    /// paper's headline aggregates use (1, 3) and (4, usize::MAX).
    pub fn fraction_in(&self, min: usize, max: usize) -> (usize, usize) {
        let total = self.inventory.tokens_in(min, max);
        let found = total.iter().filter(|t| self.found.contains(t.name)).count();
        (found, total.len())
    }

    /// All found token names, sorted.
    pub fn found_names(&self) -> Vec<&'static str> {
        self.found.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts() {
        let inv = json_inventory();
        assert_eq!(inv.count_of_length(1), 8);
        assert_eq!(inv.count_of_length(2), 1);
        assert_eq!(inv.count_of_length(4), 2);
        assert_eq!(inv.count_of_length(5), 1);
        assert_eq!(inv.total(), 12);
    }

    #[test]
    fn table3_counts() {
        let inv = tinyc_inventory();
        assert_eq!(inv.count_of_length(1), 11);
        assert_eq!(inv.count_of_length(2), 2);
        assert_eq!(inv.count_of_length(4), 1);
        assert_eq!(inv.count_of_length(5), 1);
        assert_eq!(inv.total(), 15);
    }

    #[test]
    fn table4_counts() {
        let inv = mjs_inventory();
        let expected = [27, 24, 13, 10, 9, 7, 3, 3, 2, 1];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(
                inv.count_of_length(i + 1),
                want,
                "length {} should have {} tokens",
                i + 1,
                want
            );
        }
        assert_eq!(inv.total(), 99);
    }

    #[test]
    fn no_duplicate_token_names_per_inventory() {
        for subj in ["ini", "csv", "cjson", "tinyC", "mjs"] {
            let inv = inventory(subj).unwrap();
            let names: BTreeSet<&str> = inv.tokens.iter().map(|t| t.name).collect();
            assert_eq!(names.len(), inv.total(), "{subj} has duplicate names");
        }
    }

    #[test]
    fn lengths_listing() {
        assert_eq!(json_inventory().lengths(), vec![1, 2, 4, 5]);
        assert_eq!(
            mjs_inventory().lengths(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        );
    }

    #[test]
    fn coverage_accumulates() {
        let mut cov = TokenCoverage::new("cjson").unwrap();
        assert_eq!(cov.fraction_in(1, 3), (0, 9));
        cov.add_input(b"[1, 2]");
        assert!(cov.found("["));
        assert!(cov.found("]"));
        assert!(cov.found(","));
        assert!(cov.found("number"));
        cov.add_input(b"true");
        let (found_long, total_long) = cov.fraction_in(4, usize::MAX);
        assert_eq!((found_long, total_long), (1, 3));
    }

    #[test]
    fn unknown_subject_is_none() {
        assert!(inventory("nope").is_none());
        assert!(TokenCoverage::new("nope").is_none());
    }
}

//! Per-subject scanners mapping a valid input to the inventory tokens it
//! contains.
//!
//! These are deliberately *untracked* re-lexers (they run outside the
//! instrumented subjects): the evaluation counts tokens in the corpus a
//! tool produced, exactly as the paper post-processes tool outputs.

/// Returns the inventory token names present in `input` for `subject`.
/// Unknown subjects yield an empty list; malformed inputs are scanned
/// best-effort (the measurement only ever runs on valid inputs).
pub fn found_tokens(subject: &str, input: &[u8]) -> Vec<&'static str> {
    match subject {
        "ini" => scan_ini(input),
        "csv" => scan_csv(input),
        "cjson" | "json" => scan_json(input),
        "tinyC" | "tinyc" => scan_tinyc(input),
        "mjs" => scan_mjs(input),
        _ => Vec::new(),
    }
}

fn push(out: &mut Vec<&'static str>, name: &'static str) {
    if !out.contains(&name) {
        out.push(name);
    }
}

// ---------------------------------------------------------------------------
// ini
// ---------------------------------------------------------------------------

fn scan_ini(input: &[u8]) -> Vec<&'static str> {
    let mut out = Vec::new();
    for line in input.split(|&b| b == b'\n') {
        let trimmed: Vec<u8> = line
            .iter()
            .copied()
            .skip_while(|b| *b == b' ' || *b == b'\t')
            .collect();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed[0] == b';' {
            push(&mut out, ";");
            continue;
        }
        if trimmed[0] == b'[' {
            push(&mut out, "[");
            if trimmed.contains(&b']') {
                push(&mut out, "]");
            }
            continue;
        }
        if let Some(sep) = trimmed.iter().position(|&b| b == b'=' || b == b':') {
            push(&mut out, if trimmed[sep] == b'=' { "=" } else { ":" });
            if sep > 0 {
                push(&mut out, "name");
            }
            let value = &trimmed[sep + 1..];
            let value_end = value.iter().position(|&b| b == b';').unwrap_or(value.len());
            if value[..value_end].iter().any(|b| !b.is_ascii_whitespace()) {
                push(&mut out, "value");
            }
            if value_end < value.len() {
                push(&mut out, ";");
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------------

fn scan_csv(input: &[u8]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut field_len = 0usize;
    while i < input.len() {
        match input[i] {
            b',' => {
                push(&mut out, ",");
                field_len = 0;
                i += 1;
            }
            b'\n' => {
                push(&mut out, "newline");
                field_len = 0;
                i += 1;
            }
            b'\r' => {
                i += 1;
            }
            b'"' => {
                push(&mut out, "quoted");
                i += 1;
                while i < input.len() {
                    if input[i] == b'"' {
                        if input.get(i + 1) == Some(&b'"') {
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                field_len = 0;
            }
            _ => {
                field_len += 1;
                if field_len == 1 {
                    push(&mut out, "field");
                }
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// json
// ---------------------------------------------------------------------------

fn scan_json(input: &[u8]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < input.len() {
        match input[i] {
            b'{' => push(&mut out, "{"),
            b'}' => push(&mut out, "}"),
            b'[' => push(&mut out, "["),
            b']' => push(&mut out, "]"),
            b':' => push(&mut out, ":"),
            b',' => push(&mut out, ","),
            b'-' => push(&mut out, "-"),
            b'0'..=b'9' => {
                push(&mut out, "number");
                while i + 1 < input.len()
                    && (input[i + 1].is_ascii_digit()
                        || matches!(input[i + 1], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
            }
            b'"' => {
                push(&mut out, "string");
                i += 1;
                while i < input.len() && input[i] != b'"' {
                    if input[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            b't' if input[i..].starts_with(b"true") => {
                push(&mut out, "true");
                i += 3;
            }
            b'f' if input[i..].starts_with(b"false") => {
                push(&mut out, "false");
                i += 4;
            }
            b'n' if input[i..].starts_with(b"null") => {
                push(&mut out, "null");
                i += 3;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// tinyC
// ---------------------------------------------------------------------------

fn scan_tinyc(input: &[u8]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        match b {
            b'<' => push(&mut out, "<"),
            b'+' => push(&mut out, "+"),
            b'-' => push(&mut out, "-"),
            b';' => push(&mut out, ";"),
            b'=' => push(&mut out, "="),
            b'{' => push(&mut out, "{"),
            b'}' => push(&mut out, "}"),
            b'(' => push(&mut out, "("),
            b')' => push(&mut out, ")"),
            b'0'..=b'9' => {
                push(&mut out, "number");
                while i + 1 < input.len() && input[i + 1].is_ascii_digit() {
                    i += 1;
                }
            }
            b'a'..=b'z' => {
                let start = i;
                while i + 1 < input.len() && input[i + 1].is_ascii_lowercase() {
                    i += 1;
                }
                match &input[start..=i] {
                    b"if" => push(&mut out, "if"),
                    b"do" => push(&mut out, "do"),
                    b"else" => push(&mut out, "else"),
                    b"while" => push(&mut out, "while"),
                    word if word.len() == 1 => push(&mut out, "identifier"),
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// mjs
// ---------------------------------------------------------------------------

/// Keywords and builtin names that are inventory tokens; all other words
/// count as the `identifier` class.
const MJS_WORDS: [&str; 40] = [
    "if", "in", "do", "of", "for", "try", "let", "var", "new", "NaN", "abs", "pow", "true", "null",
    "void", "with", "else", "case", "this", "Math", "JSON", "false", "throw", "while", "break",
    "catch", "const", "floor", "slice", "split", "return", "delete", "typeof", "Object", "switch",
    "String", "length", "default", "finally", "indexOf",
];
const MJS_LONG_WORDS: [&str; 6] = [
    "continue",
    "function",
    "debugger",
    "undefined",
    "stringify",
    "instanceof",
];

/// mjs multi-character operators, longest first (maximal munch).
const MJS_OPS: [&str; 25] = [
    ">>>=", "===", "!==", "<<=", ">>=", ">>>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "==", "!=", "<=", ">=", "<<", ">>", "&&", "||", "++", "--", "**",
];

fn scan_mjs(input: &[u8]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut i = 0;
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'$';
    'outer: while i < input.len() {
        let b = input[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if b == b'/' && input.get(i + 1) == Some(&b'/') {
            while i < input.len() && input[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'/' && input.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < input.len() && !(input[i] == b'*' && input[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(input.len());
            continue;
        }
        // strings
        if b == b'"' || b == b'\'' {
            push(&mut out, if b == b'"' { "string" } else { "sq-string" });
            i += 1;
            while i < input.len() && input[i] != b {
                if input[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        // numbers
        if b.is_ascii_digit() {
            push(&mut out, "number");
            while i < input.len()
                && (input[i].is_ascii_digit() || matches!(input[i], b'.' | b'e' | b'E'))
            {
                i += 1;
            }
            continue;
        }
        // words
        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            let start = i;
            while i < input.len() && is_word(input[i]) {
                i += 1;
            }
            let word = std::str::from_utf8(&input[start..i]).unwrap_or("");
            if let Some(&name) = MJS_WORDS.iter().find(|&&w| w == word) {
                push(&mut out, name);
            } else if let Some(&name) = MJS_LONG_WORDS.iter().find(|&&w| w == word) {
                push(&mut out, name);
            } else {
                push(&mut out, "identifier");
            }
            continue;
        }
        // multi-char operators, longest first
        for op in MJS_OPS {
            if input[i..].starts_with(op.as_bytes()) {
                push(&mut out, op);
                i += op.len();
                continue 'outer;
            }
        }
        // single characters
        let single: Option<&'static str> = match b {
            b'{' => Some("{"),
            b'}' => Some("}"),
            b'(' => Some("("),
            b')' => Some(")"),
            b'[' => Some("["),
            b']' => Some("]"),
            b'+' => Some("+"),
            b'-' => Some("-"),
            b'*' => Some("*"),
            b'/' => Some("/"),
            b'%' => Some("%"),
            b'&' => Some("&"),
            b'|' => Some("|"),
            b'^' => Some("^"),
            b'~' => Some("~"),
            b'!' => Some("!"),
            b'?' => Some("?"),
            b':' => Some(":"),
            b';' => Some(";"),
            b',' => Some(","),
            b'<' => Some("<"),
            b'>' => Some(">"),
            b'=' => Some("="),
            b'.' => Some("."),
            _ => None,
        };
        if let Some(name) = single {
            push(&mut out, name);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ini_tokens() {
        let found = found_tokens("ini", b"[sec]\nkey=val ; note\nalt:2\n");
        for t in ["[", "]", "=", ":", ";", "name", "value"] {
            assert!(found.contains(&t), "missing {t}: {found:?}");
        }
    }

    #[test]
    fn ini_empty_value_not_counted() {
        let found = found_tokens("ini", b"key=\n");
        assert!(found.contains(&"name"));
        assert!(!found.contains(&"value"));
    }

    #[test]
    fn csv_tokens() {
        let found = found_tokens("csv", b"a,\"q\"\nb");
        for t in [",", "field", "newline", "quoted"] {
            assert!(found.contains(&t), "missing {t}: {found:?}");
        }
    }

    #[test]
    fn json_tokens_full() {
        let found = found_tokens("cjson", b"{\"k\": [1, -2, true, false, null]}");
        for t in [
            "{", "}", "[", "]", ":", ",", "-", "number", "string", "true", "false", "null",
        ] {
            assert!(found.contains(&t), "missing {t}: {found:?}");
        }
        assert_eq!(found.len(), 12);
    }

    #[test]
    fn json_bare_minus_and_number_distinct() {
        assert_eq!(found_tokens("cjson", b"5"), vec!["number"]);
        let with_minus = found_tokens("cjson", b"-5");
        assert!(with_minus.contains(&"-"));
        assert!(with_minus.contains(&"number"));
    }

    #[test]
    fn tinyc_tokens() {
        let found = found_tokens("tinyC", b"if(a<2)a=3;else while(0)do;while(0);");
        for t in [
            "if",
            "else",
            "while",
            "do",
            "(",
            ")",
            "<",
            ";",
            "=",
            "identifier",
            "number",
        ] {
            assert!(found.contains(&t), "missing {t}: {found:?}");
        }
    }

    #[test]
    fn tinyc_keyword_not_identifier() {
        let found = found_tokens("tinyC", b"while(0);");
        assert!(found.contains(&"while"));
        assert!(!found.contains(&"identifier"));
    }

    #[test]
    fn mjs_keywords_and_builtins() {
        let found = found_tokens(
            "mjs",
            b"x = JSON.stringify([1].indexOf(0)); while (false) { typeof undefined; }",
        );
        for t in [
            "JSON",
            "stringify",
            "indexOf",
            "while",
            "false",
            "typeof",
            "undefined",
            "identifier",
            "number",
            "=",
            ".",
            ";",
            "(",
            ")",
            "[",
            "]",
            "{",
            "}",
        ] {
            assert!(found.contains(&t), "missing {t}: {found:?}");
        }
    }

    #[test]
    fn mjs_maximal_munch() {
        let found = found_tokens("mjs", b"a >>>= b === c ** d;");
        assert!(found.contains(&">>>="));
        assert!(found.contains(&"==="));
        assert!(found.contains(&"**"));
        // the components must NOT be counted
        assert!(!found.contains(&">"));
        assert!(!found.contains(&"=="));
        assert!(!found.contains(&"*"));
    }

    #[test]
    fn mjs_string_kinds() {
        let found = found_tokens("mjs", b"a = \"x\"; b = 'y';");
        assert!(found.contains(&"string"));
        assert!(found.contains(&"sq-string"));
    }

    #[test]
    fn mjs_comments_skipped() {
        let found = found_tokens("mjs", b"// while\n/* for */ x;");
        assert!(!found.contains(&"while"));
        assert!(!found.contains(&"for"));
        assert!(found.contains(&"identifier"));
    }

    #[test]
    fn every_mjs_inventory_token_is_producible() {
        // a composite program that exercises every token in Table 4
        let program = br#"
            var a = 1, b = 2.5; let c = 'q'; const d = "s";
            if (a in {}) { } else { }
            do { break; } while (false);
            for (k of []) { continue; }
            for (var k2 in {}) { }
            try { throw 1; } catch (e) { } finally { }
            switch (a) { case 1: break; default: ; }
            function f() { return this; }
            x = new Object(); y = typeof a; delete x.p;
            z = a instanceof Object; w = void 0; u = undefined;
            tv = true; nv = null;
            n = NaN; m = Math.abs(-1); p = Math.pow(2, 3); fl = Math.floor(1.5);
            s = JSON.stringify([]); t = "abc".indexOf("b"); sl = "ab".slice(1);
            sp = "a,b".split(","); ln = "abc".length; st = String;
            q = a ? b : c; r = a + b - c * d / e % f ** g;
            bits = a & b | c ^ ~d; l = !a && b || c;
            cmp = a < b; cmp2 = a > b; cmp3 = a <= b; cmp4 = a >= b;
            eqs = a == b; eqs2 = a != b; eqs3 = a === b; eqs4 = a !== b;
            sh = a << b; sh2 = a >> b; sh3 = a >>> b;
            a += 1; a -= 1; a *= 2; a /= 2; a %= 2; a &= 1; a |= 1; a ^= 1;
            a <<= 1; a >>= 1; a >>>= 1; a++; a--;
            arr = [1]; obj = {k: 1}; dot = obj.k; idx = arr[0];
            with (obj) { debugger; }
        "#;
        // sanity: the subject itself accepts this program
        let exec = pdf_subjects::mjs::subject().run(program);
        assert!(exec.valid, "composite program rejected: {:?}", exec.error);
        let found = found_tokens("mjs", program);
        let inv = crate::mjs_inventory();
        let missing: Vec<&str> = inv
            .tokens
            .iter()
            .map(|t| t.name)
            .filter(|n| !found.contains(n))
            .collect();
        assert!(missing.is_empty(), "unproducible tokens: {missing:?}");
    }

    #[test]
    fn every_tinyc_inventory_token_is_producible() {
        let program = b"{a=1;if(a<2)a=a+3-1;else;do;while(0);while(0){;}(a);}";
        let exec = pdf_subjects::tinyc::subject().run(program);
        assert!(exec.valid, "composite program rejected: {:?}", exec.error);
        let found = found_tokens("tinyC", program);
        let inv = crate::tinyc_inventory();
        let missing: Vec<&str> = inv
            .tokens
            .iter()
            .map(|t| t.name)
            .filter(|n| !found.contains(n))
            .collect();
        assert!(missing.is_empty(), "unproducible tokens: {missing:?}");
    }

    #[test]
    fn unknown_subject_scans_empty() {
        assert!(found_tokens("nope", b"anything").is_empty());
    }
}

//! Automatic token discovery: mining a [`Dictionary`] from comparison
//! feedback and from the valid-input corpus.
//!
//! Two sources, per the ROADMAP item this module closes:
//!
//! - **Comparisons.** The driver's event sinks surface the exact
//!   strings each rejection index was compared against (the
//!   `expected_tokens` of a `FailureSummary` in pdf-runtime). *Fuzzing
//!   with Fast Failure Feedback* observes that this set is a free,
//!   exact dictionary: a failed keyword-table `strcmp` hands over the
//!   whole keyword. These enter the miner via
//!   [`observe_comparison`](TokenMiner::observe_comparison).
//! - **Corpus.** Recurring substrings across the valid inputs a
//!   campaign already produced (the TokenDiscoveryFuzzer shape:
//!   n-gram counting with frequency and length filters, reduced to
//!   maximal repeats). These enter via
//!   [`observe_corpus_input`](TokenMiner::observe_corpus_input).
//!
//! Mining is **order-insensitive**: the miner keeps pure occurrence
//! counts in ordered maps, so observing the same multiset of
//! comparisons and corpus inputs in any order yields a byte-identical
//! [`Dictionary`] — the property that lets mined dictionaries ride in
//! journals and checkpoints without breaking bit-exact replay.

use std::collections::{BTreeMap, BTreeSet};

use crate::Dictionary;

/// Filters applied when reducing raw counts to a [`Dictionary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinerConfig {
    /// Shortest token kept (single characters carry no dictionary
    /// value; the driver's per-character substitution already covers
    /// them).
    pub min_len: usize,
    /// Longest substring counted from the corpus (comparison-mined
    /// tokens are exact and exempt — a parser that compares against a
    /// long keyword named that keyword itself).
    pub max_len: usize,
    /// A corpus substring must occur in at least this many inputs to
    /// count as recurring.
    pub min_corpus_count: u64,
    /// Cap on the mined dictionary size (comparison tokens rank first
    /// and are never displaced by corpus grams).
    pub max_tokens: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_len: 2,
            max_len: 16,
            min_corpus_count: 3,
            max_tokens: 64,
        }
    }
}

/// Accumulates token observations and reduces them to a [`Dictionary`].
///
/// # Example
///
/// ```
/// use pdf_tokens::TokenMiner;
///
/// let mut miner = TokenMiner::new();
/// // a failed strcmp surfaced the whole keyword:
/// miner.observe_comparison(b"while");
/// // three valid inputs share the substring "if":
/// miner.observe_corpus_input(b"if(a)b;");
/// miner.observe_corpus_input(b"if[c]d;");
/// miner.observe_corpus_input(b"if{e}f;");
/// let dict = miner.mine();
/// assert!(dict.contains(b"while"));
/// assert!(dict.contains(b"if"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenMiner {
    cfg: MinerConfig,
    /// Expected strings observed at rejection points, with occurrence
    /// counts. `BTreeMap` so iteration (and therefore ranking
    /// tie-breaks) is canonical regardless of observation order.
    cmp_counts: BTreeMap<Vec<u8>, u64>,
    /// Corpus substrings, counted once per input that contains them.
    gram_counts: BTreeMap<Vec<u8>, u64>,
    /// Inputs observed (for the frequency filter's denominator and the
    /// stats line).
    corpus_inputs: u64,
}

impl TokenMiner {
    /// A miner with the default [`MinerConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A miner with an explicit configuration.
    pub fn with_config(cfg: MinerConfig) -> Self {
        TokenMiner {
            cfg,
            ..Self::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.cfg
    }

    /// Records one expected string observed at a rejection point (the
    /// `expected_tokens` of a failure summary). Strings shorter than
    /// `min_len` are ignored — the single-character comparisons are the
    /// substitution baseline, not dictionary material.
    pub fn observe_comparison(&mut self, token: &[u8]) {
        if token.len() >= self.cfg.min_len {
            *self.cmp_counts.entry(token.to_vec()).or_insert(0) += 1;
        }
    }

    /// Records one valid corpus input: every distinct substring with
    /// length in `[min_len, max_len]` is counted once for this input,
    /// so a token repeated within a single input is not over-weighted.
    pub fn observe_corpus_input(&mut self, input: &[u8]) {
        self.corpus_inputs += 1;
        let mut seen: BTreeSet<&[u8]> = BTreeSet::new();
        for len in self.cfg.min_len..=self.cfg.max_len.min(input.len()) {
            for gram in input.windows(len) {
                seen.insert(gram);
            }
        }
        for gram in seen {
            *self.gram_counts.entry(gram.to_vec()).or_insert(0) += 1;
        }
    }

    /// Number of comparison observations recorded (with multiplicity).
    pub fn comparison_observations(&self) -> u64 {
        self.cmp_counts.values().sum()
    }

    /// Number of corpus inputs observed.
    pub fn corpus_inputs(&self) -> u64 {
        self.corpus_inputs
    }

    /// Reduces the accumulated counts to a [`Dictionary`].
    ///
    /// Comparison-mined tokens come first, ranked by occurrence count
    /// descending with byte order breaking ties — they are exact (the
    /// parser itself named them) and need no frequency filter. Corpus
    /// grams follow, kept only when they recur in at least
    /// `min_corpus_count` inputs and survive the maximal-repeat filter:
    /// a gram contained in a strictly longer gram with the same count
    /// only ever occurs inside it (`"whil"` inside `"while"`) and is
    /// dropped. The result is truncated to `max_tokens`.
    ///
    /// Deterministic by construction: counts are permutation-invariant
    /// over observations and every ordering has a total tie-break.
    pub fn mine(&self) -> Dictionary {
        let mut ranked: Vec<Vec<u8>> = Vec::new();

        let mut cmp: Vec<(&Vec<u8>, u64)> = self.cmp_counts.iter().map(|(t, &n)| (t, n)).collect();
        cmp.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (t, _) in cmp {
            ranked.push(t.clone());
        }

        let recurring: Vec<(&Vec<u8>, u64)> = self
            .gram_counts
            .iter()
            .filter(|&(_, &n)| n >= self.cfg.min_corpus_count)
            .map(|(t, &n)| (t, n))
            .collect();
        let mut grams: Vec<(&Vec<u8>, u64)> = recurring
            .iter()
            .filter(|(g, n)| {
                !recurring.iter().any(|(h, m)| {
                    h.len() > g.len() && m == n && h.windows(g.len()).any(|w| w == &g[..])
                })
            })
            .copied()
            .collect();
        grams.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (t, _) in grams {
            ranked.push(t.clone());
        }

        let mut dict = Dictionary::from_tokens(ranked).into_tokens();
        dict.truncate(self.cfg.max_tokens);
        Dictionary::from_tokens(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_tokens_are_kept_without_frequency() {
        let mut miner = TokenMiner::new();
        miner.observe_comparison(b"instanceof");
        let dict = miner.mine();
        assert_eq!(dict.tokens(), &[b"instanceof".to_vec()]);
        assert_eq!(miner.comparison_observations(), 1);
    }

    #[test]
    fn short_comparisons_are_ignored() {
        let mut miner = TokenMiner::new();
        miner.observe_comparison(b"a");
        miner.observe_comparison(b"");
        assert!(miner.mine().is_empty());
        assert_eq!(miner.comparison_observations(), 0);
    }

    #[test]
    fn comparison_rank_is_count_then_bytes() {
        let mut miner = TokenMiner::new();
        miner.observe_comparison(b"zz");
        miner.observe_comparison(b"aa");
        miner.observe_comparison(b"zz");
        let dict = miner.mine();
        assert_eq!(dict.tokens(), &[b"zz".to_vec(), b"aa".to_vec()]);
    }

    #[test]
    fn corpus_grams_need_recurrence() {
        let mut miner = TokenMiner::new();
        miner.observe_corpus_input(b"null");
        miner.observe_corpus_input(b"null");
        assert!(miner.mine().is_empty(), "2 < min_corpus_count");
        miner.observe_corpus_input(b"null");
        assert!(miner.mine().contains(b"null"));
    }

    #[test]
    fn maximal_repeat_filter_drops_contained_grams() {
        let mut miner = TokenMiner::new();
        for _ in 0..3 {
            miner.observe_corpus_input(b"while");
        }
        let dict = miner.mine();
        assert!(dict.contains(b"while"));
        assert!(
            !dict.contains(b"whil") && !dict.contains(b"hile"),
            "contained grams with equal counts must be dropped: {:?}",
            dict.tokens()
        );
    }

    #[test]
    fn contained_gram_with_independent_occurrences_survives() {
        let mut miner = TokenMiner::new();
        for _ in 0..3 {
            miner.observe_corpus_input(b"while");
        }
        for _ in 0..2 {
            miner.observe_corpus_input(b"whx");
        }
        let dict = miner.mine();
        // "wh" occurs in 5 inputs, "while" only in 3: "wh" recurs outside
        // the longer gram and is kept.
        assert!(dict.contains(b"wh"), "{:?}", dict.tokens());
        assert!(dict.contains(b"while"));
    }

    #[test]
    fn repeats_within_one_input_count_once() {
        let mut miner = TokenMiner::new();
        miner.observe_corpus_input(b"ababab");
        assert!(miner.mine().is_empty(), "one input is not recurrence");
        assert_eq!(miner.corpus_inputs(), 1);
    }

    #[test]
    fn mining_is_order_insensitive() {
        let inputs: [&[u8]; 4] = [b"if(a)b;", b"while(c)d;", b"if(e)f;", b"if(g)h;"];
        let cmps: [&[u8]; 3] = [b"while", b"else", b"while"];
        let mut forward = TokenMiner::new();
        for i in &inputs {
            forward.observe_corpus_input(i);
        }
        for c in &cmps {
            forward.observe_comparison(c);
        }
        let mut backward = TokenMiner::new();
        for c in cmps.iter().rev() {
            backward.observe_comparison(c);
        }
        for i in inputs.iter().rev() {
            backward.observe_corpus_input(i);
        }
        assert_eq!(forward.mine(), backward.mine());
    }

    #[test]
    fn max_tokens_caps_the_dictionary() {
        let cfg = MinerConfig {
            max_tokens: 2,
            ..MinerConfig::default()
        };
        let mut miner = TokenMiner::with_config(cfg);
        miner.observe_comparison(b"aa");
        miner.observe_comparison(b"bb");
        miner.observe_comparison(b"cc");
        assert_eq!(miner.mine().len(), 2);
    }

    #[test]
    fn comparison_tokens_rank_ahead_of_corpus_grams() {
        let mut miner = TokenMiner::new();
        for _ in 0..5 {
            miner.observe_corpus_input(b"zzz");
        }
        miner.observe_comparison(b"if");
        let toks = miner.mine().into_tokens();
        assert_eq!(toks[0], b"if".to_vec());
    }
}

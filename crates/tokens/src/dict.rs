//! The mined token dictionary and its `pdf-dict v1` text codec.
//!
//! A [`Dictionary`] is an ordered, duplicate-free list of byte-string
//! tokens, produced by [`TokenMiner::mine`](crate::TokenMiner::mine)
//! and consumed by the driver's whole-token substitution
//! (`DriverConfig::dictionary` in pdf-core) and by AFL's dictionary
//! mutation stages (`AflConfig::dictionary` in pdf-afl). Order is part
//! of the contract: both consumers iterate tokens in stored order, so a
//! dictionary round-tripped through its text encoding drives campaigns
//! byte-identically.

use std::fmt;
use std::path::Path;

use pdf_runtime::Digest;

/// An ordered, duplicate-free list of mined tokens.
///
/// # Example
///
/// ```
/// use pdf_tokens::Dictionary;
///
/// let dict = Dictionary::from_tokens(vec![b"while".to_vec(), b"if".to_vec()]);
/// assert_eq!(dict.len(), 2);
/// let text = dict.encode();
/// let back = Dictionary::decode(&text).unwrap();
/// assert_eq!(back, dict);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    tokens: Vec<Vec<u8>>,
}

/// Errors decoding a `pdf-dict v1` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictError {
    /// The header line is missing or not `pdf-dict v1`.
    Header(String),
    /// A record line could not be parsed.
    Parse {
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file's token count or digest does not match its records.
    Integrity(String),
    /// The file could not be read or written.
    Io(String),
}

impl fmt::Display for DictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictError::Header(m) => write!(f, "bad dictionary header: {m}"),
            DictError::Parse { line, message } => {
                write!(f, "bad dictionary record at line {line}: {message}")
            }
            DictError::Integrity(m) => write!(f, "dictionary integrity check failed: {m}"),
            DictError::Io(m) => write!(f, "dictionary io error: {m}"),
        }
    }
}

impl std::error::Error for DictError {}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string {s:?}"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit in {s:?}"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit in {s:?}"))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

impl Dictionary {
    /// Builds a dictionary from `tokens`, dropping empty tokens and
    /// duplicates while preserving first-occurrence order.
    pub fn from_tokens(tokens: Vec<Vec<u8>>) -> Self {
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(tokens.len());
        for t in tokens {
            if !t.is_empty() && !out.contains(&t) {
                out.push(t);
            }
        }
        Dictionary { tokens: out }
    }

    /// The tokens, in stored order.
    pub fn tokens(&self) -> &[Vec<u8>] {
        &self.tokens
    }

    /// Consumes the dictionary into its token list (the shape
    /// `DriverConfig::dictionary` and `AflConfig::dictionary` take).
    pub fn into_tokens(self) -> Vec<Vec<u8>> {
        self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the dictionary holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether the dictionary contains exactly this token.
    pub fn contains(&self, token: &[u8]) -> bool {
        self.tokens.iter().any(|t| t == token)
    }

    /// Tokens at least `min_len` bytes long, in stored order.
    pub fn tokens_of_min_len(&self, min_len: usize) -> Vec<&[u8]> {
        self.tokens
            .iter()
            .filter(|t| t.len() >= min_len)
            .map(Vec::as_slice)
            .collect()
    }

    /// FNV-1a digest over the token list (order-sensitive, so two
    /// dictionaries that drive campaigns identically digest equally).
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_str("pdf-dict-v1");
        d.write_u64(self.tokens.len() as u64);
        for t in &self.tokens {
            d.write_bytes(t);
        }
        d.finish()
    }

    /// Encodes the dictionary as `pdf-dict v1` text: a header carrying
    /// the token count and digest, then one `tok hex=<bytes>` record
    /// per token in stored order. Tokens are hex-encoded so arbitrary
    /// bytes (newlines, non-UTF-8) survive the line-oriented format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pdf-dict v1 tokens={} digest={:016x}\n",
            self.tokens.len(),
            self.digest()
        ));
        for t in &self.tokens {
            out.push_str(&format!("tok hex={}\n", to_hex(t)));
        }
        out
    }

    /// Decodes `pdf-dict v1` text. `decode(encode(d)) == d` for every
    /// dictionary; the header's count and digest are verified so a torn
    /// or hand-edited file is rejected instead of silently driving a
    /// different campaign.
    pub fn decode(text: &str) -> Result<Self, DictError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| DictError::Header("empty file".to_string()))?;
        let mut want_tokens: Option<usize> = None;
        let mut want_digest: Option<u64> = None;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("pdf-dict") || parts.next() != Some("v1") {
            return Err(DictError::Header(format!(
                "expected `pdf-dict v1 ...`, got {header:?}"
            )));
        }
        for part in parts {
            if let Some(n) = part.strip_prefix("tokens=") {
                want_tokens =
                    Some(n.parse().map_err(|_| {
                        DictError::Header(format!("bad token count in {header:?}"))
                    })?);
            } else if let Some(h) = part.strip_prefix("digest=") {
                want_digest = Some(
                    u64::from_str_radix(h, 16)
                        .map_err(|_| DictError::Header(format!("bad digest in {header:?}")))?,
                );
            }
        }
        let mut tokens = Vec::new();
        for (i, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let rest = line.strip_prefix("tok ").ok_or_else(|| DictError::Parse {
                line: i + 1,
                message: format!("expected `tok hex=...`, got {line:?}"),
            })?;
            let hex = rest.strip_prefix("hex=").ok_or_else(|| DictError::Parse {
                line: i + 1,
                message: format!("expected `hex=` field, got {rest:?}"),
            })?;
            let bytes = from_hex(hex).map_err(|message| DictError::Parse {
                line: i + 1,
                message,
            })?;
            if bytes.is_empty() {
                return Err(DictError::Parse {
                    line: i + 1,
                    message: "empty token".to_string(),
                });
            }
            tokens.push(bytes);
        }
        let dict = Dictionary { tokens };
        if let Some(n) = want_tokens {
            if n != dict.tokens.len() {
                return Err(DictError::Integrity(format!(
                    "header claims {n} tokens, file holds {}",
                    dict.tokens.len()
                )));
            }
        }
        if dict.tokens.len() != Dictionary::from_tokens(dict.tokens.clone()).tokens.len() {
            return Err(DictError::Integrity("duplicate token".to_string()));
        }
        if let Some(h) = want_digest {
            if h != dict.digest() {
                return Err(DictError::Integrity(format!(
                    "header digest {:016x} does not match content digest {:016x}",
                    h,
                    dict.digest()
                )));
            }
        }
        Ok(dict)
    }

    /// Writes [`encode`](Self::encode) to a file.
    ///
    /// # Errors
    ///
    /// [`DictError::Io`] on the underlying write error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DictError> {
        std::fs::write(path, self.encode()).map_err(|e| DictError::Io(e.to_string()))
    }

    /// Reads and [`decode`](Self::decode)s a file.
    ///
    /// # Errors
    ///
    /// [`DictError::Io`] when the file cannot be read, plus every decode
    /// error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DictError> {
        let text = std::fs::read_to_string(path).map_err(|e| DictError::Io(e.to_string()))?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tokens_dedups_preserving_order() {
        let dict = Dictionary::from_tokens(vec![
            b"while".to_vec(),
            b"if".to_vec(),
            b"while".to_vec(),
            Vec::new(),
            b"do".to_vec(),
        ]);
        assert_eq!(
            dict.tokens(),
            &[b"while".to_vec(), b"if".to_vec(), b"do".to_vec()]
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let dict = Dictionary::from_tokens(vec![
            b"while".to_vec(),
            b"\n\"\x00\xff".to_vec(),
            b"=".to_vec(),
        ]);
        let back = Dictionary::decode(&dict.encode()).unwrap();
        assert_eq!(back, dict);
        assert_eq!(back.digest(), dict.digest());
    }

    #[test]
    fn empty_dictionary_round_trips() {
        let dict = Dictionary::default();
        assert!(dict.is_empty());
        assert_eq!(Dictionary::decode(&dict.encode()).unwrap(), dict);
    }

    #[test]
    fn decode_rejects_bad_header() {
        assert!(matches!(
            Dictionary::decode("pdf-journal v1\n"),
            Err(DictError::Header(_))
        ));
        assert!(matches!(Dictionary::decode(""), Err(DictError::Header(_))));
    }

    #[test]
    fn decode_rejects_bad_records() {
        let text = "pdf-dict v1 tokens=1 digest=0000000000000000\nnope\n";
        assert!(matches!(
            Dictionary::decode(text),
            Err(DictError::Parse { .. })
        ));
        let text = "pdf-dict v1\ntok hex=zz\n";
        assert!(matches!(
            Dictionary::decode(text),
            Err(DictError::Parse { .. })
        ));
        let text = "pdf-dict v1\ntok hex=abc\n";
        assert!(matches!(
            Dictionary::decode(text),
            Err(DictError::Parse { .. })
        ));
    }

    #[test]
    fn decode_rejects_count_and_digest_drift() {
        let dict = Dictionary::from_tokens(vec![b"true".to_vec()]);
        let torn = dict.encode().lines().next().unwrap().to_string() + "\n";
        assert!(matches!(
            Dictionary::decode(&torn),
            Err(DictError::Integrity(_))
        ));
        let edited = dict.encode().replace("hex=74727565", "hex=66616c7365");
        assert!(matches!(
            Dictionary::decode(&edited),
            Err(DictError::Integrity(_))
        ));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = Dictionary::from_tokens(vec![b"a".to_vec(), b"b".to_vec()]);
        let b = Dictionary::from_tokens(vec![b"b".to_vec(), b"a".to_vec()]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn min_len_filter() {
        let dict = Dictionary::from_tokens(vec![b"{".to_vec(), b"null".to_vec()]);
        assert_eq!(dict.tokens_of_min_len(2), vec![&b"null"[..]]);
        assert!(dict.contains(b"{"));
        assert!(!dict.contains(b"}"));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("pdf-dict-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.dict");
        let dict = Dictionary::from_tokens(vec![b"return".to_vec()]);
        dict.save(&path).unwrap();
        assert_eq!(Dictionary::load(&path).unwrap(), dict);
        std::fs::remove_file(&path).ok();
    }
}

//! Miner determinism properties: mining is order-insensitive over any
//! permutation of its observations, and the `pdf-dict v1` codec
//! round-trips every dictionary byte-exactly. These are the properties
//! that let a mined dictionary ride in journals and checkpoints without
//! breaking bit-exact replay.

use proptest::collection::vec;
use proptest::prelude::*;

use pdf_tokens::{Dictionary, MinerConfig, TokenMiner};

fn token() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..10)
}

fn corpus_input() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..20)
}

/// Deterministic permutation of `items` derived from `seed` (the shim
/// has no shuffle strategy; a seeded Fisher–Yates is enough to exercise
/// arbitrary orders).
fn permuted<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #[test]
    fn mining_is_order_insensitive(
        corpus in vec(corpus_input(), 0..10),
        cmps in vec(token(), 0..10),
        seed in any::<u64>(),
    ) {
        let mut forward = TokenMiner::new();
        for c in &cmps {
            forward.observe_comparison(c);
        }
        for i in &corpus {
            forward.observe_corpus_input(i);
        }
        let mut shuffled = TokenMiner::new();
        for i in &permuted(&corpus, seed) {
            shuffled.observe_corpus_input(i);
        }
        for c in &permuted(&cmps, seed.wrapping_add(1)) {
            shuffled.observe_comparison(c);
        }
        prop_assert_eq!(forward.mine(), shuffled.mine());
        prop_assert_eq!(
            forward.comparison_observations(),
            shuffled.comparison_observations()
        );
    }

    #[test]
    fn dictionary_codec_round_trips(tokens in vec(token(), 0..16)) {
        let dict = Dictionary::from_tokens(tokens);
        let text = dict.encode();
        let back = Dictionary::decode(&text).expect("codec must accept its own output");
        prop_assert_eq!(&back, &dict);
        prop_assert_eq!(back.digest(), dict.digest());
        // canonical: re-encoding the decoded dictionary is byte-identical
        prop_assert_eq!(back.encode(), text);
    }

    #[test]
    fn mined_dictionaries_round_trip(
        corpus in vec(corpus_input(), 0..8),
        cmps in vec(token(), 0..8),
    ) {
        let mut miner = TokenMiner::with_config(MinerConfig {
            min_corpus_count: 2,
            ..MinerConfig::default()
        });
        for c in &cmps {
            miner.observe_comparison(c);
        }
        for i in &corpus {
            miner.observe_corpus_input(i);
        }
        let dict = miner.mine();
        prop_assert_eq!(Dictionary::decode(&dict.encode()).unwrap(), dict);
    }
}

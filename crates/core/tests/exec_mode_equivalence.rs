//! Property tests for the execution-mode contract of the tiered
//! driver: whatever `ExecMode` a campaign runs under, the valid-input
//! set it reports is exactly the set full instrumentation certifies.
//!
//! Fast and tiered campaigns derive candidates from the reduced
//! fast-failure signal, so their *search trajectories* legitimately
//! differ from a full-instrumentation campaign at the same budget (the
//! coverage-vs-throughput trade measured in EXPERIMENTS.md). What must
//! never differ is the meaning of `valid_inputs`: every accepting run
//! is escalated to full instrumentation before it is reported, so the
//! reported set is precisely what a full-mode re-execution of those
//! inputs accepts — no fast-tier false positives, no phantom coverage.

use pdf_core::{DriverConfig, ExecMode, Fuzzer};
use proptest::prelude::*;

proptest! {
    // campaigns are expensive next to a single parse; a handful of
    // randomized (seed, budget) points per subject is plenty on top of
    // the fixed-seed unit tests in driver.rs
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_mode_reports_exactly_the_full_instrumentation_valid_set(
        seed in 1u64..10_000,
        max_execs in 2_000u64..3_000,
    ) {
        for subject in [
            pdf_subjects::arith::subject(),
            pdf_subjects::dyck::subject(),
        ] {
            let mut sets = Vec::new();
            for mode in [ExecMode::Full, ExecMode::Fast, ExecMode::Tiered] {
                let cfg = DriverConfig {
                    seed,
                    max_execs,
                    exec_mode: mode,
                    ..DriverConfig::default()
                };
                let report = Fuzzer::new(subject, cfg).run();
                prop_assert!(
                    !report.valid_inputs.is_empty(),
                    "{mode:?} on {} found nothing at seed {seed}",
                    subject.name()
                );
                // the reported set must survive full-fidelity replay:
                // re-running each input under the FullLog sink accepts
                // it, so the set is the one full instrumentation finds
                // on these inputs
                for input in &report.valid_inputs {
                    prop_assert!(
                        subject.run(input).valid,
                        "{mode:?} on {} reported {:?} valid, full instrumentation rejects it",
                        subject.name(),
                        String::from_utf8_lossy(input)
                    );
                }
                // valid coverage comes from escalated full runs only,
                // so it can never exceed total observed coverage
                for b in report.valid_branches.iter() {
                    prop_assert!(report.all_branches.contains(b));
                }
                sets.push(report.valid_inputs);
            }
            // no mode may report duplicate valid inputs — each set is
            // a set under full instrumentation's identity too
            for set in &sets {
                let unique: std::collections::BTreeSet<_> = set.iter().collect();
                prop_assert_eq!(unique.len(), set.len());
            }
        }
    }
}

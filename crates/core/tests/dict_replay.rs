//! Determinism of dictionary-enabled and token-mining campaigns: the
//! decision-stream journal and the checkpoint must both reproduce the
//! campaign digest bit-exactly, and mining — an observation-only tap —
//! must not perturb the search at all.

use pdf_core::{CampaignBudget, DriverConfig, Fuzzer};

fn dict_config(seed: u64, max_execs: u64) -> DriverConfig {
    DriverConfig {
        seed,
        max_execs,
        dictionary: vec![b"while".to_vec(), b"if".to_vec(), b"else".to_vec()],
        mine_tokens: true,
        ..DriverConfig::default()
    }
}

/// A scratch file that cleans up after itself even on panic.
struct ScratchFile(std::path::PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("pdf-dict-test-{}-{name}", std::process::id()));
        ScratchFile(p)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn dict_campaign_replays_digest_identical_from_journal() {
    let cfg = dict_config(11, 2_000);
    let subject = pdf_subjects::tinyc::subject();
    let recorded = Fuzzer::new(subject, cfg.clone()).run();
    assert!(
        !recorded.mined_tokens.is_empty(),
        "a mining campaign against a keyword parser observes tokens"
    );
    let replayed = Fuzzer::replaying(subject, cfg, recorded.decisions.clone()).run();
    assert_eq!(recorded.digest(), replayed.digest());
    assert_eq!(recorded.mined_tokens, replayed.mined_tokens);
}

#[test]
fn dict_campaign_resumes_from_checkpoint_digest_identical() {
    let cfg = dict_config(3, 1_500);
    let subject = pdf_subjects::tinyc::subject();
    let straight = Fuzzer::new(subject, cfg.clone()).run();

    for pause_at in [1u64, 500] {
        let file = ScratchFile::new(&format!("resume-{pause_at}"));
        let mut victim = Fuzzer::new(subject, cfg.clone());
        victim.run_until(&CampaignBudget::execs(pause_at));
        victim.checkpoint_to(&file.0).expect("checkpoint written");
        drop(victim);

        let mut resumed =
            Fuzzer::resume_from(subject, cfg.clone(), &file.0).expect("resume succeeds");
        assert!(resumed
            .run_until(&CampaignBudget::unbounded())
            .is_finished());
        let report = resumed.into_report();
        assert_eq!(
            report.digest(),
            straight.digest(),
            "paused at {pause_at}: digest drifted"
        );
        assert_eq!(
            report.mined_tokens, straight.mined_tokens,
            "paused at {pause_at}: mined counts drifted"
        );
    }
}

#[test]
fn mining_is_observation_only() {
    // Same seed with and without the mining tap: the search must be
    // byte-identical — mining draws no RNG byte and enqueues nothing.
    let subject = pdf_subjects::tinyc::subject();
    let plain = DriverConfig {
        seed: 7,
        max_execs: 1_200,
        ..DriverConfig::default()
    };
    let mining = DriverConfig {
        mine_tokens: true,
        ..plain.clone()
    };
    let a = Fuzzer::new(subject, plain).run();
    let b = Fuzzer::new(subject, mining).run();
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.valid_inputs, b.valid_inputs);
    assert!(a.mined_tokens.is_empty());
    assert!(!b.mined_tokens.is_empty());
}

#[test]
fn dictionary_drift_refuses_resume() {
    let cfg = dict_config(5, 1_000);
    let subject = pdf_subjects::tinyc::subject();
    let file = ScratchFile::new("drift");
    let mut victim = Fuzzer::new(subject, cfg.clone());
    victim.run_until(&CampaignBudget::execs(200));
    victim.checkpoint_to(&file.0).expect("checkpoint written");
    drop(victim);

    let drifted = DriverConfig {
        dictionary: vec![b"for".to_vec()],
        ..cfg
    };
    let err = Fuzzer::resume_from(subject, drifted, &file.0).expect_err("drift must be detected");
    assert!(err.to_string().contains("drift"), "unhelpful error: {err}");
}

//! Kill-and-resume determinism, end to end through the filesystem: a
//! campaign paused mid-flight, checkpointed to a file with
//! [`Fuzzer::checkpoint_to`], and resumed with [`Fuzzer::resume_from`]
//! must finish with exactly the report an uninterrupted campaign
//! produces — same digest, same valid inputs, same decision stream.

use pdf_core::{CampaignBudget, DriverConfig, Fuzzer, StopReason};

fn config(seed: u64, max_execs: u64) -> DriverConfig {
    DriverConfig {
        seed,
        max_execs,
        ..DriverConfig::default()
    }
}

/// A scratch file that cleans up after itself even on panic.
struct ScratchFile(std::path::PathBuf);

impl ScratchFile {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("pdf-checkpoint-test-{}-{name}", std::process::id()));
        ScratchFile(p)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn killed_campaign_resumes_to_the_uninterrupted_report() {
    for (subject, name) in [
        (pdf_subjects::arith::subject(), "arith"),
        (pdf_subjects::json::subject(), "json"),
    ] {
        let cfg = config(5, 1_500);
        let straight = Fuzzer::new(subject, cfg.clone()).run();

        for pause_at in [1u64, 400, 1_499] {
            let file = ScratchFile::new(&format!("{name}-{pause_at}"));
            let mut victim = Fuzzer::new(subject, cfg.clone());
            let stop = victim.run_until(&CampaignBudget::execs(pause_at));
            // an iteration can spend two executions, so a pause point
            // near the campaign's own budget may finish it instead
            assert!(
                stop == StopReason::PausedExecs || stop == StopReason::Finished,
                "{name} at {pause_at}: {stop:?}"
            );
            victim.checkpoint_to(&file.0).expect("checkpoint written");
            drop(victim); // the "kill": nothing survives but the file

            let mut resumed =
                Fuzzer::resume_from(subject, cfg.clone(), &file.0).expect("resume succeeds");
            assert!(resumed
                .run_until(&CampaignBudget::unbounded())
                .is_finished());
            let report = resumed.into_report();
            assert_eq!(
                report.digest(),
                straight.digest(),
                "{name} paused at {pause_at}: digest drifted"
            );
            assert_eq!(report.valid_inputs, straight.valid_inputs);
            assert_eq!(report.decisions, straight.decisions);
            assert_eq!(report.stats.hangs, straight.stats.hangs);
            assert_eq!(report.stats.crashes, straight.stats.crashes);
        }
    }
}

#[test]
fn double_pause_then_resume_still_matches() {
    let subject = pdf_subjects::dyck::subject();
    let cfg = config(9, 1_000);
    let straight = Fuzzer::new(subject, cfg.clone()).run();

    // first leg: pause, checkpoint, kill
    let file_a = ScratchFile::new("leg-a");
    let mut f = Fuzzer::new(subject, cfg.clone());
    f.run_until(&CampaignBudget::execs(250));
    f.checkpoint_to(&file_a.0).unwrap();
    drop(f);

    // second leg: resume, pause again, checkpoint again, kill again
    let file_b = ScratchFile::new("leg-b");
    let mut f = Fuzzer::resume_from(subject, cfg.clone(), &file_a.0).unwrap();
    f.run_until(&CampaignBudget::execs(600));
    f.checkpoint_to(&file_b.0).unwrap();
    drop(f);

    // third leg: resume and finish
    let mut f = Fuzzer::resume_from(subject, cfg, &file_b.0).unwrap();
    assert!(f.run_until(&CampaignBudget::unbounded()).is_finished());
    let report = f.into_report();
    assert_eq!(report.digest(), straight.digest());
    assert_eq!(report.valid_inputs, straight.valid_inputs);
}

#[test]
fn resume_from_missing_file_is_an_io_error() {
    let subject = pdf_subjects::arith::subject();
    let err = Fuzzer::resume_from(subject, config(1, 100), "/nonexistent/checkpoint")
        .expect_err("must fail");
    assert!(
        err.to_string().contains("checkpoint"),
        "unhelpful error: {err}"
    );
}

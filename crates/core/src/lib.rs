//! pFuzzer — parser-directed fuzzing (Mathis et al., PLDI 2019).
//!
//! The core idea: feed a growing prefix to the instrumented program,
//! observe the comparisons made against the last (rejected) character,
//! and *substitute* that character with one of the values it was
//! compared to; when the parser instead runs out of input (an EOF
//! access), *append* a random character. A heuristic priority queue
//! (Algorithm 1 of the paper) decides which candidate to try next,
//! trading off newly covered branches, input length, replacement length,
//! recursive-descent stack depth and search depth — so the search both
//! discovers new syntax and "closes" prefixes into complete valid
//! inputs.
//!
//! # Example
//!
//! ```
//! use pdf_core::{DriverConfig, Fuzzer};
//!
//! let subject = pdf_subjects::arith::subject();
//! let config = DriverConfig { seed: 1, max_execs: 4_000, ..DriverConfig::default() };
//! let report = Fuzzer::new(subject, config).run();
//! assert!(!report.valid_inputs.is_empty());
//! // every produced input really is valid — by construction
//! for input in &report.valid_inputs {
//!     assert!(subject.run(input).valid);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod checkpoint;
mod config;
mod driver;
mod heuristic;
mod queue;

pub use budget::{CampaignBudget, StopReason, DEADLINE_CHECK_INTERVAL};
pub use checkpoint::{Checkpoint, CheckpointError, ErrorClass, QueueItemSnapshot, QueueSnapshot};
pub use config::{DriverConfig, ExecMode, ExtensionMode, HeuristicConfig, SearchMode, SinkMode};
pub use driver::{FuzzReport, Fuzzer, SyncPoint, TraceStep};
pub use heuristic::score;
pub use queue::{CandidateQueue, QueueEntry};

//! The candidate-scoring heuristic (Algorithm 1, lines 47–51).

use crate::config::HeuristicConfig;
use crate::queue::QueueEntry;
use pdf_runtime::BranchSet;

/// Scores a queue entry against the current set of branches covered by
/// valid inputs (`vBr`) and the number of times its execution path has
/// already been taken.
///
/// Higher scores are dequeued first. The terms follow the paper:
///
/// ```text
/// cov ← size(branches \ vBr)          (line 48)
/// cov ← cov − len(inp) + 2·len(c)     (line 49)
/// cov ← cov − avgStackSize() ∓ numParents   (line 50; see below)
/// cov ← cov − pathSeenCount           (Section 3.2, path dedup)
/// ```
///
/// The paper's listing *adds* `numParents` while its prose says inputs
/// with fewer parents should rank higher; the default configuration
/// follows the prose (subtract), and
/// [`HeuristicConfig::paper_literal_parent_sign`] restores the listing.
pub fn score(entry: &QueueEntry, v_br: &BranchSet, path_seen: usize, cfg: &HeuristicConfig) -> f64 {
    let mut cov = 0.0;
    if cfg.use_new_branches {
        cov += entry.parent_branches.difference_size(v_br) as f64;
    }
    if cfg.use_input_length {
        cov -= entry.input.len() as f64;
    }
    if cfg.use_replacement_len {
        cov += 2.0 * entry.replacement_len as f64;
    }
    if cfg.use_stack_size {
        cov -= entry.avg_stack;
    }
    if cfg.use_parent_penalty {
        if cfg.paper_literal_parent_sign {
            cov += entry.num_parents as f64;
        } else {
            cov -= entry.num_parents as f64;
        }
    }
    if cfg.use_path_dedup {
        // Logarithmic damping: on permissive subjects a single hot path
        // (e.g. "identifier;") repeats thousands of times, and a linear
        // penalty would bury every candidate derived from it — including
        // the keyword substitutions the whole technique is about.
        cov -= (path_seen as f64).ln_1p();
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_runtime::{BranchId, SiteId};

    fn entry(
        input: &[u8],
        branches: &[u64],
        repl: usize,
        stack: f64,
        parents: usize,
    ) -> QueueEntry {
        QueueEntry {
            input: input.to_vec(),
            parent_branches: branches
                .iter()
                .map(|&r| BranchId::new(SiteId::from_raw(r), true))
                .collect(),
            replacement_len: repl,
            avg_stack: stack,
            num_parents: parents,
            path_hash: 0,
        }
    }

    #[test]
    fn new_branches_raise_score() {
        let cfg = HeuristicConfig::default();
        let v_br = BranchSet::new();
        let poor = entry(b"ab", &[], 1, 0.0, 0);
        let rich = entry(b"ab", &[1, 2, 3], 1, 0.0, 0);
        assert!(score(&rich, &v_br, 0, &cfg) > score(&poor, &v_br, 0, &cfg));
    }

    #[test]
    fn already_covered_branches_do_not_count() {
        let cfg = HeuristicConfig::default();
        let v_br: BranchSet = [BranchId::new(SiteId::from_raw(1), true)]
            .into_iter()
            .collect();
        let e = entry(b"ab", &[1], 1, 0.0, 0);
        let f = entry(b"ab", &[], 1, 0.0, 0);
        assert_eq!(score(&e, &v_br, 0, &cfg), score(&f, &v_br, 0, &cfg));
    }

    #[test]
    fn longer_inputs_score_lower() {
        let cfg = HeuristicConfig::default();
        let v_br = BranchSet::new();
        let short = entry(b"ab", &[], 1, 0.0, 0);
        let long = entry(b"abcdefgh", &[], 1, 0.0, 0);
        assert!(score(&short, &v_br, 0, &cfg) > score(&long, &v_br, 0, &cfg));
    }

    #[test]
    fn keyword_replacements_score_higher() {
        let cfg = HeuristicConfig::default();
        let v_br = BranchSet::new();
        let ch = entry(b"whX", &[], 1, 0.0, 0);
        let kw = entry(b"while", &[], 3, 0.0, 0); // "ile" spliced in
        assert!(score(&kw, &v_br, 0, &cfg) > score(&ch, &v_br, 0, &cfg));
    }

    #[test]
    fn deep_stacks_score_lower() {
        let cfg = HeuristicConfig::default();
        let v_br = BranchSet::new();
        let shallow = entry(b"ab", &[], 1, 1.0, 0);
        let deep = entry(b"ab", &[], 1, 9.0, 0);
        assert!(score(&shallow, &v_br, 0, &cfg) > score(&deep, &v_br, 0, &cfg));
    }

    #[test]
    fn parent_sign_follows_config() {
        let v_br = BranchSet::new();
        let few = entry(b"ab", &[], 1, 0.0, 1);
        let many = entry(b"ab", &[], 1, 0.0, 9);
        let prose = HeuristicConfig::default();
        assert!(score(&few, &v_br, 0, &prose) > score(&many, &v_br, 0, &prose));
        let literal = HeuristicConfig {
            paper_literal_parent_sign: true,
            ..HeuristicConfig::default()
        };
        assert!(score(&few, &v_br, 0, &literal) < score(&many, &v_br, 0, &literal));
    }

    #[test]
    fn repeated_paths_score_lower() {
        let cfg = HeuristicConfig::default();
        let v_br = BranchSet::new();
        let e = entry(b"ab", &[], 1, 0.0, 0);
        assert!(score(&e, &v_br, 0, &cfg) > score(&e, &v_br, 5, &cfg));
    }

    #[test]
    fn disabled_heuristic_scores_everything_zero() {
        let cfg = HeuristicConfig::disabled();
        let v_br = BranchSet::new();
        let e = entry(b"abcdef", &[1, 2], 3, 7.0, 4);
        assert_eq!(score(&e, &v_br, 9, &cfg), 0.0);
    }
}

//! Campaign budgets: pause points for long-running campaigns.
//!
//! The paper runs each fuzzer for 48 hours per subject; at that scale a
//! campaign must be pausable (to checkpoint) and bounded in wall time,
//! not just in executions. A [`CampaignBudget`] expresses *when to come
//! up for air*: [`Fuzzer::run_until`](crate::Fuzzer::run_until) drives
//! the search until either the campaign finishes (its configured
//! `max_execs` or `max_valid_inputs` is reached) or the budget's pause
//! point hits — at which point the campaign can be checkpointed,
//! inspected, or simply continued with another `run_until` call.
//!
//! Pausing never changes the search: the pause checks sit at the top of
//! the driver loop, on the same iteration boundary as the termination
//! checks, so a paused-and-resumed campaign traverses byte-identical
//! iterations to an uninterrupted one.

use std::time::Duration;

/// How often (in driver-loop iterations) the wall-clock deadline is
/// polled. Reading the clock costs a syscall on some platforms; exec
/// budget checks are a plain counter compare and happen every iteration.
pub const DEADLINE_CHECK_INTERVAL: u64 = 64;

/// When [`Fuzzer::run_until`](crate::Fuzzer::run_until) should pause.
///
/// Both limits are optional; the default
/// ([`unbounded`](CampaignBudget::unbounded)) never pauses and runs the
/// campaign to completion.
///
/// # Example
///
/// Pause a campaign every 500 executions (to checkpoint, inspect, or
/// just breathe) until it finishes:
///
/// ```
/// use pdf_core::{CampaignBudget, DriverConfig, Fuzzer};
///
/// let cfg = DriverConfig { seed: 1, max_execs: 2_000, ..DriverConfig::default() };
/// let mut fuzzer = Fuzzer::new(pdf_subjects::csv::subject(), cfg);
/// let mut pauses = 0;
/// while !fuzzer.run_until(&CampaignBudget::execs(fuzzer.execs() + 500)).is_finished() {
///     pauses += 1; // a checkpoint could be taken here
/// }
/// assert!(pauses >= 3);
/// assert_eq!(fuzzer.into_report().execs, 2_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignBudget {
    /// Pause once the campaign's *total* execution count (across all
    /// `run_until` calls) reaches this. `None` = no execution pause.
    pub max_execs: Option<u64>,
    /// Pause once this much wall time has elapsed since the current
    /// `run_until` call was entered. Checked every
    /// [`DEADLINE_CHECK_INTERVAL`] iterations, off the hot path.
    /// `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl CampaignBudget {
    /// A budget that never pauses: the campaign runs to completion.
    pub fn unbounded() -> Self {
        CampaignBudget::default()
    }

    /// Pause when total executions reach `n`.
    pub fn execs(n: u64) -> Self {
        CampaignBudget {
            max_execs: Some(n),
            deadline: None,
        }
    }

    /// Pause after `d` of wall time in this `run_until` call.
    pub fn wall(d: Duration) -> Self {
        CampaignBudget {
            max_execs: None,
            deadline: Some(d),
        }
    }

    /// Pause at whichever comes first: total executions reaching `n` or
    /// `d` of wall time in this `run_until` call. The slice budget an
    /// external scheduler (the `pdf-serve` daemon) hands each campaign:
    /// the execution bound keeps slices deterministic, the wall bound
    /// keeps one slow campaign from hogging a worker slot.
    pub fn execs_or_wall(n: u64, d: Duration) -> Self {
        CampaignBudget {
            max_execs: Some(n),
            deadline: Some(d),
        }
    }

    /// Adds a wall-clock deadline to an existing budget, keeping its
    /// execution pause point.
    pub fn with_deadline(self, d: Duration) -> Self {
        CampaignBudget {
            deadline: Some(d),
            ..self
        }
    }
}

/// Why [`Fuzzer::run_until`](crate::Fuzzer::run_until) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The campaign is complete: the configured `max_execs` budget is
    /// spent or `max_valid_inputs` was reached. Further `run_until`
    /// calls return immediately.
    Finished,
    /// The budget's execution pause point was reached; the campaign can
    /// be checkpointed and/or continued.
    PausedExecs,
    /// The budget's wall-clock deadline elapsed.
    PausedDeadline,
}

impl StopReason {
    /// Whether the campaign is complete (as opposed to merely paused).
    pub fn is_finished(&self) -> bool {
        matches!(self, StopReason::Finished)
    }

    /// Whether the campaign merely paused (execution pause point or
    /// wall deadline) and can be continued with another `run_until`.
    pub fn is_paused(&self) -> bool {
        !self.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_right_limit() {
        assert_eq!(CampaignBudget::unbounded(), CampaignBudget::default());
        assert_eq!(CampaignBudget::execs(10).max_execs, Some(10));
        assert_eq!(CampaignBudget::execs(10).deadline, None);
        let w = CampaignBudget::wall(Duration::from_millis(5));
        assert_eq!(w.deadline, Some(Duration::from_millis(5)));
        assert_eq!(w.max_execs, None);
        let both = CampaignBudget::execs_or_wall(7, Duration::from_millis(3));
        assert_eq!(both.max_execs, Some(7));
        assert_eq!(both.deadline, Some(Duration::from_millis(3)));
        let chained = CampaignBudget::execs(9).with_deadline(Duration::from_millis(2));
        assert_eq!(chained.max_execs, Some(9));
        assert_eq!(chained.deadline, Some(Duration::from_millis(2)));
    }

    #[test]
    fn stop_reason_finished_flag() {
        assert!(StopReason::Finished.is_finished());
        assert!(!StopReason::PausedExecs.is_finished());
        assert!(!StopReason::PausedDeadline.is_finished());
        assert!(!StopReason::Finished.is_paused());
        assert!(StopReason::PausedExecs.is_paused());
        assert!(StopReason::PausedDeadline.is_paused());
    }
}

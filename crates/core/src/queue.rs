//! The candidate priority queue of Algorithm 1.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use pdf_runtime::BranchSet;

use crate::config::HeuristicConfig;
use crate::heuristic::score;

/// A not-yet-executed candidate input plus everything needed to
/// (re-)compute its heuristic value without re-running it (Section 3.2:
/// "storing all relevant information to compute the heuristic along with
/// the already executed input").
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// The candidate input.
    pub input: Vec<u8>,
    /// Branches the *parent* run covered up to its rejection point.
    pub parent_branches: BranchSet,
    /// `len(c)`: length of the replacement that produced this candidate.
    pub replacement_len: usize,
    /// Average stack depth over the parent's last two comparisons.
    pub avg_stack: f64,
    /// Number of substitutions on the path from the initial input.
    pub num_parents: usize,
    /// Path hash of the parent run (for path-dedup ranking).
    pub path_hash: u64,
}

#[derive(Debug)]
struct HeapItem {
    score: f64,
    seq: u64,
    entry: QueueEntry,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.entry.input == other.entry.input && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score. Ties break on the candidate *content*
        // (lexicographically smaller input first) so the pop order is a
        // pure function of the queued set — permuting the insertion
        // order of equal-score entries cannot change it. Only truly
        // identical inputs fall back to FIFO on the insertion index.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.entry.input.cmp(&self.entry.input))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// How many pops may pass before scores are refreshed against the
/// drifting path-seen counts. Rescoring against a changed `vBr` happens
/// immediately.
const REBUILD_INTERVAL: usize = 256;

/// A plain-data image of the queue's complete state, used by campaign
/// checkpointing. Items carry their *cached* scores: scores are only
/// recomputed at rebuild points, so a restored queue must reproduce the
/// stale values bit-exactly or pop order could differ between a resumed
/// and an uninterrupted campaign.
#[derive(Debug, Clone)]
pub(crate) struct QueueState {
    /// `(cached score, insertion seq, entry)`, sorted by seq.
    pub items: Vec<(f64, u64, QueueEntry)>,
    /// Path-seen counters, sorted by path hash.
    pub path_counts: Vec<(u64, usize)>,
    /// Next insertion sequence number.
    pub seq: u64,
    /// `vBr` size at the last rescoring.
    pub last_vbr_len: usize,
    /// Pops since the last rescoring.
    pub pops_since_rebuild: usize,
}

/// Max-priority queue over [`QueueEntry`], scored by
/// [`score`](crate::score).
///
/// Scores are cached at push time and refreshed (Algorithm 1, lines
/// 40–43: "reorder inp in queue based on cov") whenever the set of
/// branches covered by valid inputs grows, plus periodically to absorb
/// path-dedup drift — the same "recalculate the heuristic instead of
/// re-running the input" optimization Section 3.2 describes.
///
/// # Example
///
/// ```
/// use pdf_core::{CandidateQueue, HeuristicConfig, QueueEntry};
/// use pdf_runtime::BranchSet;
///
/// let mut q = CandidateQueue::new(HeuristicConfig::default());
/// let v_br = BranchSet::new();
/// q.push(QueueEntry {
///     input: b"(".to_vec(),
///     parent_branches: BranchSet::new(),
///     replacement_len: 1,
///     avg_stack: 0.0,
///     num_parents: 0,
///     path_hash: 0,
/// }, &v_br);
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.pop(&v_br).unwrap().input, b"(".to_vec());
/// ```
#[derive(Debug)]
pub struct CandidateQueue {
    heap: BinaryHeap<HeapItem>,
    /// How often each execution path has been seen (queued + executed).
    path_counts: HashMap<u64, usize>,
    cfg: HeuristicConfig,
    seq: u64,
    last_vbr_len: usize,
    pops_since_rebuild: usize,
}

impl CandidateQueue {
    /// Creates an empty queue with the given heuristic configuration.
    pub fn new(cfg: HeuristicConfig) -> Self {
        CandidateQueue {
            heap: BinaryHeap::new(),
            path_counts: HashMap::new(),
            cfg,
            seq: 0,
            last_vbr_len: 0,
            pops_since_rebuild: 0,
        }
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn path_seen(&self, path_hash: u64) -> usize {
        self.path_counts
            .get(&path_hash)
            .copied()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Inserts a candidate, scored against the current `vBr`
    /// (Algorithm 1, line 23).
    pub fn push(&mut self, entry: QueueEntry, v_br: &BranchSet) {
        *self.path_counts.entry(entry.path_hash).or_insert(0) += 1;
        let s = score(&entry, v_br, self.path_seen(entry.path_hash), &self.cfg);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem {
            score: s,
            seq,
            entry,
        });
    }

    /// Removes and returns the highest-scoring candidate, refreshing
    /// stale scores first when `vBr` grew since the last pop.
    pub fn pop(&mut self, v_br: &BranchSet) -> Option<QueueEntry> {
        if v_br.len() != self.last_vbr_len || self.pops_since_rebuild >= REBUILD_INTERVAL {
            self.rebuild(v_br);
        }
        self.pops_since_rebuild += 1;
        self.heap.pop().map(|item| item.entry)
    }

    /// Removes the newest candidate regardless of score (naive
    /// depth-first search, for the Section 3 ablation).
    pub fn pop_newest(&mut self) -> Option<QueueEntry> {
        let newest = self.heap.iter().map(|i| i.seq).max()?;
        let items: Vec<HeapItem> = std::mem::take(&mut self.heap).into_vec();
        let mut out = None;
        self.heap = items
            .into_iter()
            .filter_map(|item| {
                if item.seq == newest && out.is_none() {
                    out = Some(item.entry.clone());
                    None
                } else {
                    Some(item)
                }
            })
            .collect();
        out
    }

    /// Removes the oldest candidate regardless of score (naive
    /// breadth-first search, for the Section 3 ablation).
    pub fn pop_oldest(&mut self) -> Option<QueueEntry> {
        let oldest = self.heap.iter().map(|i| i.seq).min()?;
        let items: Vec<HeapItem> = std::mem::take(&mut self.heap).into_vec();
        let mut out = None;
        self.heap = items
            .into_iter()
            .filter_map(|item| {
                if item.seq == oldest && out.is_none() {
                    out = Some(item.entry.clone());
                    None
                } else {
                    Some(item)
                }
            })
            .collect();
        out
    }

    /// Records that a path was executed once more (lowers the rank of
    /// queued candidates sharing it at the next refresh).
    pub fn note_path(&mut self, path_hash: u64) {
        *self.path_counts.entry(path_hash).or_insert(0) += 1;
    }

    /// Recomputes every cached score against the current `vBr` and path
    /// counts.
    pub fn rebuild(&mut self, v_br: &BranchSet) {
        self.last_vbr_len = v_br.len();
        self.pops_since_rebuild = 0;
        let items: Vec<HeapItem> = std::mem::take(&mut self.heap).into_vec();
        self.heap = items
            .into_iter()
            .map(|mut item| {
                item.score = score(
                    &item.entry,
                    v_br,
                    self.path_seen(item.entry.path_hash),
                    &self.cfg,
                );
                item
            })
            .collect();
    }

    /// Drops the worst-scoring entries, keeping the best `keep`. Called
    /// when the queue grows beyond the driver's bound.
    pub fn shrink(&mut self, keep: usize, v_br: &BranchSet) {
        if self.heap.len() <= keep {
            return;
        }
        self.rebuild(v_br);
        let mut kept = BinaryHeap::with_capacity(keep);
        for _ in 0..keep {
            match self.heap.pop() {
                Some(item) => kept.push(item),
                None => break,
            }
        }
        self.heap = kept;
    }

    /// Captures the queue's complete state for a checkpoint. The heap is
    /// flattened in insertion order; because [`HeapItem`]'s ordering is a
    /// pure function of the queued set, re-pushing the items in any order
    /// reproduces the exact pop sequence.
    pub(crate) fn snapshot_state(&self) -> QueueState {
        let mut items: Vec<(f64, u64, QueueEntry)> = self
            .heap
            .iter()
            .map(|i| (i.score, i.seq, i.entry.clone()))
            .collect();
        items.sort_by_key(|&(_, seq, _)| seq);
        let mut path_counts: Vec<(u64, usize)> =
            self.path_counts.iter().map(|(&k, &v)| (k, v)).collect();
        path_counts.sort_unstable();
        QueueState {
            items,
            path_counts,
            seq: self.seq,
            last_vbr_len: self.last_vbr_len,
            pops_since_rebuild: self.pops_since_rebuild,
        }
    }

    /// Rebuilds a queue from a snapshot, preserving cached scores and
    /// rebuild counters verbatim (no rescoring — see
    /// [`snapshot_state`](Self::snapshot_state)).
    pub(crate) fn restore_state(cfg: HeuristicConfig, state: QueueState) -> Self {
        let mut heap = BinaryHeap::with_capacity(state.items.len());
        for (score, seq, entry) in state.items {
            heap.push(HeapItem { score, seq, entry });
        }
        CandidateQueue {
            heap,
            path_counts: state.path_counts.into_iter().collect(),
            cfg,
            seq: state.seq,
            last_vbr_len: state.last_vbr_len,
            pops_since_rebuild: state.pops_since_rebuild,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdf_runtime::{BranchId, SiteId};

    fn entry(input: &[u8], repl: usize) -> QueueEntry {
        QueueEntry {
            input: input.to_vec(),
            parent_branches: BranchSet::new(),
            replacement_len: repl,
            avg_stack: 0.0,
            num_parents: 0,
            path_hash: input.len() as u64 + 1000,
        }
    }

    #[test]
    fn pop_returns_highest_score() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        q.push(entry(b"a", 1), &v_br);
        q.push(entry(b"b", 5), &v_br); // big replacement → top
        q.push(entry(b"c", 2), &v_br);
        assert_eq!(q.pop(&v_br).unwrap().input, b"b".to_vec());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn ties_pop_in_content_order() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        q.push(entry(b"x", 1), &v_br);
        let mut same = entry(b"y", 1);
        same.path_hash = 2000; // distinct path, same score terms
        q.push(same, &v_br);
        assert_eq!(q.pop(&v_br).unwrap().input, b"x".to_vec());
    }

    #[test]
    fn tie_break_is_insertion_order_invariant() {
        // Equal-score candidates must pop in the same order no matter
        // how their insertion was permuted: the order is a function of
        // the queued *set*, not of arrival history.
        let v_br = BranchSet::new();
        // equal lengths keep the length-penalty term, and so the score,
        // identical across all four
        let inputs: [&[u8]; 4] = [b"dddd", b"aaaa", b"cccc", b"bbbb"];
        let drain = |perm: &[usize]| -> Vec<Vec<u8>> {
            let mut q = CandidateQueue::new(HeuristicConfig::default());
            for &i in perm {
                let mut e = entry(inputs[i], 1);
                e.path_hash = 4000 + i as u64; // distinct paths, same score
                e.input = inputs[i].to_vec();
                q.push(e, &v_br);
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop(&v_br) {
                out.push(e.input);
            }
            out
        };
        let reference = drain(&[0, 1, 2, 3]);
        for perm in [
            [1, 0, 3, 2],
            [3, 2, 1, 0],
            [2, 3, 0, 1],
            [1, 3, 0, 2],
            [3, 0, 2, 1],
        ] {
            assert_eq!(drain(&perm), reference, "permutation {perm:?} diverged");
        }
        // and the order itself is the content order
        let sorted: Vec<Vec<u8>> = {
            let mut v: Vec<Vec<u8>> = inputs.iter().map(|i| i.to_vec()).collect();
            v.sort();
            v
        };
        assert_eq!(reference, sorted);
    }

    #[test]
    fn identical_entries_pop_fifo() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        q.push(entry(b"same", 1), &v_br);
        q.push(entry(b"same", 1), &v_br);
        assert_eq!(q.pop(&v_br).unwrap().input, b"same".to_vec());
        assert_eq!(q.pop(&v_br).unwrap().input, b"same".to_vec());
        assert!(q.pop(&v_br).is_none());
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        assert!(q.pop(&BranchSet::new()).is_none());
    }

    #[test]
    fn rescoring_reflects_updated_v_br() {
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        let v_br = BranchSet::new();
        // `rich`'s parent covered branch 1, so it outranks `plain`
        let mut rich = entry(b"aa", 1);
        rich.parent_branches = [BranchId::new(SiteId::from_raw(1), true)]
            .into_iter()
            .collect();
        let mut plain = entry(b"bb", 1);
        plain.replacement_len = 1;
        plain.path_hash = 3000;
        q.push(plain, &v_br);
        q.push(rich, &v_br);
        // once branch 1 belongs to vBr, `rich` loses its bonus and the
        // content tie-break puts lexicographically-smaller "aa" first
        let v_br_after: BranchSet = [BranchId::new(SiteId::from_raw(1), true)]
            .into_iter()
            .collect();
        assert_eq!(q.pop(&v_br_after).unwrap().input, b"aa".to_vec());
    }

    #[test]
    fn path_dedup_lowers_repeat_paths() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        let mut a = entry(b"aa", 1);
        a.path_hash = 7;
        let mut b = entry(b"bb", 1);
        b.path_hash = 7;
        let mut c = entry(b"cc", 1);
        c.path_hash = 9;
        q.push(a, &v_br);
        q.push(b, &v_br);
        q.note_path(7); // the path got executed yet again
        q.push(c, &v_br);
        q.rebuild(&v_br);
        assert_eq!(q.pop(&v_br).unwrap().input, b"cc".to_vec());
    }

    #[test]
    fn shrink_keeps_best() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        for i in 0..10 {
            q.push(entry(format!("{i}").as_bytes(), i), &v_br);
        }
        q.shrink(3, &v_br);
        assert_eq!(q.len(), 3);
        let top = q.pop(&v_br).unwrap();
        assert!(top.replacement_len >= 7);
    }

    #[test]
    fn pop_newest_and_oldest_orderings() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        q.push(entry(b"first", 1), &v_br);
        q.push(entry(b"mid", 9), &v_br); // best score
        q.push(entry(b"lastone", 1), &v_br);
        assert_eq!(q.pop_newest().unwrap().input, b"lastone".to_vec());
        assert_eq!(q.pop_oldest().unwrap().input, b"first".to_vec());
        assert_eq!(q.pop(&v_br).unwrap().input, b"mid".to_vec());
        assert!(q.pop_newest().is_none());
        assert!(q.pop_oldest().is_none());
    }

    #[test]
    fn snapshot_restore_reproduces_pop_order() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        for i in 0..20usize {
            let mut e = entry(format!("in{i:02}").as_bytes(), (i % 5) + 1);
            e.path_hash = 5000 + (i % 3) as u64;
            q.push(e, &v_br);
        }
        // disturb the counters so the snapshot captures mid-campaign state
        let _ = q.pop(&v_br);
        let _ = q.pop(&v_br);
        q.note_path(5001);

        let restored =
            CandidateQueue::restore_state(HeuristicConfig::default(), q.snapshot_state());
        assert_eq!(restored.len(), q.len());
        let drain = |mut q: CandidateQueue| -> Vec<Vec<u8>> {
            let mut out = Vec::new();
            while let Some(e) = q.pop(&v_br) {
                out.push(e.input);
            }
            out
        };
        assert_eq!(drain(restored), drain(q));
    }

    #[test]
    fn snapshot_preserves_cached_scores_and_counters() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        q.push(entry(b"aa", 3), &v_br);
        let _ = q.pop(&v_br);
        q.push(entry(b"bb", 2), &v_br);
        let state = q.snapshot_state();
        assert_eq!(state.seq, 2);
        assert_eq!(state.pops_since_rebuild, 1);
        assert_eq!(state.items.len(), 1);
        let restored = CandidateQueue::restore_state(HeuristicConfig::default(), state.clone());
        let state2 = restored.snapshot_state();
        assert_eq!(state.seq, state2.seq);
        assert_eq!(state.pops_since_rebuild, state2.pops_since_rebuild);
        assert_eq!(state.last_vbr_len, state2.last_vbr_len);
        assert_eq!(state.path_counts, state2.path_counts);
        for (a, b) in state.items.iter().zip(&state2.items) {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "cached score drifted");
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.input, b.2.input);
        }
    }

    #[test]
    fn periodic_rebuild_absorbs_path_drift() {
        let v_br = BranchSet::new();
        let mut q = CandidateQueue::new(HeuristicConfig::default());
        let mut a = entry(b"aa", 1);
        a.path_hash = 7;
        q.push(a, &v_br);
        for _ in 0..50 {
            q.note_path(7);
        }
        // after enough pops the rebuild interval forces a refresh; here
        // we just verify rebuild() itself lowers the cached score
        q.rebuild(&v_br);
        let item = q.pop(&v_br).unwrap();
        assert_eq!(item.input, b"aa".to_vec());
    }
}

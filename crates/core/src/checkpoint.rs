//! Campaign checkpoints: kill-and-resume for long campaigns.
//!
//! A [`Checkpoint`] is a complete serialization of a paused campaign's
//! search state — enough that [`Fuzzer::resume_from_checkpoint`]
//! (crate::Fuzzer::resume_from_checkpoint) continues the campaign
//! *byte-identically*: the resumed run produces the same
//! [`FuzzReport::digest`](crate::FuzzReport::digest) as an uninterrupted
//! run of the same configuration. That contract dictates what is
//! stored:
//!
//! - the RNG **draw count** (the generator is a pure function of seed +
//!   draws, so a fresh generator fast-forwarded with
//!   [`Rng::skip`](pdf_runtime::Rng::skip) continues the exact stream),
//! - the **decision bytes** drawn so far (they prefix the final report's
//!   decision stream),
//! - the **queue**, including each entry's *cached score bits*: scores
//!   are recomputed only at rebuild points, so a stale cached score
//!   legitimately shapes pop order and must survive the round-trip
//!   bit-exactly (hence `f64::to_bits`, not a decimal rendering),
//! - the queue's **rebuild counters** and **path counts** (they decide
//!   when the next rescoring happens),
//! - the **coverage sets**, **valid inputs**, the **verdict cache** and
//!   the in-flight current input.
//!
//! The text format follows the `pdf-journal v1` conventions: a header
//! line, then one whitespace-separated `k=v` record per line, with byte
//! strings hex-encoded via the journal codec's
//! [`hex_encode`](pdf_runtime::hex_encode). Unordered collections
//! (the verdict cache, path counts) are emitted sorted, so encoding is
//! canonical: decode ∘ encode is the identity and equal states produce
//! equal text.

use std::fmt;

use pdf_runtime::{hex_decode, hex_encode, BranchId, BranchSet, SiteId};

const HEADER: &str = "pdf-checkpoint v1";

/// A serializable snapshot of one queued candidate, cached score
/// included.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueItemSnapshot {
    /// Bit pattern of the cached heuristic score (`f64::to_bits`).
    pub score_bits: u64,
    /// Insertion sequence number (final FIFO tie-break).
    pub seq: u64,
    /// The candidate input.
    pub input: Vec<u8>,
    /// Branches the parent run covered up to its rejection point.
    pub parent_branches: Vec<(u64, bool)>,
    /// Length of the replacement that produced this candidate.
    pub replacement_len: u64,
    /// Bit pattern of the parent's average stack depth.
    pub avg_stack_bits: u64,
    /// Number of substitutions on the path from the initial input.
    pub num_parents: u64,
    /// Path hash of the parent run.
    pub path_hash: u64,
}

/// A serializable snapshot of the candidate queue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueSnapshot {
    /// Next insertion sequence number.
    pub seq: u64,
    /// `vBr` size at the last rescoring.
    pub last_vbr_len: u64,
    /// Pops since the last rescoring.
    pub pops_since_rebuild: u64,
    /// Path-seen counters, sorted by path hash.
    pub path_counts: Vec<(u64, u64)>,
    /// Queued candidates, sorted by insertion sequence.
    pub items: Vec<QueueItemSnapshot>,
}

/// A paused campaign's complete search state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Subject name the campaign runs against.
    pub subject: String,
    /// [`DriverConfig::config_hash`](crate::DriverConfig::config_hash)
    /// of the campaign's configuration; resume refuses a drifted config.
    pub config_hash: u64,
    /// Campaign seed.
    pub seed: u64,
    /// RNG draws consumed so far.
    pub draws: u64,
    /// Whether the initial input was already drawn.
    pub primed: bool,
    /// Executions spent so far.
    pub execs: u64,
    /// Instrumentation events observed so far.
    pub events: u64,
    /// Hung executions so far.
    pub hangs: u64,
    /// Crashed executions so far.
    pub crashes: u64,
    /// Execution count of the first valid input, if any yet.
    pub first_valid_execs: Option<u64>,
    /// Decision bytes drawn so far.
    pub decisions: Vec<u8>,
    /// The in-flight input the next iteration starts from.
    pub current: Vec<u8>,
    /// `numParents` of the in-flight input.
    pub parents: u64,
    /// Valid inputs with their discovery execution counts, in discovery
    /// order.
    pub valid: Vec<(Vec<u8>, u64)>,
    /// Branches covered by valid inputs (`vBr`), as (site, outcome).
    pub valid_branches: Vec<(u64, bool)>,
    /// Branches covered by any run.
    pub all_branches: Vec<(u64, bool)>,
    /// The candidate-scoring (steering) set: `vBr` plus any coverage
    /// adopted from fleet peers. Absent in pre-fleet checkpoints, in
    /// which case resuming falls back to `vBr`.
    pub steer_branches: Vec<(u64, bool)>,
    /// The verdict cache of known-invalid inputs, sorted.
    pub known_invalid: Vec<Vec<u8>>,
    /// Tiered-mode escalation watermark: the highest rejection index any
    /// escalated fast-tier run reached. Always `None` outside tiered
    /// mode, so full-mode checkpoints stay byte-identical to releases
    /// that predate execution tiering.
    pub tier_max_rejection: Option<u64>,
    /// Last-comparison fingerprints the tiered filter has already
    /// escalated, sorted. Empty outside tiered mode.
    pub tier_fingerprints: Vec<u64>,
    /// Expected-token observation counts mined so far
    /// ([`DriverConfig::mine_tokens`](crate::DriverConfig::mine_tokens)),
    /// in canonical (byte-sorted) token order. Empty unless mining is
    /// enabled, so non-mining checkpoints stay byte-identical to
    /// releases that predate token discovery.
    pub mined: Vec<(Vec<u8>, u64)>,
    /// The candidate queue.
    pub queue: QueueSnapshot,
}

/// Why a checkpoint could not be decoded or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The text does not start with the `pdf-checkpoint v1` header.
    Header,
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The subject or configuration drifted since the checkpoint was
    /// taken; resuming would silently diverge instead of continuing.
    Drift(String),
    /// Reading or writing the checkpoint file failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Header => write!(f, "missing `{HEADER}` header"),
            CheckpointError::Parse { line, reason } => {
                write!(f, "checkpoint line {line}: {reason}")
            }
            CheckpointError::Drift(what) => write!(f, "checkpoint drift: {what}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The recovery-relevant classification of a checkpoint (or other
/// persistence) failure: what a consumer holding an older generation
/// of the same state should *do* about the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The bytes on disk are damaged (torn write, truncation, bit
    /// rot). An older generation of the same state is still good —
    /// **fall back** to it, quarantine the damage.
    Corrupt,
    /// The configuration or subject changed since the state was
    /// written. Every generation was written under the old
    /// configuration, so falling back cannot help — **fail** the
    /// resume and surface the mismatch.
    Drift,
    /// The storage itself misbehaved (permission, `ENOSPC`, missing
    /// file). Retrying or falling back *may* help; the caller decides
    /// based on what it knows about the medium.
    Io,
}

impl CheckpointError {
    /// Classifies this error for fallback decisions (see
    /// [`ErrorClass`]). Torn or truncated checkpoint files surface as
    /// [`Header`](CheckpointError::Header) or
    /// [`Parse`](CheckpointError::Parse) and classify as
    /// [`Corrupt`](ErrorClass::Corrupt).
    pub fn class(&self) -> ErrorClass {
        match self {
            CheckpointError::Header | CheckpointError::Parse { .. } => ErrorClass::Corrupt,
            CheckpointError::Drift(_) => ErrorClass::Drift,
            CheckpointError::Io(_) => ErrorClass::Io,
        }
    }
}

/// Renders a `(site, outcome)` set as `SITE+` / `SITE-` entries joined
/// with commas; the empty set is the single character `-`.
fn encode_branches(set: &[(u64, bool)]) -> String {
    if set.is_empty() {
        return "-".to_string();
    }
    set.iter()
        .map(|(site, outcome)| format!("{site:016x}{}", if *outcome { '+' } else { '-' }))
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_branches(s: &str) -> Option<Vec<(u64, bool)>> {
    if s == "-" || s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|tok| {
            let (hex, sign) = tok.split_at(tok.len().checked_sub(1)?);
            let outcome = match sign {
                "+" => true,
                "-" => false,
                _ => return None,
            };
            let site = u64::from_str_radix(hex, 16).ok()?;
            Some((site, outcome))
        })
        .collect()
}

/// Rebuilds a [`BranchSet`] from serialized (site, outcome) pairs.
pub(crate) fn branch_set_of(pairs: &[(u64, bool)]) -> BranchSet {
    pairs
        .iter()
        .map(|&(site, outcome)| BranchId::new(SiteId::from_raw(site), outcome))
        .collect()
}

/// Flattens a [`BranchSet`] into serializable (site, outcome) pairs
/// (already sorted: the set iterates in order).
pub(crate) fn branch_pairs_of(set: &BranchSet) -> Vec<(u64, bool)> {
    set.iter().map(|b| (b.site.0, b.outcome)).collect()
}

/// One parsed `k=v` line: the leading tag plus the key/value pairs.
struct Record<'a> {
    tag: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Record<'a> {
    fn parse(line: &'a str) -> Option<Record<'a>> {
        let mut toks = line.split_whitespace();
        let tag = toks.next()?;
        let mut pairs = Vec::new();
        for tok in toks {
            let (k, v) = tok.split_once('=')?;
            pairs.push((k, v));
        }
        Some(Record { tag, pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    fn hex_u64_of(&self, key: &str) -> Option<u64> {
        u64::from_str_radix(self.get(key)?, 16).ok()
    }

    fn bytes_of(&self, key: &str) -> Option<Vec<u8>> {
        hex_decode(self.get(key)?)
    }

    fn branches_of(&self, key: &str) -> Option<Vec<(u64, bool)>> {
        decode_branches(self.get(key)?)
    }
}

impl Checkpoint {
    /// Renders the checkpoint as `pdf-checkpoint v1` text.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let first = match self.first_valid_execs {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "meta subject={} cfg={:016x} seed={} draws={} primed={} execs={} events={} \
             hangs={} crashes={} first={first} parents={} qseq={} qvbr={} qpops={}",
            self.subject,
            self.config_hash,
            self.seed,
            self.draws,
            self.primed as u8,
            self.execs,
            self.events,
            self.hangs,
            self.crashes,
            self.parents,
            self.queue.seq,
            self.queue.last_vbr_len,
            self.queue.pops_since_rebuild,
        );
        let _ = writeln!(out, "decisions hex={}", hex_encode(&self.decisions));
        let _ = writeln!(out, "current hex={}", hex_encode(&self.current));
        for (input, at) in &self.valid {
            let _ = writeln!(out, "valid at={at} hex={}", hex_encode(input));
        }
        let _ = writeln!(out, "vbr set={}", encode_branches(&self.valid_branches));
        let _ = writeln!(out, "abr set={}", encode_branches(&self.all_branches));
        let _ = writeln!(out, "sbr set={}", encode_branches(&self.steer_branches));
        if self.tier_max_rejection.is_some() || !self.tier_fingerprints.is_empty() {
            let maxrej = match self.tier_max_rejection {
                Some(n) => n.to_string(),
                None => "-".to_string(),
            };
            let fps = if self.tier_fingerprints.is_empty() {
                "-".to_string()
            } else {
                self.tier_fingerprints
                    .iter()
                    .map(|f| format!("{f:016x}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(out, "tier maxrej={maxrej} fps={fps}");
        }
        for input in &self.known_invalid {
            let _ = writeln!(out, "inv hex={}", hex_encode(input));
        }
        for (tok, n) in &self.mined {
            let _ = writeln!(out, "mine n={n} hex={}", hex_encode(tok));
        }
        for (hash, n) in &self.queue.path_counts {
            let _ = writeln!(out, "path hash={hash:016x} n={n}");
        }
        for item in &self.queue.items {
            let _ = writeln!(
                out,
                "item score={:016x} seq={} repl={} par={} path={:016x} stack={:016x} pb={} hex={}",
                item.score_bits,
                item.seq,
                item.replacement_len,
                item.num_parents,
                item.path_hash,
                item.avg_stack_bits,
                encode_branches(&item.parent_branches),
                hex_encode(&item.input),
            );
        }
        out
    }

    /// Parses `pdf-checkpoint v1` text.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Header`] on a missing header,
    /// [`CheckpointError::Parse`] on any malformed line.
    pub fn decode(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == HEADER => {}
            _ => return Err(CheckpointError::Header),
        }
        let mut ck = Checkpoint::default();
        let mut saw_meta = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let err = |reason: &str| CheckpointError::Parse {
                line: lineno,
                reason: reason.to_string(),
            };
            let rec = Record::parse(line).ok_or_else(|| err("malformed k=v line"))?;
            match rec.tag {
                "meta" => {
                    ck.subject = rec
                        .get("subject")
                        .ok_or_else(|| err("missing subject"))?
                        .to_string();
                    ck.config_hash = rec.hex_u64_of("cfg").ok_or_else(|| err("bad cfg"))?;
                    ck.seed = rec.u64_of("seed").ok_or_else(|| err("bad seed"))?;
                    ck.draws = rec.u64_of("draws").ok_or_else(|| err("bad draws"))?;
                    ck.primed = match rec.get("primed") {
                        Some("0") => false,
                        Some("1") => true,
                        _ => return Err(err("bad primed")),
                    };
                    ck.execs = rec.u64_of("execs").ok_or_else(|| err("bad execs"))?;
                    ck.events = rec.u64_of("events").ok_or_else(|| err("bad events"))?;
                    ck.hangs = rec.u64_of("hangs").ok_or_else(|| err("bad hangs"))?;
                    ck.crashes = rec.u64_of("crashes").ok_or_else(|| err("bad crashes"))?;
                    ck.first_valid_execs = match rec.get("first") {
                        Some("-") => None,
                        Some(n) => Some(n.parse().map_err(|_| err("bad first"))?),
                        None => return Err(err("missing first")),
                    };
                    ck.parents = rec.u64_of("parents").ok_or_else(|| err("bad parents"))?;
                    ck.queue.seq = rec.u64_of("qseq").ok_or_else(|| err("bad qseq"))?;
                    ck.queue.last_vbr_len = rec.u64_of("qvbr").ok_or_else(|| err("bad qvbr"))?;
                    ck.queue.pops_since_rebuild =
                        rec.u64_of("qpops").ok_or_else(|| err("bad qpops"))?;
                    saw_meta = true;
                }
                "decisions" => {
                    ck.decisions = rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?;
                }
                "current" => {
                    ck.current = rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?;
                }
                "valid" => {
                    let at = rec.u64_of("at").ok_or_else(|| err("bad at"))?;
                    let input = rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?;
                    ck.valid.push((input, at));
                }
                "vbr" => {
                    ck.valid_branches = rec.branches_of("set").ok_or_else(|| err("bad set"))?;
                }
                "abr" => {
                    ck.all_branches = rec.branches_of("set").ok_or_else(|| err("bad set"))?;
                }
                "sbr" => {
                    ck.steer_branches = rec.branches_of("set").ok_or_else(|| err("bad set"))?;
                }
                "inv" => {
                    ck.known_invalid
                        .push(rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?);
                }
                "mine" => {
                    let n = rec.u64_of("n").ok_or_else(|| err("bad n"))?;
                    let tok = rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?;
                    ck.mined.push((tok, n));
                }
                "tier" => {
                    ck.tier_max_rejection = match rec.get("maxrej") {
                        Some("-") => None,
                        Some(n) => Some(n.parse().map_err(|_| err("bad maxrej"))?),
                        None => return Err(err("missing maxrej")),
                    };
                    ck.tier_fingerprints = match rec.get("fps") {
                        Some("-") => Vec::new(),
                        Some(s) => s
                            .split(',')
                            .map(|tok| u64::from_str_radix(tok, 16))
                            .collect::<Result<_, _>>()
                            .map_err(|_| err("bad fps"))?,
                        None => return Err(err("missing fps")),
                    };
                }
                "path" => {
                    let hash = rec.hex_u64_of("hash").ok_or_else(|| err("bad hash"))?;
                    let n = rec.u64_of("n").ok_or_else(|| err("bad n"))?;
                    ck.queue.path_counts.push((hash, n));
                }
                "item" => {
                    ck.queue.items.push(QueueItemSnapshot {
                        score_bits: rec.hex_u64_of("score").ok_or_else(|| err("bad score"))?,
                        seq: rec.u64_of("seq").ok_or_else(|| err("bad seq"))?,
                        replacement_len: rec.u64_of("repl").ok_or_else(|| err("bad repl"))?,
                        num_parents: rec.u64_of("par").ok_or_else(|| err("bad par"))?,
                        path_hash: rec.hex_u64_of("path").ok_or_else(|| err("bad path"))?,
                        avg_stack_bits: rec.hex_u64_of("stack").ok_or_else(|| err("bad stack"))?,
                        parent_branches: rec.branches_of("pb").ok_or_else(|| err("bad pb"))?,
                        input: rec.bytes_of("hex").ok_or_else(|| err("bad hex"))?,
                    });
                }
                other => {
                    return Err(CheckpointError::Parse {
                        line: lineno,
                        reason: format!("unknown record tag {other:?}"),
                    })
                }
            }
        }
        if !saw_meta {
            return Err(CheckpointError::Parse {
                line: 0,
                reason: "no meta record".to_string(),
            });
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            subject: "arith".to_string(),
            config_hash: 0xdead_beef,
            seed: 7,
            draws: 42,
            primed: true,
            execs: 100,
            events: 4_321,
            hangs: 3,
            crashes: 1,
            first_valid_execs: Some(12),
            decisions: vec![0x30, 0x31, 0x2b],
            current: b"1+".to_vec(),
            parents: 2,
            valid: vec![(b"1".to_vec(), 12), (b"1+1".to_vec(), 50)],
            valid_branches: vec![(1, true), (2, false)],
            all_branches: vec![(1, true), (2, false), (3, true)],
            steer_branches: vec![(1, true), (2, false), (9, true)],
            known_invalid: vec![b"(".to_vec(), b")".to_vec()],
            tier_max_rejection: Some(4),
            tier_fingerprints: vec![0x11, 0x22, 0x33],
            mined: Vec::new(),
            queue: QueueSnapshot {
                seq: 9,
                last_vbr_len: 2,
                pops_since_rebuild: 5,
                path_counts: vec![(0xaa, 3), (0xbb, 1)],
                items: vec![QueueItemSnapshot {
                    score_bits: 4.5f64.to_bits(),
                    seq: 8,
                    input: b"1+2".to_vec(),
                    parent_branches: vec![(1, true)],
                    replacement_len: 1,
                    avg_stack_bits: 1.5f64.to_bits(),
                    num_parents: 2,
                    path_hash: 0xaa,
                }],
            },
        }
    }

    #[test]
    fn round_trips_through_text() {
        let ck = sample();
        let text = ck.encode();
        let decoded = Checkpoint::decode(&text).expect("decodes");
        assert_eq!(ck, decoded);
        // canonical: re-encoding the decoded form is byte-identical
        assert_eq!(text, decoded.encode());
    }

    #[test]
    fn empty_collections_round_trip() {
        let ck = Checkpoint {
            subject: "x".to_string(),
            ..Checkpoint::default()
        };
        let decoded = Checkpoint::decode(&ck.encode()).expect("decodes");
        assert_eq!(ck, decoded);
        assert!(decoded.valid_branches.is_empty());
        assert!(decoded.queue.items.is_empty());
    }

    #[test]
    fn header_is_required() {
        assert_eq!(Checkpoint::decode("nope"), Err(CheckpointError::Header));
        assert_eq!(Checkpoint::decode(""), Err(CheckpointError::Header));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let mut text = sample().encode();
        text.push_str("garbage notkv\n");
        match Checkpoint::decode(&text) {
            Err(CheckpointError::Parse { line, .. }) => assert!(line > 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_hex = format!("{HEADER}\nmeta subject=s cfg=zz seed=0 draws=0 primed=1 execs=0 events=0 hangs=0 crashes=0 first=- parents=0 qseq=0 qvbr=0 qpops=0\n");
        assert!(matches!(
            Checkpoint::decode(&bad_hex),
            Err(CheckpointError::Parse { .. })
        ));
    }

    #[test]
    fn empty_tier_state_emits_no_record() {
        // full-mode checkpoints must stay byte-identical to the
        // pre-tiering format
        let mut ck = sample();
        ck.tier_max_rejection = None;
        ck.tier_fingerprints = Vec::new();
        let text = ck.encode();
        assert!(!text.contains("tier "), "spurious tier record:\n{text}");
        let decoded = Checkpoint::decode(&text).expect("decodes");
        assert_eq!(ck, decoded);
    }

    #[test]
    fn tier_record_round_trips() {
        let mut ck = sample();
        ck.tier_max_rejection = None;
        ck.tier_fingerprints = vec![0xdead];
        let decoded = Checkpoint::decode(&ck.encode()).expect("decodes");
        assert_eq!(ck, decoded);
        ck.tier_max_rejection = Some(0);
        ck.tier_fingerprints = Vec::new();
        let decoded = Checkpoint::decode(&ck.encode()).expect("decodes");
        assert_eq!(ck, decoded);
    }

    #[test]
    fn mine_records_round_trip_and_default_to_absent() {
        // non-mining checkpoints must stay byte-identical to the
        // pre-token format
        let ck = sample();
        assert!(ck.mined.is_empty());
        assert!(!ck.encode().contains("mine "), "spurious mine record");

        let mut mined = sample();
        mined.mined = vec![(b"while".to_vec(), 7), (b"}".to_vec(), 1)];
        let decoded = Checkpoint::decode(&mined.encode()).expect("decodes");
        assert_eq!(mined, decoded);
    }

    #[test]
    fn branch_list_encoding_is_exact() {
        assert_eq!(encode_branches(&[]), "-");
        let pairs = vec![(0x10, true), (0x20, false)];
        let s = encode_branches(&pairs);
        assert_eq!(decode_branches(&s), Some(pairs));
        assert_eq!(decode_branches("-"), Some(Vec::new()));
        assert_eq!(decode_branches("zz+"), None);
        assert_eq!(decode_branches("10?"), None);
    }

    #[test]
    fn score_bits_survive_exactly() {
        // the point of storing bits: scores like 0.1 + 0.2 must survive
        // without decimal rounding
        let tricky = 0.1f64 + 0.2f64;
        let mut ck = sample();
        ck.queue.items[0].score_bits = tricky.to_bits();
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(f64::from_bits(decoded.queue.items[0].score_bits), tricky,);
    }
}

//! Fuzzer configuration.

/// Which terms of the Algorithm 1 heuristic (lines 47–51) are active.
///
/// The default enables everything the paper describes; individual terms
/// can be switched off for the ablation benchmarks called out in
/// DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicConfig {
    /// Line 48: `cov ← size(branches \ vBr)` — reward newly covered
    /// branches.
    pub use_new_branches: bool,
    /// Line 49, first term: `cov ← cov − len(inp)` — penalise long
    /// inputs (avoids degenerate depth-first search).
    pub use_input_length: bool,
    /// Line 49, second term: `cov ← cov + 2 · len(c)` — reward long
    /// replacements (string comparisons lead to keywords).
    pub use_replacement_len: bool,
    /// Line 50: `cov ← cov − avgStackSize()` — penalise deep parser
    /// stacks (helps closing open syntactic features).
    pub use_stack_size: bool,
    /// Line 50: the `numParents` term — penalise long substitution
    /// chains to keep search depth low.
    pub use_parent_penalty: bool,
    /// Use the paper's *literal* formula `cov + inp.numParents` instead
    /// of the prose's intent ("inputs with fewer parents … should be
    /// ranked higher"), which the default implements as `− numParents`.
    pub paper_literal_parent_sign: bool,
    /// Section 3.2: rank inputs lower the more often their execution
    /// path has already been taken.
    pub use_path_dedup: bool,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            use_new_branches: true,
            use_input_length: true,
            use_replacement_len: true,
            use_stack_size: true,
            use_parent_penalty: true,
            paper_literal_parent_sign: false,
            use_path_dedup: true,
        }
    }
}

impl HeuristicConfig {
    /// A configuration with every guidance term disabled: candidate
    /// order degenerates to insertion order, approximating the naive
    /// breadth-first search Section 3 argues against.
    pub fn disabled() -> Self {
        HeuristicConfig {
            use_new_branches: false,
            use_input_length: false,
            use_replacement_len: false,
            use_stack_size: false,
            use_parent_penalty: false,
            paper_literal_parent_sign: false,
            use_path_dedup: false,
        }
    }
}

/// Candidate-selection discipline. Section 3 discusses why the naive
/// searches fail: "Depth-first search is fast in generating large
/// prefixes of inputs but may not be able to close them properly [...]
/// Breadth-first search on the other hand explores all combinations of
/// possible inputs on a shallow level [...] Generating a large prefix
/// is, however, hard". The heuristic queue is the paper's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// The heuristic priority queue of Algorithm 1 (the paper's pFuzzer).
    #[default]
    Heuristic,
    /// Naive depth-first: always continue from the newest candidate.
    DepthFirst,
    /// Naive breadth-first: always continue from the oldest candidate.
    BreadthFirst,
}

/// How each loop iteration extends the current input (Section 3.1
/// explains why pFuzzer runs *both* forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtensionMode {
    /// Run the substituted input, and if it is invalid run it again with
    /// a random character appended (the paper's algorithm).
    #[default]
    Both,
    /// Only ever substitute the last character — gets stuck as soon as a
    /// correct substitution needs a follow-up character.
    ReplaceOnly,
    /// Only ever append — destroys correct substitutions immediately.
    AppendOnly,
}

/// Which event sink the driver runs subjects with. Both modes produce
/// byte-identical reports (the streaming sink is defined by equivalence
/// to the full-log reductions); they differ only in per-execution cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// Record the full event log and reduce it to a failure summary
    /// after each run. Useful when the log itself is wanted (tracing,
    /// debugging, grammar mining on the side).
    FullLog,
    /// Stream events through the
    /// [`LastFailure`](pdf_runtime::LastFailure) sink: no event vector,
    /// no per-comparison allocation (the default).
    #[default]
    LastFailure,
}

/// How much instrumentation each candidate execution carries.
///
/// `Full` is the paper's behaviour: every execution produces a complete
/// [`FailureSummary`](pdf_runtime::FailureSummary) (branch sets, path
/// hash, substitution candidates). `Fast` runs every candidate under the
/// near-zero-cost [`FastFailure`](pdf_runtime::FastFailure) sink and
/// escalates only *valid* inputs to full instrumentation (coverage is
/// only ever learned from accepted inputs). `Tiered` adds the
/// fast-failure filter of *Fuzzing with Fast Failure Feedback*: a
/// rejected candidate is escalated only when its rejection index
/// advanced past the campaign's watermark or its last comparison is one
/// the campaign has not seen before — everything else is discarded
/// without paying for full instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Full instrumentation on every execution (the default; campaign
    /// digests and journals are byte-identical to earlier releases).
    #[default]
    Full,
    /// Fast-failure sink on every execution; only valid inputs are
    /// re-run under full instrumentation.
    Fast,
    /// Two-tier schedule: fast-failure first, escalate survivors of the
    /// rejection-index / last-comparison filter.
    Tiered,
}

/// Driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Execution budget: total number of subject runs.
    pub max_execs: u64,
    /// Stop early after this many valid inputs (None = run out the
    /// budget).
    pub max_valid_inputs: Option<usize>,
    /// Heuristic term selection.
    pub heuristic: HeuristicConfig,
    /// Candidate-selection discipline (heuristic vs. the naive searches
    /// of Section 3).
    pub search: SearchMode,
    /// Extension behaviour (see [`ExtensionMode`]).
    pub extension_mode: ExtensionMode,
    /// Inputs longer than this are not extended further (guard against
    /// permissive subjects where everything is valid).
    pub max_input_len: usize,
    /// Record a step-by-step trace (used by the Figure 1 walkthrough).
    pub trace: bool,
    /// Which event sink executions run with (see [`SinkMode`]).
    pub sink: SinkMode,
    /// Instrumentation tiering for candidate executions (see
    /// [`ExecMode`]).
    pub exec_mode: ExecMode,
    /// Token dictionary for multi-byte substitution: at each rejection
    /// point the driver additionally tries replacing the rejected suffix
    /// with each whole dictionary token (where the baseline substitutes
    /// one character at a time). Empty disables the stage and keeps
    /// campaign digests byte-identical to earlier releases.
    pub dictionary: Vec<Vec<u8>>,
    /// Mine tokens while fuzzing: record the expected strings of failed
    /// comparisons and every recorded valid input into the campaign's
    /// token counts (surfaced via `FuzzReport::mined_tokens` and the
    /// checkpoint). Observation only — does not alter the search.
    pub mine_tokens: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            seed: 0,
            max_execs: 50_000,
            max_valid_inputs: None,
            heuristic: HeuristicConfig::default(),
            search: SearchMode::default(),
            extension_mode: ExtensionMode::Both,
            max_input_len: 128,
            trace: false,
            sink: SinkMode::default(),
            exec_mode: ExecMode::default(),
            dictionary: Vec::new(),
            mine_tokens: false,
        }
    }
}

impl DriverConfig {
    /// FNV-1a hash over every configuration field that shapes the
    /// search, *excluding* `seed` and `max_execs` — those identify the
    /// campaign (and are recorded separately in journals); this hash
    /// identifies the configuration a campaign ran under, so a replay
    /// against a drifted configuration is detected instead of silently
    /// producing a digest mismatch with no explanation.
    pub fn config_hash(&self) -> u64 {
        let mut d = pdf_runtime::Digest::new();
        d.write_str("driver-config-v1");
        match self.max_valid_inputs {
            Some(n) => {
                d.write_u8(1);
                d.write_u64(n as u64);
            }
            None => d.write_u8(0),
        }
        let h = &self.heuristic;
        for flag in [
            h.use_new_branches,
            h.use_input_length,
            h.use_replacement_len,
            h.use_stack_size,
            h.use_parent_penalty,
            h.paper_literal_parent_sign,
            h.use_path_dedup,
        ] {
            d.write_u8(flag as u8);
        }
        d.write_u8(match self.search {
            SearchMode::Heuristic => 0,
            SearchMode::DepthFirst => 1,
            SearchMode::BreadthFirst => 2,
        });
        d.write_u8(match self.extension_mode {
            ExtensionMode::Both => 0,
            ExtensionMode::ReplaceOnly => 1,
            ExtensionMode::AppendOnly => 2,
        });
        d.write_u64(self.max_input_len as u64);
        d.write_u8(self.trace as u8);
        d.write_u8(match self.sink {
            SinkMode::FullLog => 0,
            SinkMode::LastFailure => 1,
        });
        // Folded in only when non-default so that hashes (and the
        // checkpoints / journals that embed them) from releases that
        // predate `exec_mode` keep verifying byte-for-byte.
        match self.exec_mode {
            ExecMode::Full => {}
            ExecMode::Fast => {
                d.write_str("exec-mode");
                d.write_u8(1);
            }
            ExecMode::Tiered => {
                d.write_str("exec-mode");
                d.write_u8(2);
            }
        }
        // Same back-compat discipline as `exec_mode`: the dictionary and
        // the mining flag fold in only when non-default, so pre-token
        // hashes keep verifying byte-for-byte.
        if !self.dictionary.is_empty() {
            d.write_str("dictionary");
            d.write_u64(self.dictionary.len() as u64);
            for tok in &self.dictionary {
                d.write_bytes(tok);
            }
        }
        if self.mine_tokens {
            d.write_str("mine-tokens");
            d.write_u8(1);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_paper_terms() {
        let h = HeuristicConfig::default();
        assert!(h.use_new_branches);
        assert!(h.use_input_length);
        assert!(h.use_replacement_len);
        assert!(h.use_stack_size);
        assert!(h.use_parent_penalty);
        assert!(!h.paper_literal_parent_sign);
        assert!(h.use_path_dedup);
    }

    #[test]
    fn disabled_turns_everything_off() {
        let h = HeuristicConfig::disabled();
        assert!(!h.use_new_branches);
        assert!(!h.use_path_dedup);
    }

    #[test]
    fn default_driver_config_is_sane() {
        let c = DriverConfig::default();
        assert!(c.max_execs > 0);
        assert!(c.max_input_len > 0);
        assert_eq!(c.extension_mode, ExtensionMode::Both);
        assert_eq!(c.search, SearchMode::Heuristic);
        assert!(!c.trace);
        assert_eq!(c.sink, SinkMode::LastFailure);
    }

    #[test]
    fn search_mode_default_is_heuristic() {
        assert_eq!(SearchMode::default(), SearchMode::Heuristic);
    }

    #[test]
    fn config_hash_ignores_seed_and_budget() {
        let a = DriverConfig::default();
        let b = DriverConfig {
            seed: 99,
            max_execs: 123,
            ..DriverConfig::default()
        };
        assert_eq!(a.config_hash(), b.config_hash());
    }

    #[test]
    fn config_hash_sees_search_shaping_fields() {
        let base = DriverConfig::default().config_hash();
        let variants = [
            DriverConfig {
                max_valid_inputs: Some(5),
                ..DriverConfig::default()
            },
            DriverConfig {
                heuristic: HeuristicConfig::disabled(),
                ..DriverConfig::default()
            },
            DriverConfig {
                search: SearchMode::DepthFirst,
                ..DriverConfig::default()
            },
            DriverConfig {
                extension_mode: ExtensionMode::AppendOnly,
                ..DriverConfig::default()
            },
            DriverConfig {
                max_input_len: 64,
                ..DriverConfig::default()
            },
            DriverConfig {
                sink: SinkMode::FullLog,
                ..DriverConfig::default()
            },
            DriverConfig {
                exec_mode: ExecMode::Fast,
                ..DriverConfig::default()
            },
            DriverConfig {
                exec_mode: ExecMode::Tiered,
                ..DriverConfig::default()
            },
            DriverConfig {
                dictionary: vec![b"while".to_vec()],
                ..DriverConfig::default()
            },
            DriverConfig {
                mine_tokens: true,
                ..DriverConfig::default()
            },
        ];
        for v in variants {
            assert_ne!(v.config_hash(), base, "{v:?} hashed same as default");
        }
    }

    #[test]
    fn config_hash_sees_dictionary_order() {
        let a = DriverConfig {
            dictionary: vec![b"if".to_vec(), b"while".to_vec()],
            ..DriverConfig::default()
        };
        let b = DriverConfig {
            dictionary: vec![b"while".to_vec(), b"if".to_vec()],
            ..DriverConfig::default()
        };
        assert_ne!(a.config_hash(), b.config_hash());
    }
}

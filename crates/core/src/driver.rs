//! The fuzzing driver: Algorithm 1 of the paper.

use std::collections::HashSet;

use pdf_runtime::{
    digest_bytes, BranchSet, Digest, FailureExecution, FailureSummary, PhaseClock, Rng, RunStats,
    Subject,
};

use crate::config::{DriverConfig, ExtensionMode, SearchMode, SinkMode};
use crate::queue::{CandidateQueue, QueueEntry};

/// Cap on the candidate queue; when exceeded, the worst half is dropped.
const QUEUE_HIGH_WATER: usize = 8_192;
const QUEUE_LOW_WATER: usize = 4_096;

/// One step of the search, recorded when [`DriverConfig::trace`] is on.
/// Drives the Figure 1 walkthrough example.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The input that was executed.
    pub input: Vec<u8>,
    /// Whether the subject accepted it.
    pub valid: bool,
    /// Whether the run tried to read past the end of the input.
    pub eof: bool,
    /// Substitution candidates derived from the run.
    pub candidates: usize,
    /// Human-readable description of what the driver did next.
    pub action: String,
}

/// The outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Valid inputs, in discovery order. By construction every one is
    /// accepted by the subject and covered new branches when found.
    pub valid_inputs: Vec<Vec<u8>>,
    /// For each valid input, the execution count at which it was found
    /// (parallel to `valid_inputs`; evidences the "fewer tests by
    /// orders of magnitude" claim).
    pub valid_found_at: Vec<u64>,
    /// Subject executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs (`vBr`).
    pub valid_branches: BranchSet,
    /// Branches covered by *any* run, valid or not (used for the
    /// relative-coverage universe).
    pub all_branches: BranchSet,
    /// Executions spent until the first valid input, if any was found.
    pub first_valid_execs: Option<u64>,
    /// Step-by-step trace (empty unless tracing was enabled).
    pub trace: Vec<TraceStep>,
    /// Observability counters and timings for the campaign. Wall-clock
    /// fields vary between runs; everything else is deterministic.
    pub stats: RunStats,
    /// Every random byte the campaign drew, in draw order — the
    /// campaign's complete decision stream. Replaying these bytes
    /// through [`Fuzzer::replaying`] re-executes the campaign exactly,
    /// without an RNG.
    pub decisions: Vec<u8>,
}

impl FuzzReport {
    /// FNV-1a digest over every deterministic field of the report:
    /// valid inputs (order and bytes), discovery indices, execution
    /// count, branch sets, the decision stream and the deterministic
    /// stats counters. Wall-clock fields and the trace are excluded.
    /// Byte-identical campaigns (same digest) are the contract replay
    /// verification checks.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.valid_inputs.len() as u64);
        for input in &self.valid_inputs {
            d.write_bytes(input);
        }
        d.write_u64(self.valid_found_at.len() as u64);
        for &at in &self.valid_found_at {
            d.write_u64(at);
        }
        d.write_u64(self.execs);
        match self.first_valid_execs {
            Some(n) => {
                d.write_u8(1);
                d.write_u64(n);
            }
            None => d.write_u8(0),
        }
        for set in [&self.valid_branches, &self.all_branches] {
            d.write_u64(set.len() as u64);
            for b in set.iter() {
                d.write_u64(b.site.0);
                d.write_u8(b.outcome as u8);
            }
        }
        d.write_bytes(&self.decisions);
        d.write_u64(self.stats.executions);
        d.write_u64(self.stats.events);
        d.write_u64(self.stats.valid_inputs);
        d.write_u64(self.stats.queue_depth as u64);
        d.write_u64(self.stats.decisions);
        d.write_u64(self.stats.decision_digest);
        d.finish()
    }
}

/// Where the driver's random bytes come from: a live RNG (recording) or
/// a previously recorded decision stream (replay).
#[derive(Debug)]
enum ByteSource {
    /// Draw fresh bytes from the seeded generator.
    Fresh(Rng),
    /// Feed back a recorded stream, byte for byte.
    Replay { stream: Vec<u8>, pos: usize },
}

/// The pFuzzer driver.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Fuzzer {
    subject: Subject,
    cfg: DriverConfig,
    source: ByteSource,
    decisions: Vec<u8>,
}

impl Fuzzer {
    /// Creates a driver for `subject` with the given configuration.
    pub fn new(subject: Subject, cfg: DriverConfig) -> Self {
        let source = ByteSource::Fresh(Rng::new(cfg.seed));
        Fuzzer {
            subject,
            cfg,
            source,
            decisions: Vec::new(),
        }
    }

    /// Creates a driver that replays a recorded decision stream instead
    /// of drawing from the RNG. With the same subject and configuration
    /// as the recording run, [`run`](Self::run) produces a report with
    /// an identical [`digest`](FuzzReport::digest).
    pub fn replaying(subject: Subject, cfg: DriverConfig, decisions: Vec<u8>) -> Self {
        Fuzzer {
            subject,
            cfg,
            source: ByteSource::Replay {
                stream: decisions,
                pos: 0,
            },
            decisions: Vec::new(),
        }
    }

    /// The next decision byte: drawn from the RNG (and recorded) in
    /// fresh mode, read back from the recorded stream in replay mode.
    ///
    /// # Panics
    ///
    /// Panics in replay mode when the recorded stream runs out — the
    /// campaign asked for more randomness than the recording drew, which
    /// means the subject or configuration drifted since the recording.
    fn next_byte(&mut self) -> u8 {
        let b = match &mut self.source {
            ByteSource::Fresh(rng) => rng.byte_ascii(),
            ByteSource::Replay { stream, pos } => {
                assert!(
                    *pos < stream.len(),
                    "replay decision stream exhausted after {} bytes: \
                     subject or configuration drifted since the recording",
                    stream.len()
                );
                let b = stream[*pos];
                *pos += 1;
                b
            }
        };
        self.decisions.push(b);
        b
    }

    /// Runs the campaign to completion and reports the results.
    pub fn run(mut self) -> FuzzReport {
        let mut report = FuzzReport {
            valid_inputs: Vec::new(),
            valid_found_at: Vec::new(),
            execs: 0,
            valid_branches: BranchSet::new(),
            all_branches: BranchSet::new(),
            first_valid_execs: None,
            trace: Vec::new(),
            stats: RunStats::default(),
            decisions: Vec::new(),
        };
        let mut clock = PhaseClock::new();
        let mut queue = CandidateQueue::new(self.cfg.heuristic);
        // Subjects are deterministic, so re-running an input known to be
        // invalid (and without new coverage at the time) cannot turn it
        // into a find; remembering those verdicts spends the budget on
        // the informative extension runs instead. Algorithm 1 re-runs
        // them; the cache only changes cost, not the search.
        let mut known_invalid: HashSet<Vec<u8>> = HashSet::new();

        // Line 4: input ← random character. (The empty string is the
        // conceptual step before it: it is rejected with an immediate
        // EOF access, which is what appending the first character fixes.)
        let mut current = vec![self.next_byte()];
        let mut parents = 0usize;

        while report.execs < self.cfg.max_execs {
            if let Some(max) = self.cfg.max_valid_inputs {
                if report.valid_inputs.len() >= max {
                    break;
                }
            }
            // Line 7: first run — the input as-is (usually a substitution).
            // The verdict cache only pays off when the extension run
            // follows; in replace-only mode skipping the first run would
            // consume no budget at all and never terminate.
            let use_cache = self.cfg.extension_mode != ExtensionMode::ReplaceOnly;
            let accepted = if use_cache && known_invalid.contains(&current) {
                false
            } else {
                let exec = clock.time("execute", || self.execute(&mut report, &current));
                if !exec.valid {
                    known_invalid.insert(current.clone());
                }
                let accepted = self.run_check(&mut report, &mut queue, &current, &exec, parents);
                self.trace(
                    &mut report,
                    &current,
                    &exec,
                    if accepted { "accepted" } else { "first run" },
                );
                accepted
            };
            if !accepted && self.cfg.extension_mode != ExtensionMode::ReplaceOnly {
                // Line 9: second run — with a random extension, so that a
                // correct substitution can grow instead of being judged
                // incomplete.
                if report.execs >= self.cfg.max_execs {
                    break;
                }
                let mut extended = current.clone();
                extended.push(self.next_byte());
                let exec2 = clock.time("execute", || self.execute(&mut report, &extended));
                let accepted2 = self.run_check(&mut report, &mut queue, &extended, &exec2, parents);
                if !accepted2 {
                    // Line 11: derive substitution candidates from the
                    // extended run.
                    self.add_inputs(&mut queue, &extended, &exec2.failure, parents, &report);
                    if exec2.failure.candidates.is_empty()
                        && current.len() <= self.cfg.max_input_len
                    {
                        // The random extension hit a spot where no
                        // comparison constrains it (Figure 1, step 3:
                        // "we append another random character") — give
                        // the prefix another draw later.
                        queue.push(
                            QueueEntry {
                                input: current.clone(),
                                parent_branches: exec2.failure.branches_up_to_rejection.clone(),
                                replacement_len: 1,
                                avg_stack: exec2.failure.avg_stack_size,
                                num_parents: parents + 1,
                                path_hash: exec2.failure.path_hash,
                            },
                            &report.valid_branches,
                        );
                    }
                }
                self.trace(&mut report, &extended, &exec2, "extension run");
            }
            // Line 14: next candidate, or a fresh random restart.
            let next = clock.time("schedule", || {
                if queue.len() > QUEUE_HIGH_WATER {
                    queue.shrink(QUEUE_LOW_WATER, &report.valid_branches);
                }
                match self.cfg.search {
                    SearchMode::Heuristic => queue.pop(&report.valid_branches),
                    SearchMode::DepthFirst => queue.pop_newest(),
                    SearchMode::BreadthFirst => queue.pop_oldest(),
                }
            });
            match next {
                Some(entry) => {
                    current = entry.input;
                    parents = entry.num_parents;
                }
                None => {
                    current = vec![self.next_byte()];
                    parents = 0;
                }
            }
        }
        report.stats.executions = report.execs;
        report.stats.valid_inputs = report.valid_inputs.len() as u64;
        report.stats.queue_depth = queue.len();
        report.decisions = std::mem::take(&mut self.decisions);
        report.stats.decisions = report.decisions.len() as u64;
        report.stats.decision_digest = digest_bytes(&report.decisions);
        let (wall, phases) = clock.finish();
        report.stats.wall_secs = wall;
        report.stats.phases = phases;
        report
    }

    fn execute(&mut self, report: &mut FuzzReport, input: &[u8]) -> FailureExecution {
        report.execs += 1;
        let exec = match self.cfg.sink {
            SinkMode::LastFailure => self.subject.run_last_failure(input),
            SinkMode::FullLog => {
                let e = self.subject.run(input);
                FailureExecution {
                    valid: e.valid,
                    error: e.error,
                    failure: e.log.failure_summary(),
                }
            }
        };
        report.stats.events += exec.failure.events;
        report.all_branches.union_with(&exec.failure.branches);
        exec
    }

    /// `runCheck` (Algorithm 1, lines 27–35): an input counts as a find
    /// only when it is accepted *and* covers branches no valid input
    /// covered before. On a find, `validInp` records it and derives new
    /// candidates from its comparisons.
    fn run_check(
        &mut self,
        report: &mut FuzzReport,
        queue: &mut CandidateQueue,
        input: &[u8],
        exec: &FailureExecution,
        parents: usize,
    ) -> bool {
        let summary = &exec.failure;
        queue.note_path(summary.path_hash);
        if exec.valid && summary.branches.difference_size(&report.valid_branches) > 0 {
            // validInp (lines 37–45)
            report.valid_inputs.push(input.to_vec());
            report.valid_found_at.push(report.execs);
            report.first_valid_execs.get_or_insert(report.execs);
            report.valid_branches.union_with(&summary.branches);
            // Queue rescoring (line 40) is implicit: scores are computed
            // against the live vBr at pop time.
            self.add_inputs(queue, input, summary, parents, report);
            true
        } else {
            false
        }
    }

    /// `addInputs` (Algorithm 1, lines 19–25): one new candidate per
    /// substitution suggested by the comparisons at the rejection point.
    fn add_inputs(
        &mut self,
        queue: &mut CandidateQueue,
        input: &[u8],
        summary: &FailureSummary,
        parents: usize,
        report: &FuzzReport,
    ) {
        if input.len() > self.cfg.max_input_len {
            return;
        }
        if self.cfg.extension_mode == ExtensionMode::AppendOnly {
            // ablation: never substitute, only grow
            let mut grown = input.to_vec();
            grown.push(self.next_byte());
            queue.push(
                QueueEntry {
                    input: grown,
                    parent_branches: summary.branches_up_to_rejection.clone(),
                    replacement_len: 1,
                    avg_stack: summary.avg_stack_size,
                    num_parents: parents + 1,
                    path_hash: summary.path_hash,
                },
                &report.valid_branches,
            );
            return;
        }
        for cand in &summary.candidates {
            // Replace from the rejection point on: everything after the
            // first invalid character is garbage by definition.
            let mut new_input = input[..cand.at_index.min(input.len())].to_vec();
            new_input.extend_from_slice(&cand.bytes);
            if new_input.len() > self.cfg.max_input_len {
                continue;
            }
            queue.push(
                QueueEntry {
                    input: new_input,
                    parent_branches: summary.branches_up_to_rejection.clone(),
                    replacement_len: cand.replacement_len,
                    avg_stack: summary.avg_stack_size,
                    num_parents: parents + 1,
                    path_hash: summary.path_hash,
                },
                &report.valid_branches,
            );
        }
    }

    fn trace(&self, report: &mut FuzzReport, input: &[u8], exec: &FailureExecution, action: &str) {
        if !self.cfg.trace {
            return;
        }
        report.trace.push(TraceStep {
            input: input.to_vec(),
            valid: exec.valid,
            eof: exec.failure.eof_access.is_some(),
            candidates: exec.failure.candidates.len(),
            action: action.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeuristicConfig;

    fn run_arith(seed: u64, execs: u64) -> FuzzReport {
        let cfg = DriverConfig {
            seed,
            max_execs: execs,
            ..DriverConfig::default()
        };
        Fuzzer::new(pdf_subjects::arith::subject(), cfg).run()
    }

    #[test]
    fn finds_valid_arith_inputs() {
        let report = run_arith(1, 3_000);
        assert!(!report.valid_inputs.is_empty(), "no valid inputs found");
        let subject = pdf_subjects::arith::subject();
        for input in &report.valid_inputs {
            assert!(
                subject.run(input).valid,
                "{:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = run_arith(7, 1_500);
        let b = run_arith(7, 1_500);
        assert_eq!(a.valid_inputs, b.valid_inputs);
        assert_eq!(a.execs, b.execs);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = run_arith(1, 1_500);
        let b = run_arith(2, 1_500);
        // Input *sets* typically differ; at minimum the traces must not
        // be byte-identical in discovery order.
        assert!(a.valid_inputs != b.valid_inputs || a.execs != b.execs);
    }

    #[test]
    fn respects_exec_budget() {
        let report = run_arith(3, 100);
        assert!(report.execs <= 100);
    }

    #[test]
    fn stops_at_max_valid_inputs() {
        let cfg = DriverConfig {
            seed: 5,
            max_execs: 50_000,
            max_valid_inputs: Some(3),
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert!(report.valid_inputs.len() <= 3);
    }

    #[test]
    fn closes_dyck_inputs() {
        let cfg = DriverConfig {
            seed: 11,
            max_execs: 5_000,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::dyck::subject(), cfg).run();
        assert!(
            !report.valid_inputs.is_empty(),
            "heuristic failed to close any bracket string"
        );
        let subject = pdf_subjects::dyck::subject();
        for input in &report.valid_inputs {
            assert!(subject.run(input).valid);
        }
    }

    #[test]
    fn trace_records_steps() {
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 50,
            trace: true,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert!(!report.trace.is_empty());
        assert!(report.trace.iter().any(|s| !s.input.is_empty()));
    }

    #[test]
    fn valid_branches_subset_of_all_branches() {
        let report = run_arith(13, 1_000);
        for b in report.valid_branches.iter() {
            assert!(report.all_branches.contains(b));
        }
    }

    #[test]
    fn first_valid_execs_recorded() {
        let report = run_arith(1, 3_000);
        let first = report.first_valid_execs.expect("found something");
        assert!(first <= report.execs);
    }

    #[test]
    fn disabled_heuristic_still_runs() {
        let cfg = DriverConfig {
            seed: 2,
            max_execs: 500,
            heuristic: HeuristicConfig::disabled(),
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 500);
    }

    #[test]
    fn found_at_is_parallel_and_monotone() {
        let report = run_arith(1, 2_000);
        assert_eq!(report.valid_inputs.len(), report.valid_found_at.len());
        assert!(report.valid_found_at.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn naive_searches_run_and_underperform_on_dyck() {
        // Section 3: depth-first opens brackets it cannot close;
        // breadth-first cannot build long prefixes. Both find no more
        // (and typically far fewer) valid inputs than the heuristic.
        use crate::config::SearchMode;
        let run = |search: SearchMode| {
            let cfg = DriverConfig {
                seed: 5,
                max_execs: 6_000,
                search,
                ..DriverConfig::default()
            };
            Fuzzer::new(pdf_subjects::dyck::subject(), cfg).run()
        };
        let heuristic = run(SearchMode::Heuristic);
        let dfs = run(SearchMode::DepthFirst);
        let bfs = run(SearchMode::BreadthFirst);
        assert!(!heuristic.valid_inputs.is_empty());
        assert!(heuristic.valid_inputs.len() >= dfs.valid_inputs.len());
        assert!(heuristic.valid_inputs.len() >= bfs.valid_inputs.len());
    }

    #[test]
    fn replace_only_mode_terminates() {
        // regression: the verdict cache must not starve replace-only
        // mode of budget-consuming runs (it would loop forever)
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 2_000,
            extension_mode: crate::config::ExtensionMode::ReplaceOnly,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 2_000);
    }

    #[test]
    fn append_only_mode_terminates() {
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 2_000,
            extension_mode: crate::config::ExtensionMode::AppendOnly,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 2_000);
    }

    #[test]
    fn sink_modes_produce_identical_campaigns() {
        // the streaming LastFailure sink is defined by equivalence to the
        // full-log reductions; the whole campaign must not notice the
        // difference
        for subject in [
            pdf_subjects::arith::subject(),
            pdf_subjects::json::subject(),
        ] {
            let run = |sink: SinkMode| {
                let cfg = DriverConfig {
                    seed: 9,
                    max_execs: 2_000,
                    sink,
                    trace: true,
                    ..DriverConfig::default()
                };
                Fuzzer::new(subject, cfg).run()
            };
            let fast = run(SinkMode::LastFailure);
            let full = run(SinkMode::FullLog);
            assert_eq!(fast.valid_inputs, full.valid_inputs);
            assert_eq!(fast.valid_found_at, full.valid_found_at);
            assert_eq!(fast.execs, full.execs);
            assert_eq!(fast.valid_branches, full.valid_branches);
            assert_eq!(fast.all_branches, full.all_branches);
            assert_eq!(fast.stats.events, full.stats.events);
            assert_eq!(fast.trace.len(), full.trace.len());
            for (a, b) in fast.trace.iter().zip(&full.trace) {
                assert_eq!(a.input, b.input);
                assert_eq!(a.valid, b.valid);
                assert_eq!(a.eof, b.eof);
                assert_eq!(a.candidates, b.candidates);
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let report = run_arith(1, 1_000);
        assert_eq!(report.stats.executions, report.execs);
        assert_eq!(
            report.stats.valid_inputs as usize,
            report.valid_inputs.len()
        );
        assert!(report.stats.events > 0);
        assert!(report.stats.wall_secs > 0.0);
        assert!(report.stats.execs_per_sec() > 0.0);
        assert!(report
            .stats
            .phases
            .iter()
            .any(|(name, _)| *name == "execute"));
    }

    #[test]
    fn replay_reproduces_digest_and_outputs() {
        for (subject, seed) in [
            (pdf_subjects::arith::subject(), 7u64),
            (pdf_subjects::dyck::subject(), 11),
        ] {
            let cfg = DriverConfig {
                seed,
                max_execs: 2_000,
                ..DriverConfig::default()
            };
            let recorded = Fuzzer::new(subject, cfg.clone()).run();
            assert_eq!(
                recorded.stats.decisions,
                recorded.decisions.len() as u64,
                "stats mirror the decision stream"
            );
            let replayed = Fuzzer::replaying(subject, cfg, recorded.decisions.clone()).run();
            assert_eq!(recorded.valid_inputs, replayed.valid_inputs);
            assert_eq!(recorded.execs, replayed.execs);
            assert_eq!(recorded.decisions, replayed.decisions);
            assert_eq!(recorded.digest(), replayed.digest());
        }
    }

    #[test]
    fn digest_separates_different_campaigns() {
        let a = run_arith(1, 1_500);
        let b = run_arith(2, 1_500);
        assert_ne!(a.digest(), b.digest());
        // and is stable for identical campaigns
        assert_eq!(a.digest(), run_arith(1, 1_500).digest());
    }

    #[test]
    #[should_panic(expected = "replay decision stream exhausted")]
    fn replay_panics_on_short_stream() {
        let cfg = DriverConfig {
            seed: 3,
            max_execs: 500,
            ..DriverConfig::default()
        };
        let recorded = Fuzzer::new(pdf_subjects::arith::subject(), cfg.clone()).run();
        let mut truncated = recorded.decisions;
        truncated.truncate(truncated.len() / 2);
        Fuzzer::replaying(pdf_subjects::arith::subject(), cfg, truncated).run();
    }

    #[test]
    fn json_keywords_reachable() {
        // the headline capability: synthesizing keywords from strcmp
        // feedback — within a modest budget pFuzzer produces an input
        // containing "true", "false" or "null"
        let cfg = DriverConfig {
            seed: 4,
            max_execs: 20_000,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::json::subject(), cfg).run();
        let has_keyword = report.valid_inputs.iter().any(|i| {
            let s = String::from_utf8_lossy(i);
            s.contains("true") || s.contains("false") || s.contains("null")
        });
        assert!(
            has_keyword,
            "no JSON keyword in {:?}",
            report
                .valid_inputs
                .iter()
                .map(|i| String::from_utf8_lossy(i).into_owned())
                .collect::<Vec<_>>()
        );
    }
}

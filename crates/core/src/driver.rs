//! The fuzzing driver: Algorithm 1 of the paper.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::Path;
use std::time::Instant;

use pdf_runtime::{
    digest_bytes, BranchSet, Candidate, CmpValue, Digest, ExecArena, FailureExecution,
    FailureSummary, FastExecution, PhaseClock, Rng, RunStats, Subject,
};

use crate::budget::{CampaignBudget, StopReason, DEADLINE_CHECK_INTERVAL};
use crate::checkpoint::{
    branch_pairs_of, branch_set_of, Checkpoint, CheckpointError, QueueItemSnapshot, QueueSnapshot,
};
use crate::config::{DriverConfig, ExecMode, ExtensionMode, HeuristicConfig, SearchMode, SinkMode};
use crate::queue::{CandidateQueue, QueueEntry, QueueState};

/// Cap on the candidate queue; when exceeded, the worst half is dropped.
const QUEUE_HIGH_WATER: usize = 8_192;
const QUEUE_LOW_WATER: usize = 4_096;

/// One step of the search, recorded when [`DriverConfig::trace`] is on.
/// Drives the Figure 1 walkthrough example.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The input that was executed.
    pub input: Vec<u8>,
    /// Whether the subject accepted it.
    pub valid: bool,
    /// Whether the run tried to read past the end of the input.
    pub eof: bool,
    /// Substitution candidates derived from the run.
    pub candidates: usize,
    /// Human-readable description of what the driver did next.
    pub action: String,
}

/// The outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Valid inputs, in discovery order. By construction every one is
    /// accepted by the subject and covered new branches when found.
    pub valid_inputs: Vec<Vec<u8>>,
    /// For each valid input, the execution count at which it was found
    /// (parallel to `valid_inputs`; evidences the "fewer tests by
    /// orders of magnitude" claim).
    pub valid_found_at: Vec<u64>,
    /// Subject executions spent.
    pub execs: u64,
    /// Branches covered by valid inputs (`vBr`).
    pub valid_branches: BranchSet,
    /// Branches covered by *any* run, valid or not (used for the
    /// relative-coverage universe).
    pub all_branches: BranchSet,
    /// Executions spent until the first valid input, if any was found.
    pub first_valid_execs: Option<u64>,
    /// Step-by-step trace (empty unless tracing was enabled).
    pub trace: Vec<TraceStep>,
    /// Observability counters and timings for the campaign. Wall-clock
    /// fields vary between runs; everything else is deterministic.
    pub stats: RunStats,
    /// Every random byte the campaign drew, in draw order — the
    /// campaign's complete decision stream. Replaying these bytes
    /// through [`Fuzzer::replaying`] re-executes the campaign exactly,
    /// without an RNG.
    pub decisions: Vec<u8>,
    /// Expected-token observations mined while fuzzing
    /// ([`DriverConfig::mine_tokens`]): the full expected strings of
    /// failed string comparisons at rejection points, with occurrence
    /// counts, in canonical (byte-sorted) order. Empty unless mining was
    /// enabled. Feed these to `pdf_tokens::TokenMiner` together with
    /// `valid_inputs` to build a dictionary.
    pub mined_tokens: Vec<(Vec<u8>, u64)>,
}

impl FuzzReport {
    /// FNV-1a digest over every deterministic field of the report:
    /// valid inputs (order and bytes), discovery indices, execution
    /// count, branch sets, the decision stream and the deterministic
    /// stats counters. Wall-clock fields and the trace are excluded.
    /// Byte-identical campaigns (same digest) are the contract replay
    /// verification checks.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.valid_inputs.len() as u64);
        for input in &self.valid_inputs {
            d.write_bytes(input);
        }
        d.write_u64(self.valid_found_at.len() as u64);
        for &at in &self.valid_found_at {
            d.write_u64(at);
        }
        d.write_u64(self.execs);
        match self.first_valid_execs {
            Some(n) => {
                d.write_u8(1);
                d.write_u64(n);
            }
            None => d.write_u8(0),
        }
        for set in [&self.valid_branches, &self.all_branches] {
            d.write_u64(set.len() as u64);
            for b in set.iter() {
                d.write_u64(b.site.0);
                d.write_u8(b.outcome as u8);
            }
        }
        d.write_bytes(&self.decisions);
        d.write_u64(self.stats.executions);
        d.write_u64(self.stats.events);
        d.write_u64(self.stats.valid_inputs);
        // Hangs and crashes are deterministic per campaign (fuel is part
        // of the subject, panics are caught in-process), so they belong
        // in the digest. `retries` stays out: it is a supervisor-level
        // counter a replayed or resumed campaign legitimately lacks.
        d.write_u64(self.stats.hangs);
        d.write_u64(self.stats.crashes);
        d.write_u64(self.stats.queue_depth as u64);
        d.write_u64(self.stats.decisions);
        d.write_u64(self.stats.decision_digest);
        // Folded in only when mining ran, so digests of campaigns without
        // token mining stay byte-identical to pre-token releases.
        if !self.mined_tokens.is_empty() {
            d.write_str("mined-tokens");
            d.write_u64(self.mined_tokens.len() as u64);
            for (tok, count) in &self.mined_tokens {
                d.write_bytes(tok);
                d.write_u64(*count);
            }
        }
        d.finish()
    }
}

/// Where the driver's random bytes come from: a live RNG (recording) or
/// a previously recorded decision stream (replay).
#[derive(Debug)]
enum ByteSource {
    /// Draw fresh bytes from the seeded generator.
    Fresh(Rng),
    /// Feed back a recorded stream, byte for byte.
    Replay { stream: Vec<u8>, pos: usize },
}

/// A coordinator's window into a paused campaign, obtained from
/// [`Fuzzer::sync_point`] between [`Fuzzer::run_until`] calls.
///
/// This is the hook the `pdf-fleet` crate builds sharded campaigns on:
/// at every synchronization epoch the coordinator reads each shard's
/// discoveries through its sync point and [injects](Self::inject) the
/// valid inputs other shards found into this shard's candidate queue.
///
/// The window is deliberately narrow. Reads expose only the
/// deterministic search state (valid inputs, coverage, execution
/// count, queue depth); the two write operations enqueue an input
/// through the ordinary [`CandidateQueue`] scoring path
/// ([`inject`](Self::inject)) and union peer coverage into the
/// candidate-scoring set ([`adopt_coverage`](Self::adopt_coverage)).
/// None of them touches the RNG, so sync points preserve the
/// campaign's determinism contract: with a fixed pause/injection
/// schedule, re-running reproduces the decision stream and report
/// digest exactly.
#[derive(Debug)]
pub struct SyncPoint<'a> {
    fuzzer: &'a mut Fuzzer,
}

impl SyncPoint<'_> {
    /// Valid inputs discovered so far, in discovery order.
    pub fn valid_inputs(&self) -> &[Vec<u8>] {
        &self.fuzzer.state.report.valid_inputs
    }

    /// For each valid input, the execution count at which it was found
    /// (parallel to [`valid_inputs`](Self::valid_inputs)).
    pub fn valid_found_at(&self) -> &[u64] {
        &self.fuzzer.state.report.valid_found_at
    }

    /// Branches covered by valid inputs so far (`vBr`).
    pub fn valid_branches(&self) -> &BranchSet {
        &self.fuzzer.state.report.valid_branches
    }

    /// Branches covered by any run so far, valid or not.
    pub fn all_branches(&self) -> &BranchSet {
        &self.fuzzer.state.report.all_branches
    }

    /// Subject executions spent so far.
    pub fn execs(&self) -> u64 {
        self.fuzzer.state.report.execs
    }

    /// Current candidate queue depth.
    pub fn queue_len(&self) -> usize {
        self.fuzzer.state.queue.len()
    }

    /// Enqueues an externally discovered input as a candidate.
    ///
    /// The input enters through the ordinary queue-scoring path with no
    /// parent lineage: empty parent branches (its coverage is unknown
    /// to *this* shard until it runs), a replacement length equal to
    /// the input length (a whole foreign input is the strongest form of
    /// "large known-good splice", which ranks it above most locally
    /// derived candidates), and a path hash of the input bytes so
    /// repeated injections of the same input decay via the usual
    /// path-seen penalty. No RNG byte is consumed, and checkpointing
    /// serializes injected entries like any other queue item.
    pub fn inject(&mut self, input: Vec<u8>) {
        let st = &mut self.fuzzer.state;
        let replacement_len = input.len().max(1);
        let path_hash = digest_bytes(&input);
        st.queue.push(
            QueueEntry {
                input,
                parent_branches: BranchSet::new(),
                replacement_len,
                avg_stack: 0.0,
                num_parents: 0,
                path_hash,
            },
            &st.steer_branches,
        );
    }

    /// Merges externally discovered valid-branch coverage into this
    /// shard's *steering* set.
    ///
    /// Adopted branches count as "already covered by a valid input"
    /// for candidate scoring only: the heuristic stops rewarding
    /// candidates that merely rediscover them, pushing this shard
    /// toward regions no shard has validated yet. `run_check` keeps
    /// gating on the shard's own `vBr`, so locally new valid inputs
    /// are still recorded (and can still carry tokens the branch
    /// picture says nothing about). Deterministic (a set union) and
    /// RNG-free; the steering set is checkpointed alongside `vBr`.
    pub fn adopt_coverage(&mut self, coverage: &BranchSet) {
        self.fuzzer.state.steer_branches.union_with(coverage);
    }
}

/// Lifts a fast-tier result into the [`FailureExecution`] shape the
/// rest of the driver consumes. Branch sets stay empty (the fast sink
/// records none) and the path hash falls back to the last-comparison
/// fingerprint, so path-seen decay still distinguishes executions that
/// died at different comparisons. Substitution candidates are expanded
/// from the one failed comparison the fast sink kept — the *Fast
/// Failure Feedback* reduction of
/// [`ExecLog::substitution_candidates`](pdf_runtime::ExecLog::substitution_candidates),
/// which sees every comparison at the rejection index, not just the
/// last.
fn synthesize_failure(fast: &FastExecution) -> FailureExecution {
    let f = &fast.fast;
    let mut candidates = Vec::new();
    if let (Some(idx), Some(expected)) = (f.rejection_index, &f.last_failed) {
        let replacement_len = expected.replacement_len();
        expected.for_each_replacement(|bytes| {
            let duplicate = candidates
                .iter()
                .any(|o: &Candidate| o.replacement_len == replacement_len && o.bytes == bytes);
            if !duplicate {
                candidates.push(Candidate {
                    at_index: idx,
                    replacement_len,
                    bytes: bytes.to_vec(),
                });
            }
        });
    }
    let expected_tokens = match &f.last_failed {
        Some(CmpValue::Str { full, .. }) if full.len() >= 2 => vec![full.clone()],
        _ => Vec::new(),
    };
    let accepted_first = match (f.rejection_index, &f.last_failed) {
        (Some(_), Some(expected)) => expected.accepted_first().into_iter().collect(),
        _ => Vec::new(),
    };
    FailureExecution {
        valid: fast.valid,
        error: fast.error(),
        verdict: fast.verdict.clone(),
        failure: FailureSummary {
            branches: BranchSet::new(),
            branches_up_to_rejection: BranchSet::new(),
            path_hash: f.last_cmp_fingerprint,
            rejection_index: f.rejection_index,
            candidates,
            expected_tokens,
            accepted_first,
            avg_stack_size: f.avg_stack_size,
            eof_access: f.eof_access,
            events: f.events,
            last_cmp_fingerprint: f.last_cmp_fingerprint,
        },
    }
}

/// The escalation filter of [`ExecMode::Tiered`]: a rejected fast-tier
/// run pays for full instrumentation only when it pushed the rejection
/// watermark forward or ended on a comparison the campaign has not
/// escalated before (*Fuzzing with Fast Failure Feedback*: rejection
/// index and last comparison carry the actionable signal). Both fields
/// are deterministic functions of the executions seen so far, so the
/// filter checkpoints and resumes byte-identically (`BTreeSet` keeps
/// the serialized fingerprints canonically ordered).
#[derive(Debug, Default)]
struct TierState {
    /// Highest rejection index any escalated run reached.
    max_rejection: Option<usize>,
    /// Last-comparison fingerprints already escalated.
    seen_fingerprints: BTreeSet<u64>,
}

/// The live search state of a campaign, separated from the driver's
/// immutable configuration so [`Fuzzer::run_until`] can pause between
/// iterations and [`Fuzzer::checkpoint`] can serialize everything the
/// next iteration depends on.
#[derive(Debug)]
struct CampaignState {
    report: FuzzReport,
    queue: CandidateQueue,
    known_invalid: HashSet<Vec<u8>>,
    /// The branch set candidates are scored against: the shard's own
    /// `vBr` plus any coverage adopted from fleet peers
    /// ([`SyncPoint::adopt_coverage`]). Equal to `report.valid_branches`
    /// in a standalone campaign; only ever a superset of it.
    steer_branches: BranchSet,
    current: Vec<u8>,
    parents: usize,
    /// Escalation-filter state ([`ExecMode::Tiered`] only; stays at its
    /// default in the other modes).
    tier: TierState,
    /// Expected-token observation counts ([`DriverConfig::mine_tokens`]
    /// only; stays empty otherwise). `BTreeMap` so the report and
    /// checkpoint emit tokens in canonical order.
    mined: BTreeMap<Vec<u8>, u64>,
    /// Whether the initial input (Algorithm 1, line 4) was drawn yet.
    /// Priming lazily — on the first `run_until` call rather than at
    /// construction — keeps construction free of RNG draws, so a
    /// checkpoint taken before any run is trivially resumable.
    primed: bool,
}

impl CampaignState {
    fn new(heuristic: HeuristicConfig) -> Self {
        CampaignState {
            report: FuzzReport {
                valid_inputs: Vec::new(),
                valid_found_at: Vec::new(),
                execs: 0,
                valid_branches: BranchSet::new(),
                all_branches: BranchSet::new(),
                first_valid_execs: None,
                trace: Vec::new(),
                stats: RunStats::default(),
                decisions: Vec::new(),
                mined_tokens: Vec::new(),
            },
            queue: CandidateQueue::new(heuristic),
            known_invalid: HashSet::new(),
            steer_branches: BranchSet::new(),
            current: Vec::new(),
            parents: 0,
            tier: TierState::default(),
            mined: BTreeMap::new(),
            primed: false,
        }
    }
}

/// The pFuzzer driver.
///
/// See the [crate docs](crate) for an end-to-end example. Campaigns can
/// run to completion in one call ([`run`](Self::run)) or incrementally
/// under a [`CampaignBudget`] ([`run_until`](Self::run_until)), pausing
/// for inspection and [checkpointing](Self::checkpoint_to) in between.
///
/// Every random byte the driver draws flows through one chokepoint and
/// is journaled, so a campaign re-driven from its recorded decision
/// stream ([`replaying`](Self::replaying)) — with no RNG at all —
/// reproduces the original report byte for byte:
///
/// ```
/// use pdf_core::{DriverConfig, Fuzzer};
///
/// let cfg = DriverConfig { seed: 3, max_execs: 800, ..DriverConfig::default() };
/// let subject = pdf_subjects::csv::subject();
/// let recorded = Fuzzer::new(subject, cfg.clone()).run();
/// let replayed = Fuzzer::replaying(subject, cfg, recorded.decisions.clone()).run();
/// assert_eq!(recorded.digest(), replayed.digest());
/// ```
#[derive(Debug)]
pub struct Fuzzer {
    subject: Subject,
    cfg: DriverConfig,
    source: ByteSource,
    decisions: Vec<u8>,
    state: CampaignState,
    /// Reusable execution scratch (input buffer, sink buffers) shared by
    /// every run the driver makes; cleared, never reallocated, between
    /// executions.
    arena: ExecArena,
    /// Started on the first `run_until` call and kept across pauses;
    /// `Option` so `run_until` can take it out while driving and
    /// `into_report` can consume it with `finish()`.
    clock: Option<PhaseClock>,
}

impl Fuzzer {
    /// Creates a driver for `subject` with the given configuration.
    pub fn new(subject: Subject, cfg: DriverConfig) -> Self {
        let source = ByteSource::Fresh(Rng::new(cfg.seed));
        let state = CampaignState::new(cfg.heuristic);
        Fuzzer {
            subject,
            cfg,
            source,
            decisions: Vec::new(),
            state,
            arena: ExecArena::new(),
            clock: None,
        }
    }

    /// Creates a driver that replays a recorded decision stream instead
    /// of drawing from the RNG. With the same subject and configuration
    /// as the recording run, [`run`](Self::run) produces a report with
    /// an identical [`digest`](FuzzReport::digest).
    pub fn replaying(subject: Subject, cfg: DriverConfig, decisions: Vec<u8>) -> Self {
        let state = CampaignState::new(cfg.heuristic);
        Fuzzer {
            subject,
            cfg,
            source: ByteSource::Replay {
                stream: decisions,
                pos: 0,
            },
            decisions: Vec::new(),
            state,
            arena: ExecArena::new(),
            clock: None,
        }
    }

    /// The next decision byte: drawn from the RNG (and recorded) in
    /// fresh mode, read back from the recorded stream in replay mode.
    ///
    /// # Panics
    ///
    /// Panics in replay mode when the recorded stream runs out — the
    /// campaign asked for more randomness than the recording drew, which
    /// means the subject or configuration drifted since the recording.
    fn next_byte(&mut self) -> u8 {
        let b = match &mut self.source {
            ByteSource::Fresh(rng) => rng.byte_ascii(),
            ByteSource::Replay { stream, pos } => {
                assert!(
                    *pos < stream.len(),
                    "replay decision stream exhausted after {} bytes: \
                     subject or configuration drifted since the recording",
                    stream.len()
                );
                let b = stream[*pos];
                *pos += 1;
                b
            }
        };
        self.decisions.push(b);
        b
    }

    /// Total subject executions the campaign has spent so far, across
    /// all [`run_until`](Self::run_until) calls. Useful for expressing
    /// relative pause points ("another 500 execs from here") with
    /// [`CampaignBudget::execs`].
    pub fn execs(&self) -> u64 {
        self.state.report.execs
    }

    /// Valid inputs the campaign has discovered so far.
    pub fn valid_count(&self) -> usize {
        self.state.report.valid_inputs.len()
    }

    /// Whether the campaign is complete: the configured `max_execs`
    /// budget is spent or `max_valid_inputs` was reached. A complete
    /// campaign's [`run_until`](Self::run_until) returns
    /// [`StopReason::Finished`] immediately; an external scheduler uses
    /// this to finalize a resumed campaign without dispatching it.
    pub fn is_complete(&self) -> bool {
        self.state.report.execs >= self.cfg.max_execs
            || self
                .cfg
                .max_valid_inputs
                .is_some_and(|max| self.state.report.valid_inputs.len() >= max)
    }

    /// Opens a [`SyncPoint`] on the paused campaign: a coordinator's
    /// window for reading search state and injecting externally
    /// discovered inputs between [`run_until`](Self::run_until) calls.
    ///
    /// Everything a sync point does is RNG-free — reading state draws
    /// nothing, and [`SyncPoint::inject`] goes straight into the
    /// candidate queue — so a fixed schedule of pauses and injections
    /// keeps the campaign deterministic: the decision stream stays a
    /// pure function of the seed and the injected inputs.
    ///
    /// ```
    /// use pdf_core::{CampaignBudget, DriverConfig, Fuzzer};
    ///
    /// let cfg = DriverConfig { seed: 1, max_execs: 400, ..DriverConfig::default() };
    /// let mut fuzzer = Fuzzer::new(pdf_subjects::dyck::subject(), cfg);
    /// fuzzer.run_until(&CampaignBudget::execs(100));
    /// let mut sp = fuzzer.sync_point();
    /// let before = sp.queue_len();
    /// sp.inject(b"()".to_vec());
    /// assert_eq!(sp.queue_len(), before + 1);
    /// ```
    pub fn sync_point(&mut self) -> SyncPoint<'_> {
        SyncPoint { fuzzer: self }
    }

    /// Runs the campaign to completion and reports the results.
    pub fn run(mut self) -> FuzzReport {
        self.run_until(&CampaignBudget::unbounded());
        self.into_report()
    }

    /// Drives the campaign until it finishes or the budget's pause point
    /// hits, whichever comes first. Pausing is invisible to the search:
    /// the pause checks share the iteration boundary with the
    /// termination checks, so any sequence of `run_until` calls
    /// traverses byte-identical iterations to a single uninterrupted
    /// [`run`](Self::run) and [`into_report`](Self::into_report) yields
    /// a report with the same [`digest`](FuzzReport::digest).
    pub fn run_until(&mut self, budget: &CampaignBudget) -> StopReason {
        let mut clock = self.clock.take().unwrap_or_default();
        let mut st = std::mem::replace(&mut self.state, CampaignState::new(self.cfg.heuristic));
        let stop = self.drive(&mut st, &mut clock, budget);
        self.state = st;
        self.clock = Some(clock);
        stop
    }

    fn drive(
        &mut self,
        st: &mut CampaignState,
        clock: &mut PhaseClock,
        budget: &CampaignBudget,
    ) -> StopReason {
        if !st.primed {
            // Line 4: input ← random character. (The empty string is the
            // conceptual step before it: it is rejected with an immediate
            // EOF access, which is what appending the first character
            // fixes.)
            st.current = vec![self.next_byte()];
            st.parents = 0;
            st.primed = true;
        }
        let deadline = budget.deadline.map(|d| Instant::now() + d);
        let mut iters: u64 = 0;
        loop {
            if st.report.execs >= self.cfg.max_execs {
                return StopReason::Finished;
            }
            if let Some(max) = self.cfg.max_valid_inputs {
                if st.report.valid_inputs.len() >= max {
                    return StopReason::Finished;
                }
            }
            if let Some(pause) = budget.max_execs {
                if st.report.execs >= pause {
                    return StopReason::PausedExecs;
                }
            }
            if let Some(dl) = deadline {
                if iters.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= dl {
                    return StopReason::PausedDeadline;
                }
            }
            iters += 1;
            // Line 7: first run — the input as-is (usually a substitution).
            // The verdict cache only pays off when the extension run
            // follows; in replace-only mode skipping the first run would
            // consume no budget at all and never terminate.
            let use_cache = self.cfg.extension_mode != ExtensionMode::ReplaceOnly;
            let accepted = if use_cache && st.known_invalid.contains(&st.current) {
                false
            } else {
                let exec = clock.time("execute", || {
                    self.execute(&mut st.report, &mut st.tier, &st.current)
                });
                self.mine_tokens_from(&mut st.mined, &exec);
                if !exec.valid {
                    st.known_invalid.insert(st.current.clone());
                }
                let accepted = self.run_check(
                    &mut st.report,
                    &mut st.queue,
                    &mut st.steer_branches,
                    &st.current,
                    &exec,
                    st.parents,
                );
                self.trace(
                    &mut st.report,
                    &st.current,
                    &exec,
                    if accepted { "accepted" } else { "first run" },
                );
                accepted
            };
            if !accepted && self.cfg.extension_mode != ExtensionMode::ReplaceOnly {
                // Line 9: second run — with a random extension, so that a
                // correct substitution can grow instead of being judged
                // incomplete.
                if st.report.execs >= self.cfg.max_execs {
                    return StopReason::Finished;
                }
                let mut extended = st.current.clone();
                extended.push(self.next_byte());
                pdf_obs::record(|m| m.appends.inc());
                let exec2 = clock.time("execute", || {
                    self.execute(&mut st.report, &mut st.tier, &extended)
                });
                self.mine_tokens_from(&mut st.mined, &exec2);
                let accepted2 = self.run_check(
                    &mut st.report,
                    &mut st.queue,
                    &mut st.steer_branches,
                    &extended,
                    &exec2,
                    st.parents,
                );
                if !accepted2 {
                    // Line 11: derive substitution candidates from the
                    // extended run.
                    self.add_inputs(
                        &mut st.queue,
                        &extended,
                        &exec2.failure,
                        st.parents,
                        &st.steer_branches,
                    );
                    if exec2.failure.candidates.is_empty()
                        && st.current.len() <= self.cfg.max_input_len
                    {
                        // The random extension hit a spot where no
                        // comparison constrains it (Figure 1, step 3:
                        // "we append another random character") — give
                        // the prefix another draw later.
                        pdf_obs::record(|m| m.eof_extensions.inc());
                        st.queue.push(
                            QueueEntry {
                                input: st.current.clone(),
                                parent_branches: exec2.failure.branches_up_to_rejection.clone(),
                                replacement_len: 1,
                                avg_stack: exec2.failure.avg_stack_size,
                                num_parents: st.parents + 1,
                                path_hash: exec2.failure.path_hash,
                            },
                            &st.steer_branches,
                        );
                    }
                }
                self.trace(&mut st.report, &extended, &exec2, "extension run");
            }
            // Line 14: next candidate, or a fresh random restart.
            let st_queue = &mut st.queue;
            let st_steer = &st.steer_branches;
            let search = self.cfg.search;
            let next = clock.time("schedule", || {
                let _span = pdf_obs::span("driver.pick");
                if st_queue.len() > QUEUE_HIGH_WATER {
                    st_queue.shrink(QUEUE_LOW_WATER, st_steer);
                }
                match search {
                    SearchMode::Heuristic => st_queue.pop(st_steer),
                    SearchMode::DepthFirst => st_queue.pop_newest(),
                    SearchMode::BreadthFirst => st_queue.pop_oldest(),
                }
            });
            pdf_obs::record(|m| {
                let depth = st.queue.len() as u64;
                m.queue_depth.observe(depth);
                m.queue_depth_now.set(depth);
            });
            match next {
                Some(entry) => {
                    st.current = entry.input;
                    st.parents = entry.num_parents;
                }
                None => {
                    st.current = vec![self.next_byte()];
                    st.parents = 0;
                    pdf_obs::record(|m| m.restarts.inc());
                }
            }
        }
    }

    /// Finalizes the campaign into its report: derived stats counters,
    /// the decision stream and the wall-clock phases. Consumes the
    /// driver; call after [`run_until`](Self::run_until) returns
    /// [`StopReason::Finished`] (calling earlier simply reports the
    /// campaign as paused mid-flight).
    pub fn into_report(mut self) -> FuzzReport {
        let mut report = self.state.report;
        report.stats.executions = report.execs;
        report.stats.valid_inputs = report.valid_inputs.len() as u64;
        report.stats.queue_depth = self.state.queue.len();
        report.decisions = std::mem::take(&mut self.decisions);
        report.stats.decisions = report.decisions.len() as u64;
        report.stats.decision_digest = digest_bytes(&report.decisions);
        report.mined_tokens = self
            .state
            .mined
            .iter()
            .map(|(tok, &count)| (tok.clone(), count))
            .collect();
        if let Some(clock) = self.clock {
            let (wall, phases) = clock.finish();
            report.stats.wall_secs = wall;
            report.stats.phases = phases;
        }
        report
    }

    /// Serializes the campaign's complete search state.
    ///
    /// [`resume_from_checkpoint`](Self::resume_from_checkpoint) with the
    /// same subject and configuration continues the campaign
    /// byte-identically: running the resumed driver to completion yields
    /// the same [`FuzzReport::digest`] as an uninterrupted run. The trace
    /// (a debugging aid, excluded from digests) is not checkpointed; a
    /// resumed campaign's trace covers only the post-resume iterations.
    ///
    /// # Panics
    ///
    /// Panics on a [`replaying`](Self::replaying) driver: resume
    /// reconstructs the RNG from its draw count, which a replay run does
    /// not have. Checkpoint the recording run instead.
    pub fn checkpoint(&self) -> Checkpoint {
        let draws = match &self.source {
            ByteSource::Fresh(rng) => rng.draw_count(),
            ByteSource::Replay { .. } => panic!(
                "checkpointing a replaying campaign is not supported: \
                 resume reconstructs the RNG from its draw count, which \
                 a replay run does not have"
            ),
        };
        let st = &self.state;
        let qs = st.queue.snapshot_state();
        let mut known_invalid: Vec<Vec<u8>> = st.known_invalid.iter().cloned().collect();
        known_invalid.sort();
        Checkpoint {
            subject: self.subject.name().to_string(),
            config_hash: self.cfg.config_hash(),
            seed: self.cfg.seed,
            draws,
            primed: st.primed,
            execs: st.report.execs,
            events: st.report.stats.events,
            hangs: st.report.stats.hangs,
            crashes: st.report.stats.crashes,
            first_valid_execs: st.report.first_valid_execs,
            decisions: self.decisions.clone(),
            current: st.current.clone(),
            parents: st.parents as u64,
            valid: st
                .report
                .valid_inputs
                .iter()
                .cloned()
                .zip(st.report.valid_found_at.iter().copied())
                .collect(),
            valid_branches: branch_pairs_of(&st.report.valid_branches),
            all_branches: branch_pairs_of(&st.report.all_branches),
            steer_branches: branch_pairs_of(&st.steer_branches),
            known_invalid,
            tier_max_rejection: st.tier.max_rejection.map(|n| n as u64),
            tier_fingerprints: st.tier.seen_fingerprints.iter().copied().collect(),
            mined: st
                .mined
                .iter()
                .map(|(tok, &count)| (tok.clone(), count))
                .collect(),
            queue: QueueSnapshot {
                seq: qs.seq,
                last_vbr_len: qs.last_vbr_len as u64,
                pops_since_rebuild: qs.pops_since_rebuild as u64,
                path_counts: qs.path_counts.iter().map(|&(h, n)| (h, n as u64)).collect(),
                items: qs
                    .items
                    .into_iter()
                    .map(|(score, seq, e)| QueueItemSnapshot {
                        score_bits: score.to_bits(),
                        seq,
                        input: e.input,
                        parent_branches: branch_pairs_of(&e.parent_branches),
                        replacement_len: e.replacement_len as u64,
                        avg_stack_bits: e.avg_stack.to_bits(),
                        num_parents: e.num_parents as u64,
                        path_hash: e.path_hash,
                    })
                    .collect(),
            },
        }
    }

    /// Writes [`checkpoint`](Self::checkpoint) to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn checkpoint_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.checkpoint().encode())
    }

    /// Reconstructs a paused campaign from a checkpoint. The subject and
    /// configuration must match the checkpointing run; drift is detected
    /// via the subject name, [`DriverConfig::config_hash`] and the seed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Drift`] when the subject, configuration or
    /// seed does not match the checkpoint.
    pub fn resume_from_checkpoint(
        subject: Subject,
        cfg: DriverConfig,
        ck: &Checkpoint,
    ) -> Result<Fuzzer, CheckpointError> {
        if subject.name() != ck.subject {
            return Err(CheckpointError::Drift(format!(
                "checkpoint is for subject {:?}, resuming with {:?}",
                ck.subject,
                subject.name()
            )));
        }
        if cfg.config_hash() != ck.config_hash {
            return Err(CheckpointError::Drift(format!(
                "configuration hash {:016x} does not match checkpoint {:016x}",
                cfg.config_hash(),
                ck.config_hash
            )));
        }
        if cfg.seed != ck.seed {
            return Err(CheckpointError::Drift(format!(
                "seed {} does not match checkpoint seed {}",
                cfg.seed, ck.seed
            )));
        }
        let mut rng = Rng::new(cfg.seed);
        rng.skip(ck.draws);
        let (valid_inputs, valid_found_at): (Vec<Vec<u8>>, Vec<u64>) =
            ck.valid.iter().cloned().unzip();
        let stats = RunStats {
            events: ck.events,
            hangs: ck.hangs,
            crashes: ck.crashes,
            ..RunStats::default()
        };
        let report = FuzzReport {
            valid_inputs,
            valid_found_at,
            execs: ck.execs,
            valid_branches: branch_set_of(&ck.valid_branches),
            all_branches: branch_set_of(&ck.all_branches),
            first_valid_execs: ck.first_valid_execs,
            trace: Vec::new(),
            stats,
            decisions: Vec::new(),
            mined_tokens: Vec::new(),
        };
        let queue = CandidateQueue::restore_state(
            cfg.heuristic,
            QueueState {
                items: ck
                    .queue
                    .items
                    .iter()
                    .map(|i| {
                        (
                            f64::from_bits(i.score_bits),
                            i.seq,
                            QueueEntry {
                                input: i.input.clone(),
                                parent_branches: branch_set_of(&i.parent_branches),
                                replacement_len: i.replacement_len as usize,
                                avg_stack: f64::from_bits(i.avg_stack_bits),
                                num_parents: i.num_parents as usize,
                                path_hash: i.path_hash,
                            },
                        )
                    })
                    .collect(),
                path_counts: ck
                    .queue
                    .path_counts
                    .iter()
                    .map(|&(h, n)| (h, n as usize))
                    .collect(),
                seq: ck.queue.seq,
                last_vbr_len: ck.queue.last_vbr_len as usize,
                pops_since_rebuild: ck.queue.pops_since_rebuild as usize,
            },
        );
        // Pre-fleet checkpoints have no steering record; vBr is the
        // correct fallback (they are equal outside a fleet).
        let mut steer_branches = branch_set_of(&ck.steer_branches);
        steer_branches.union_with(&report.valid_branches);
        let state = CampaignState {
            report,
            queue,
            known_invalid: ck.known_invalid.iter().cloned().collect(),
            steer_branches,
            current: ck.current.clone(),
            parents: ck.parents as usize,
            tier: TierState {
                max_rejection: ck.tier_max_rejection.map(|n| n as usize),
                seen_fingerprints: ck.tier_fingerprints.iter().copied().collect(),
            },
            mined: ck.mined.iter().cloned().collect(),
            primed: ck.primed,
        };
        Ok(Fuzzer {
            subject,
            cfg,
            source: ByteSource::Fresh(rng),
            decisions: ck.decisions.clone(),
            state,
            arena: ExecArena::new(),
            clock: None,
        })
    }

    /// Reads a checkpoint file and
    /// [resumes](Self::resume_from_checkpoint) from it.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read, plus every
    /// decode and drift error of the underlying steps.
    pub fn resume_from(
        subject: Subject,
        cfg: DriverConfig,
        path: impl AsRef<Path>,
    ) -> Result<Fuzzer, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let ck = Checkpoint::decode(&text)?;
        Self::resume_from_checkpoint(subject, cfg, &ck)
    }

    /// Executes one candidate under the configured [`ExecMode`].
    ///
    /// `Full` runs full instrumentation directly — byte-identical
    /// campaigns (journal encodings, replay digests) to releases that
    /// predate tiering. `Fast` and `Tiered` run the candidate under the
    /// near-zero-cost fast-failure sink first and only *escalate* to a
    /// second, fully instrumented run when the cheap result warrants it;
    /// everything else returns a summary synthesized from the fast
    /// signal alone (no branch sets — coverage is only ever learned from
    /// escalated runs). Escalation costs a second execution, charged to
    /// the same budget. No mode draws RNG bytes here, so each mode is
    /// deterministic per seed.
    fn execute(
        &mut self,
        report: &mut FuzzReport,
        tier: &mut TierState,
        input: &[u8],
    ) -> FailureExecution {
        match self.cfg.exec_mode {
            ExecMode::Full => self.execute_full(report, input),
            ExecMode::Fast => {
                let fast = self.execute_fast(report, input);
                if fast.valid {
                    // Coverage decides whether a valid input counts as a
                    // find; that needs the real branch set.
                    pdf_obs::record(|m| m.tier_escalations.inc());
                    self.execute_full(report, input)
                } else {
                    synthesize_failure(&fast)
                }
            }
            ExecMode::Tiered => {
                let fast = self.execute_fast(report, input);
                let f = &fast.fast;
                let escalate = fast.valid
                    || f.eof_access.is_some()
                    || f.rejection_index.is_none()
                    || f.rejection_index > tier.max_rejection
                    || !tier.seen_fingerprints.contains(&f.last_cmp_fingerprint);
                if escalate {
                    if f.rejection_index > tier.max_rejection {
                        tier.max_rejection = f.rejection_index;
                    }
                    tier.seen_fingerprints.insert(f.last_cmp_fingerprint);
                    pdf_obs::record(|m| m.tier_escalations.inc());
                    self.execute_full(report, input)
                } else {
                    // The fast signal still yields its one-comparison
                    // candidate set for free; the filter only decides
                    // whether to pay for the fully instrumented re-run
                    // (complete candidates, real branch coverage).
                    pdf_obs::record(|m| m.tier_skips.inc());
                    synthesize_failure(&fast)
                }
            }
        }
    }

    /// One fast-tier execution: fast-failure sink through the arena,
    /// charged to the budget and accounted like any other run.
    fn execute_fast(&mut self, report: &mut FuzzReport, input: &[u8]) -> FastExecution {
        let _span = pdf_obs::span("driver.exec");
        report.execs += 1;
        let exec = self.subject.run_fast_failure_arena(&mut self.arena, input);
        if exec.verdict.is_hang() {
            report.stats.hangs += 1;
        }
        if exec.verdict.is_crash() {
            report.stats.crashes += 1;
        }
        report.stats.events += exec.fast.events;
        pdf_obs::record(|m| m.tier_fast_execs.inc());
        exec
    }

    /// One fully instrumented execution (the pre-tiering hot path).
    fn execute_full(&mut self, report: &mut FuzzReport, input: &[u8]) -> FailureExecution {
        let _span = pdf_obs::span("driver.exec");
        report.execs += 1;
        let exec = match self.cfg.sink {
            SinkMode::LastFailure => self.subject.run_last_failure_arena(&mut self.arena, input),
            SinkMode::FullLog => {
                let e = self.subject.run(input);
                FailureExecution {
                    valid: e.valid,
                    error: e.error,
                    failure: e.log.failure_summary(),
                    verdict: e.verdict,
                }
            }
        };
        if exec.verdict.is_hang() {
            report.stats.hangs += 1;
        }
        if exec.verdict.is_crash() {
            report.stats.crashes += 1;
        }
        report.stats.events += exec.failure.events;
        report.all_branches.union_with(&exec.failure.branches);
        exec
    }

    /// Feeds one execution's expected tokens into the campaign's mining
    /// counts ([`DriverConfig::mine_tokens`]). Observation only: no RNG
    /// draw, no search-state change, so enabling mining leaves the
    /// decision stream untouched.
    fn mine_tokens_from(&self, mined: &mut BTreeMap<Vec<u8>, u64>, exec: &FailureExecution) {
        if !self.cfg.mine_tokens || exec.failure.expected_tokens.is_empty() {
            return;
        }
        let n = exec.failure.expected_tokens.len() as u64;
        for tok in &exec.failure.expected_tokens {
            *mined.entry(tok.clone()).or_insert(0) += 1;
        }
        pdf_obs::record(|m| m.tokens_observed.add(n));
    }

    /// `runCheck` (Algorithm 1, lines 27–35): an input counts as a find
    /// only when it is accepted *and* covers branches no valid input
    /// covered before. On a find, `validInp` records it and derives new
    /// candidates from its comparisons.
    fn run_check(
        &mut self,
        report: &mut FuzzReport,
        queue: &mut CandidateQueue,
        steer: &mut BranchSet,
        input: &[u8],
        exec: &FailureExecution,
        parents: usize,
    ) -> bool {
        let _span = pdf_obs::span("driver.classify");
        let summary = &exec.failure;
        queue.note_path(summary.path_hash);
        let new_branches = summary.branches.difference_size(&report.valid_branches);
        if exec.valid && new_branches > 0 {
            pdf_obs::record(|m| {
                m.valid_inputs.inc();
                m.new_branches.add(new_branches as u64);
            });
            // validInp (lines 37–45)
            report.valid_inputs.push(input.to_vec());
            report.valid_found_at.push(report.execs);
            report.first_valid_execs.get_or_insert(report.execs);
            report.valid_branches.union_with(&summary.branches);
            steer.union_with(&summary.branches);
            // Queue rescoring (line 40) is implicit: scores are computed
            // against the live steering set at pop time.
            self.add_inputs(queue, input, summary, parents, steer);
            true
        } else {
            false
        }
    }

    /// `addInputs` (Algorithm 1, lines 19–25): one new candidate per
    /// substitution suggested by the comparisons at the rejection point.
    fn add_inputs(
        &mut self,
        queue: &mut CandidateQueue,
        input: &[u8],
        summary: &FailureSummary,
        parents: usize,
        steer: &BranchSet,
    ) {
        let _span = pdf_obs::span("driver.enqueue");
        if input.len() > self.cfg.max_input_len {
            return;
        }
        if self.cfg.extension_mode == ExtensionMode::AppendOnly {
            // ablation: never substitute, only grow
            let mut grown = input.to_vec();
            grown.push(self.next_byte());
            pdf_obs::record(|m| m.appends.inc());
            queue.push(
                QueueEntry {
                    input: grown,
                    parent_branches: summary.branches_up_to_rejection.clone(),
                    replacement_len: 1,
                    avg_stack: summary.avg_stack_size,
                    num_parents: parents + 1,
                    path_hash: summary.path_hash,
                },
                steer,
            );
            return;
        }
        let mut pushed: u64 = 0;
        for cand in &summary.candidates {
            // Replace from the rejection point on: everything after the
            // first invalid character is garbage by definition.
            let mut new_input = input[..cand.at_index.min(input.len())].to_vec();
            new_input.extend_from_slice(&cand.bytes);
            if new_input.len() > self.cfg.max_input_len {
                continue;
            }
            pushed += 1;
            queue.push(
                QueueEntry {
                    input: new_input,
                    parent_branches: summary.branches_up_to_rejection.clone(),
                    replacement_len: cand.replacement_len,
                    avg_stack: summary.avg_stack_size,
                    num_parents: parents + 1,
                    path_hash: summary.path_hash,
                },
                steer,
            );
        }
        if pushed > 0 {
            pdf_obs::record(|m| m.substitutions.add(pushed));
        }
        // Dictionary stage: where the paper substitutes one character at
        // a time, a mined dictionary lets the driver drop in a whole
        // candidate keyword at the rejection point. Anchored on the
        // comparisons at the rejection point — a token is only tried
        // when some comparison would have accepted its first byte
        // (`accepted_first` keeps the full span of range comparisons,
        // so `while` anchors at an identifier-start site even though
        // candidate expansion only probed `a`/`m`/`z`) — so the stage
        // refines the paper's search instead of spraying the queue.
        // Deterministic: token order is the configured dictionary
        // order, no RNG byte is drawn.
        if !self.cfg.dictionary.is_empty() {
            if let Some(idx) = summary.rejection_index {
                let mut dict_pushed: u64 = 0;
                for tok in &self.cfg.dictionary {
                    if tok.len() < 2 || tok.len() > self.cfg.max_input_len {
                        continue;
                    }
                    let anchored = tok.first().is_some_and(|&b| {
                        summary
                            .accepted_first
                            .iter()
                            .any(|&(lo, hi)| lo <= b && b <= hi)
                    });
                    let duplicate = summary.candidates.iter().any(|c| c.bytes == *tok);
                    if !anchored || duplicate {
                        continue;
                    }
                    let mut new_input = input[..idx.min(input.len())].to_vec();
                    new_input.extend_from_slice(tok);
                    if new_input.len() > self.cfg.max_input_len {
                        continue;
                    }
                    dict_pushed += 1;
                    // `replacement_len` feeds the heuristic's "longer
                    // replacement = deeper strncmp progress" bonus; a
                    // dictionary guess carries no such comparison
                    // evidence, so it competes as a single-character
                    // substitution and cannot starve the paper's
                    // search. If the token parses further, its children
                    // earn their rank the normal way.
                    queue.push(
                        QueueEntry {
                            input: new_input,
                            parent_branches: summary.branches_up_to_rejection.clone(),
                            replacement_len: 1,
                            avg_stack: summary.avg_stack_size,
                            num_parents: parents + 1,
                            path_hash: summary.path_hash,
                        },
                        steer,
                    );
                }
                if dict_pushed > 0 {
                    pdf_obs::record(|m| m.tokens_dict_subs.add(dict_pushed));
                }
            }
        }
    }

    fn trace(&self, report: &mut FuzzReport, input: &[u8], exec: &FailureExecution, action: &str) {
        if !self.cfg.trace {
            return;
        }
        report.trace.push(TraceStep {
            input: input.to_vec(),
            valid: exec.valid,
            eof: exec.failure.eof_access.is_some(),
            candidates: exec.failure.candidates.len(),
            action: action.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeuristicConfig;

    fn run_arith(seed: u64, execs: u64) -> FuzzReport {
        let cfg = DriverConfig {
            seed,
            max_execs: execs,
            ..DriverConfig::default()
        };
        Fuzzer::new(pdf_subjects::arith::subject(), cfg).run()
    }

    #[test]
    fn finds_valid_arith_inputs() {
        let report = run_arith(1, 3_000);
        assert!(!report.valid_inputs.is_empty(), "no valid inputs found");
        let subject = pdf_subjects::arith::subject();
        for input in &report.valid_inputs {
            assert!(
                subject.run(input).valid,
                "{:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = run_arith(7, 1_500);
        let b = run_arith(7, 1_500);
        assert_eq!(a.valid_inputs, b.valid_inputs);
        assert_eq!(a.execs, b.execs);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = run_arith(1, 1_500);
        let b = run_arith(2, 1_500);
        // Input *sets* typically differ; at minimum the traces must not
        // be byte-identical in discovery order.
        assert!(a.valid_inputs != b.valid_inputs || a.execs != b.execs);
    }

    #[test]
    fn respects_exec_budget() {
        let report = run_arith(3, 100);
        assert!(report.execs <= 100);
    }

    #[test]
    fn stops_at_max_valid_inputs() {
        let cfg = DriverConfig {
            seed: 5,
            max_execs: 50_000,
            max_valid_inputs: Some(3),
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert!(report.valid_inputs.len() <= 3);
    }

    #[test]
    fn closes_dyck_inputs() {
        let cfg = DriverConfig {
            seed: 11,
            max_execs: 5_000,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::dyck::subject(), cfg).run();
        assert!(
            !report.valid_inputs.is_empty(),
            "heuristic failed to close any bracket string"
        );
        let subject = pdf_subjects::dyck::subject();
        for input in &report.valid_inputs {
            assert!(subject.run(input).valid);
        }
    }

    #[test]
    fn trace_records_steps() {
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 50,
            trace: true,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert!(!report.trace.is_empty());
        assert!(report.trace.iter().any(|s| !s.input.is_empty()));
    }

    #[test]
    fn valid_branches_subset_of_all_branches() {
        let report = run_arith(13, 1_000);
        for b in report.valid_branches.iter() {
            assert!(report.all_branches.contains(b));
        }
    }

    #[test]
    fn first_valid_execs_recorded() {
        let report = run_arith(1, 3_000);
        let first = report.first_valid_execs.expect("found something");
        assert!(first <= report.execs);
    }

    #[test]
    fn disabled_heuristic_still_runs() {
        let cfg = DriverConfig {
            seed: 2,
            max_execs: 500,
            heuristic: HeuristicConfig::disabled(),
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 500);
    }

    #[test]
    fn found_at_is_parallel_and_monotone() {
        let report = run_arith(1, 2_000);
        assert_eq!(report.valid_inputs.len(), report.valid_found_at.len());
        assert!(report.valid_found_at.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn naive_searches_run_and_underperform_on_dyck() {
        // Section 3: depth-first opens brackets it cannot close;
        // breadth-first cannot build long prefixes. Both find no more
        // (and typically far fewer) valid inputs than the heuristic.
        use crate::config::SearchMode;
        let run = |search: SearchMode| {
            let cfg = DriverConfig {
                seed: 5,
                max_execs: 6_000,
                search,
                ..DriverConfig::default()
            };
            Fuzzer::new(pdf_subjects::dyck::subject(), cfg).run()
        };
        let heuristic = run(SearchMode::Heuristic);
        let dfs = run(SearchMode::DepthFirst);
        let bfs = run(SearchMode::BreadthFirst);
        assert!(!heuristic.valid_inputs.is_empty());
        assert!(heuristic.valid_inputs.len() >= dfs.valid_inputs.len());
        assert!(heuristic.valid_inputs.len() >= bfs.valid_inputs.len());
    }

    #[test]
    fn replace_only_mode_terminates() {
        // regression: the verdict cache must not starve replace-only
        // mode of budget-consuming runs (it would loop forever)
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 2_000,
            extension_mode: crate::config::ExtensionMode::ReplaceOnly,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 2_000);
    }

    #[test]
    fn append_only_mode_terminates() {
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 2_000,
            extension_mode: crate::config::ExtensionMode::AppendOnly,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert_eq!(report.execs, 2_000);
    }

    #[test]
    fn sink_modes_produce_identical_campaigns() {
        // the streaming LastFailure sink is defined by equivalence to the
        // full-log reductions; the whole campaign must not notice the
        // difference
        for subject in [
            pdf_subjects::arith::subject(),
            pdf_subjects::json::subject(),
        ] {
            let run = |sink: SinkMode| {
                let cfg = DriverConfig {
                    seed: 9,
                    max_execs: 2_000,
                    sink,
                    trace: true,
                    ..DriverConfig::default()
                };
                Fuzzer::new(subject, cfg).run()
            };
            let fast = run(SinkMode::LastFailure);
            let full = run(SinkMode::FullLog);
            assert_eq!(fast.valid_inputs, full.valid_inputs);
            assert_eq!(fast.valid_found_at, full.valid_found_at);
            assert_eq!(fast.execs, full.execs);
            assert_eq!(fast.valid_branches, full.valid_branches);
            assert_eq!(fast.all_branches, full.all_branches);
            assert_eq!(fast.stats.events, full.stats.events);
            assert_eq!(fast.trace.len(), full.trace.len());
            for (a, b) in fast.trace.iter().zip(&full.trace) {
                assert_eq!(a.input, b.input);
                assert_eq!(a.valid, b.valid);
                assert_eq!(a.eof, b.eof);
                assert_eq!(a.candidates, b.candidates);
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let report = run_arith(1, 1_000);
        assert_eq!(report.stats.executions, report.execs);
        assert_eq!(
            report.stats.valid_inputs as usize,
            report.valid_inputs.len()
        );
        assert!(report.stats.events > 0);
        assert!(report.stats.wall_secs > 0.0);
        assert!(report.stats.execs_per_sec() > 0.0);
        assert!(report
            .stats
            .phases
            .iter()
            .any(|(name, _)| *name == "execute"));
    }

    #[test]
    fn replay_reproduces_digest_and_outputs() {
        for (subject, seed) in [
            (pdf_subjects::arith::subject(), 7u64),
            (pdf_subjects::dyck::subject(), 11),
        ] {
            let cfg = DriverConfig {
                seed,
                max_execs: 2_000,
                ..DriverConfig::default()
            };
            let recorded = Fuzzer::new(subject, cfg.clone()).run();
            assert_eq!(
                recorded.stats.decisions,
                recorded.decisions.len() as u64,
                "stats mirror the decision stream"
            );
            let replayed = Fuzzer::replaying(subject, cfg, recorded.decisions.clone()).run();
            assert_eq!(recorded.valid_inputs, replayed.valid_inputs);
            assert_eq!(recorded.execs, replayed.execs);
            assert_eq!(recorded.decisions, replayed.decisions);
            assert_eq!(recorded.digest(), replayed.digest());
        }
    }

    #[test]
    fn digest_separates_different_campaigns() {
        let a = run_arith(1, 1_500);
        let b = run_arith(2, 1_500);
        assert_ne!(a.digest(), b.digest());
        // and is stable for identical campaigns
        assert_eq!(a.digest(), run_arith(1, 1_500).digest());
    }

    #[test]
    #[should_panic(expected = "replay decision stream exhausted")]
    fn replay_panics_on_short_stream() {
        let cfg = DriverConfig {
            seed: 3,
            max_execs: 500,
            ..DriverConfig::default()
        };
        let recorded = Fuzzer::new(pdf_subjects::arith::subject(), cfg.clone()).run();
        let mut truncated = recorded.decisions;
        truncated.truncate(truncated.len() / 2);
        Fuzzer::replaying(pdf_subjects::arith::subject(), cfg, truncated).run();
    }

    #[test]
    fn run_until_pauses_without_changing_the_campaign() {
        let cfg = DriverConfig {
            seed: 7,
            max_execs: 1_500,
            ..DriverConfig::default()
        };
        let uninterrupted = Fuzzer::new(pdf_subjects::arith::subject(), cfg.clone()).run();

        let mut paused = Fuzzer::new(pdf_subjects::arith::subject(), cfg);
        assert_eq!(
            paused.run_until(&CampaignBudget::execs(300)),
            StopReason::PausedExecs
        );
        assert_eq!(
            paused.run_until(&CampaignBudget::execs(900)),
            StopReason::PausedExecs
        );
        assert_eq!(
            paused.run_until(&CampaignBudget::unbounded()),
            StopReason::Finished
        );
        let stitched = paused.into_report();
        assert_eq!(stitched.valid_inputs, uninterrupted.valid_inputs);
        assert_eq!(stitched.decisions, uninterrupted.decisions);
        assert_eq!(stitched.digest(), uninterrupted.digest());
    }

    #[test]
    fn run_until_finished_is_idempotent() {
        let cfg = DriverConfig {
            seed: 2,
            max_execs: 200,
            ..DriverConfig::default()
        };
        let mut f = Fuzzer::new(pdf_subjects::arith::subject(), cfg);
        assert_eq!(
            f.run_until(&CampaignBudget::unbounded()),
            StopReason::Finished
        );
        assert_eq!(
            f.run_until(&CampaignBudget::unbounded()),
            StopReason::Finished
        );
        assert_eq!(f.into_report().execs, 200);
    }

    #[test]
    fn wall_deadline_pauses_eventually() {
        let cfg = DriverConfig {
            seed: 3,
            max_execs: u64::MAX / 2,
            ..DriverConfig::default()
        };
        let mut f = Fuzzer::new(pdf_subjects::arith::subject(), cfg);
        let stop = f.run_until(&CampaignBudget::wall(std::time::Duration::ZERO));
        assert_eq!(stop, StopReason::PausedDeadline);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_digest() {
        for pause_at in [0u64, 137, 800] {
            let cfg = DriverConfig {
                seed: 11,
                max_execs: 1_600,
                ..DriverConfig::default()
            };
            let uninterrupted = Fuzzer::new(pdf_subjects::dyck::subject(), cfg.clone()).run();

            let mut first = Fuzzer::new(pdf_subjects::dyck::subject(), cfg.clone());
            let stop = first.run_until(&CampaignBudget::execs(pause_at));
            assert_eq!(stop, StopReason::PausedExecs);
            let ck = first.checkpoint();
            drop(first); // the "killed" campaign

            // round-trip through text, as a file-based resume would
            let decoded = Checkpoint::decode(&ck.encode()).expect("decodes");
            assert_eq!(ck, decoded);
            let mut resumed =
                Fuzzer::resume_from_checkpoint(pdf_subjects::dyck::subject(), cfg, &decoded)
                    .expect("resumes");
            assert_eq!(
                resumed.run_until(&CampaignBudget::unbounded()),
                StopReason::Finished
            );
            let report = resumed.into_report();
            assert_eq!(
                report.digest(),
                uninterrupted.digest(),
                "pause at {pause_at} diverged"
            );
            assert_eq!(report.valid_inputs, uninterrupted.valid_inputs);
            assert_eq!(report.decisions, uninterrupted.decisions);
        }
    }

    #[test]
    fn resume_rejects_drifted_subject_config_and_seed() {
        let cfg = DriverConfig {
            seed: 5,
            max_execs: 400,
            ..DriverConfig::default()
        };
        let mut f = Fuzzer::new(pdf_subjects::arith::subject(), cfg.clone());
        let _ = f.run_until(&CampaignBudget::execs(100));
        let ck = f.checkpoint();

        let wrong_subject =
            Fuzzer::resume_from_checkpoint(pdf_subjects::dyck::subject(), cfg.clone(), &ck);
        assert!(matches!(wrong_subject, Err(CheckpointError::Drift(_))));

        let wrong_cfg = DriverConfig {
            max_input_len: 7,
            ..cfg.clone()
        };
        assert!(matches!(
            Fuzzer::resume_from_checkpoint(pdf_subjects::arith::subject(), wrong_cfg, &ck),
            Err(CheckpointError::Drift(_))
        ));

        let wrong_seed = DriverConfig { seed: 6, ..cfg };
        assert!(matches!(
            Fuzzer::resume_from_checkpoint(pdf_subjects::arith::subject(), wrong_seed, &ck),
            Err(CheckpointError::Drift(_))
        ));
    }

    #[test]
    #[should_panic(expected = "checkpointing a replaying campaign")]
    fn checkpointing_a_replay_run_panics() {
        let cfg = DriverConfig {
            seed: 3,
            max_execs: 200,
            ..DriverConfig::default()
        };
        let recorded = Fuzzer::new(pdf_subjects::arith::subject(), cfg.clone()).run();
        let f = Fuzzer::replaying(pdf_subjects::arith::subject(), cfg, recorded.decisions);
        let _ = f.checkpoint();
    }

    #[test]
    fn crashing_subject_is_survived_and_counted() {
        use pdf_runtime::{cov, lit, ExecCtx, ParseError};
        fn crashy(ctx: &mut ExecCtx) -> Result<(), ParseError> {
            cov!(ctx);
            if lit!(ctx, b'!') {
                panic!("deliberate subject crash");
            }
            if !lit!(ctx, b'a') {
                return Err(ctx.reject("expected 'a'"));
            }
            ctx.expect_end()
        }
        let subject = Subject::new("crashy", crashy);
        let cfg = DriverConfig {
            seed: 1,
            max_execs: 2_000,
            sink: SinkMode::FullLog,
            ..DriverConfig::default()
        };
        let a = Fuzzer::new(subject, cfg.clone()).run();
        assert!(
            a.stats.crashes > 0,
            "the '!' branch never fired in 2000 execs"
        );
        assert_eq!(a.stats.executions, 2_000, "crashes must not end the run");
        // crash accounting is deterministic and digest-relevant
        let b = Fuzzer::new(subject, cfg).run();
        assert_eq!(a.stats.crashes, b.stats.crashes);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn metrics_do_not_perturb_the_campaign() {
        // the pdf-obs determinism contract: a campaign with a registry
        // installed makes byte-identical decisions and the registry's
        // exec counters agree with the report
        let plain = run_arith(7, 1_500);
        let reg = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(std::sync::Arc::clone(&reg));
        let observed = run_arith(7, 1_500);
        assert_eq!(plain.digest(), observed.digest());
        assert_eq!(plain.decisions, observed.decisions);
        assert_eq!(reg.execs.get(), observed.execs);
        assert_eq!(reg.valid_inputs.get(), observed.valid_inputs.len() as u64);
        assert!(reg.snapshot().check_identities().is_ok());
        for name in [
            "driver.pick",
            "driver.exec",
            "driver.classify",
            "driver.enqueue",
        ] {
            assert!(
                reg.span_stat(name).is_some_and(|s| s.count > 0),
                "span {name} was never recorded"
            );
        }
    }

    #[test]
    fn fast_and_tiered_modes_are_deterministic() {
        for mode in [ExecMode::Fast, ExecMode::Tiered] {
            let run = || {
                let cfg = DriverConfig {
                    seed: 9,
                    max_execs: 2_000,
                    exec_mode: mode,
                    ..DriverConfig::default()
                };
                Fuzzer::new(pdf_subjects::arith::subject(), cfg).run()
            };
            let a = run();
            let b = run();
            assert_eq!(a.digest(), b.digest(), "{mode:?} not deterministic");
            assert_eq!(a.valid_inputs, b.valid_inputs);
        }
    }

    #[test]
    fn fast_and_tiered_valid_inputs_are_genuinely_valid() {
        for mode in [ExecMode::Fast, ExecMode::Tiered] {
            for subject in [
                pdf_subjects::arith::subject(),
                pdf_subjects::dyck::subject(),
            ] {
                let cfg = DriverConfig {
                    seed: 3,
                    max_execs: 4_000,
                    exec_mode: mode,
                    ..DriverConfig::default()
                };
                let report = Fuzzer::new(subject, cfg).run();
                assert!(
                    !report.valid_inputs.is_empty(),
                    "{mode:?} on {} found nothing",
                    subject.name()
                );
                for input in &report.valid_inputs {
                    assert!(
                        subject.run(input).valid,
                        "{mode:?} reported invalid input {:?}",
                        String::from_utf8_lossy(input)
                    );
                }
                // every valid input went through a full run, so its
                // coverage is real
                for b in report.valid_branches.iter() {
                    assert!(report.all_branches.contains(b));
                }
            }
        }
    }

    #[test]
    fn tiered_replay_reproduces_digest() {
        let cfg = DriverConfig {
            seed: 5,
            max_execs: 1_500,
            exec_mode: ExecMode::Tiered,
            ..DriverConfig::default()
        };
        let recorded = Fuzzer::new(pdf_subjects::dyck::subject(), cfg.clone()).run();
        let replayed = Fuzzer::replaying(
            pdf_subjects::dyck::subject(),
            cfg,
            recorded.decisions.clone(),
        )
        .run();
        assert_eq!(recorded.digest(), replayed.digest());
    }

    #[test]
    fn tiered_checkpoint_resume_matches_uninterrupted_digest() {
        // the tier filter state (watermark + fingerprints) must survive
        // the checkpoint round-trip, or the resumed campaign escalates
        // differently and diverges
        let cfg = DriverConfig {
            seed: 11,
            max_execs: 1_600,
            exec_mode: ExecMode::Tiered,
            ..DriverConfig::default()
        };
        let uninterrupted = Fuzzer::new(pdf_subjects::dyck::subject(), cfg.clone()).run();

        let mut first = Fuzzer::new(pdf_subjects::dyck::subject(), cfg.clone());
        assert_eq!(
            first.run_until(&CampaignBudget::execs(400)),
            StopReason::PausedExecs
        );
        let ck = first.checkpoint();
        drop(first);
        let decoded = Checkpoint::decode(&ck.encode()).expect("decodes");
        assert_eq!(ck, decoded);
        let mut resumed =
            Fuzzer::resume_from_checkpoint(pdf_subjects::dyck::subject(), cfg, &decoded)
                .expect("resumes");
        assert_eq!(
            resumed.run_until(&CampaignBudget::unbounded()),
            StopReason::Finished
        );
        assert_eq!(resumed.into_report().digest(), uninterrupted.digest());
    }

    #[test]
    fn tiered_mode_records_escalation_counters() {
        let reg = std::sync::Arc::new(pdf_obs::MetricsRegistry::new());
        let _scope = pdf_obs::install(std::sync::Arc::clone(&reg));
        let cfg = DriverConfig {
            seed: 2,
            max_execs: 1_000,
            exec_mode: ExecMode::Tiered,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::arith::subject(), cfg).run();
        assert!(reg.tier_fast_execs.get() > 0, "no fast-tier executions");
        assert!(reg.tier_escalations.get() > 0, "nothing ever escalated");
        assert!(reg.tier_skips.get() > 0, "the filter never skipped");
        // every execution is either a fast run or an escalated full run
        assert_eq!(
            reg.tier_fast_execs.get() + reg.tier_escalations.get(),
            report.execs
        );
        assert!(reg.snapshot().check_identities().is_ok());
    }

    #[test]
    fn json_keywords_reachable() {
        // the headline capability: synthesizing keywords from strcmp
        // feedback — within a modest budget pFuzzer produces an input
        // containing "true", "false" or "null"
        let cfg = DriverConfig {
            seed: 4,
            max_execs: 20_000,
            ..DriverConfig::default()
        };
        let report = Fuzzer::new(pdf_subjects::json::subject(), cfg).run();
        let has_keyword = report.valid_inputs.iter().any(|i| {
            let s = String::from_utf8_lossy(i);
            s.contains("true") || s.contains("false") || s.contains("null")
        });
        assert!(
            has_keyword,
            "no JSON keyword in {:?}",
            report
                .valid_inputs
                .iter()
                .map(|i| String::from_utf8_lossy(i).into_owned())
                .collect::<Vec<_>>()
        );
    }
}

//! Jittered exponential backoff, the client-side half of the fault
//! model.
//!
//! A [`Backoff`] hands out the delay before each retry attempt:
//! exponential doubling from a base, capped, with *full jitter* over
//! the top half of the window (so synchronized clients spread out, but
//! no delay collapses to zero). The jitter draw is a pure function of
//! `(seed, attempt)` — a retry schedule, like a fault schedule, must be
//! reproducible from its seed.

use std::time::Duration;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic jittered-exponential retry schedule.
///
/// ```
/// use std::time::Duration;
/// use pdf_chaos::Backoff;
///
/// let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
/// let first = b.next_delay();
/// assert!(first >= Duration::from_millis(5) && first <= Duration::from_millis(10));
/// // Same seed, same schedule.
/// let mut b2 = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
/// assert_eq!(first, b2.next_delay());
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, never
    /// exceeding `cap`, jittered by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            seed,
            attempt: 0,
        }
    }

    /// How many delays have been handed out.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the schedule to attempt zero (after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The delay for attempt `n` as a pure function.
    pub fn delay_for(&self, n: u32) -> Duration {
        let base_us = self.base.as_micros() as u64;
        let cap_us = self.cap.as_micros() as u64;
        let window = base_us
            .saturating_mul(1u64.checked_shl(n.min(32)).unwrap_or(u64::MAX))
            .min(cap_us)
            .max(1);
        // Full jitter over the top half: [window/2, window].
        let half = window / 2;
        let jitter = splitmix64(self.seed ^ u64::from(n).wrapping_mul(0x9e37_79b9)) % (half + 1);
        Duration::from_micros(half + jitter)
    }

    /// Hands out the next delay and advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let d = self.delay_for(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Sleeps for the next delay (convenience for retry loops).
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let b = Backoff::new(Duration::from_millis(4), Duration::from_millis(100), 1);
        let mut last_window_top = Duration::ZERO;
        for n in 0..12 {
            let d = b.delay_for(n);
            assert!(d <= Duration::from_millis(100), "attempt {n}: {d:?}");
            // The top of the window never shrinks.
            assert!(d >= last_window_top / 4, "attempt {n}: {d:?}");
            last_window_top = last_window_top.max(d);
        }
        // After enough doublings the cap dominates: delay >= cap/2.
        assert!(b.delay_for(20) >= Duration::from_millis(50));
    }

    #[test]
    fn same_seed_same_schedule_distinct_seeds_differ() {
        let a = Backoff::new(Duration::from_millis(3), Duration::from_secs(1), 11);
        let b = Backoff::new(Duration::from_millis(3), Duration::from_secs(1), 11);
        let c = Backoff::new(Duration::from_millis(3), Duration::from_secs(1), 12);
        let sa: Vec<_> = (0..16).map(|n| a.delay_for(n)).collect();
        let sb: Vec<_> = (0..16).map(|n| b.delay_for(n)).collect();
        let sc: Vec<_> = (0..16).map(|n| c.delay_for(n)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(Duration::from_millis(2), Duration::from_millis(64), 5);
        let first = b.next_delay();
        b.next_delay();
        b.next_delay();
        assert_eq!(b.attempts(), 3);
        b.reset();
        assert_eq!(b.next_delay(), first);
    }
}

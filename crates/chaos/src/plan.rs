//! The seeded fault schedule.
//!
//! A [`FaultPlan`] answers one question — "does the Nth operation of
//! this kind fault, and how?" — as a pure function of the plan seed,
//! the [`OpKind`] and the occurrence index N. The only mutable state is
//! one per-kind occurrence counter, so concurrent callers each draw a
//! distinct index and the *set* of decisions taken over a run is a
//! deterministic function of how many operations of each kind ran.
//!
//! Rates are configured per mille in a [`FaultSpec`]; each operation
//! rolls one number in `0..1000` and walks the fault kinds applicable
//! to its operation class in a fixed order, so at most one fault fires
//! per operation and raising one rate never perturbs which *other*
//! faults fire.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of I/O operation is asking for a fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// One serve-journal line append.
    JournalWrite,
    /// One campaign meta-file write.
    MetaWrite,
    /// One checkpoint file write.
    CheckpointWrite,
    /// One socket read.
    WireRead,
    /// One socket write.
    WireWrite,
}

impl OpKind {
    /// Every operation kind, in schedule order.
    pub const ALL: [OpKind; 5] = [
        OpKind::JournalWrite,
        OpKind::MetaWrite,
        OpKind::CheckpointWrite,
        OpKind::WireRead,
        OpKind::WireWrite,
    ];

    fn index(self) -> usize {
        match self {
            OpKind::JournalWrite => 0,
            OpKind::MetaWrite => 1,
            OpKind::CheckpointWrite => 2,
            OpKind::WireRead => 3,
            OpKind::WireWrite => 4,
        }
    }

    /// Whether this operation moves bytes toward durable storage (the
    /// alternative being the wire).
    pub fn is_storage(self) -> bool {
        matches!(
            self,
            OpKind::JournalWrite | OpKind::MetaWrite | OpKind::CheckpointWrite
        )
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::JournalWrite => "journal-write",
            OpKind::MetaWrite => "meta-write",
            OpKind::CheckpointWrite => "checkpoint-write",
            OpKind::WireRead => "wire-read",
            OpKind::WireWrite => "wire-write",
        };
        f.write_str(name)
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A write persists only a prefix of the buffer, then errors —
    /// the classic torn line / torn page.
    TornWrite,
    /// The write fails outright with `ENOSPC` semantics; nothing is
    /// persisted.
    Enospc,
    /// The operation succeeds after an injected stall.
    Delay,
    /// A read returns fewer bytes than asked for (the caller must
    /// loop; naive code sees truncated frames).
    ShortRead,
    /// The connection dies mid-stream (`ConnectionReset`).
    Disconnect,
}

impl FaultKind {
    /// Every fault kind, in schedule order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TornWrite,
        FaultKind::Enospc,
        FaultKind::Delay,
        FaultKind::ShortRead,
        FaultKind::Disconnect,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::TornWrite => "torn-write",
            FaultKind::Enospc => "enospc",
            FaultKind::Delay => "delay",
            FaultKind::ShortRead => "short-read",
            FaultKind::Disconnect => "disconnect",
        };
        f.write_str(name)
    }
}

/// A scheduled fault: what fires, plus a deterministic magnitude the
/// injector interprets per kind (bytes to keep for a torn write, bytes
/// to deliver for a short read, microseconds for a delay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Which fault fires.
    pub kind: FaultKind,
    /// Kind-specific magnitude draw (see type docs).
    pub magnitude: u64,
}

/// Per-mille fault rates. Every rate is independent per operation
/// class; an all-zero spec is a no-op plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Torn-write rate for storage and wire writes.
    pub torn_write_per_mille: u32,
    /// `ENOSPC` rate for storage writes.
    pub enospc_per_mille: u32,
    /// Stall rate for every operation.
    pub delay_per_mille: u32,
    /// Short-read rate for wire reads.
    pub short_read_per_mille: u32,
    /// Mid-stream disconnect rate for wire reads and writes.
    pub disconnect_per_mille: u32,
    /// Upper bound on an injected stall, in microseconds.
    pub max_delay_us: u64,
}

impl FaultSpec {
    /// A spec that never fires — the explicit "chaos off" value.
    pub const QUIET: FaultSpec = FaultSpec {
        torn_write_per_mille: 0,
        enospc_per_mille: 0,
        delay_per_mille: 0,
        short_read_per_mille: 0,
        disconnect_per_mille: 0,
        max_delay_us: 0,
    };

    /// The default soak mix: every fault kind fires a few percent of
    /// the time, stalls stay under a millisecond.
    pub const SOAK: FaultSpec = FaultSpec {
        torn_write_per_mille: 30,
        enospc_per_mille: 20,
        delay_per_mille: 40,
        short_read_per_mille: 60,
        disconnect_per_mille: 25,
        max_delay_us: 800,
    };

    /// The fault kinds applicable to `op`, each with its rate, in the
    /// fixed schedule order.
    fn applicable(&self, op: OpKind) -> [(FaultKind, u32); 3] {
        match op {
            OpKind::JournalWrite | OpKind::MetaWrite | OpKind::CheckpointWrite => [
                (FaultKind::TornWrite, self.torn_write_per_mille),
                (FaultKind::Enospc, self.enospc_per_mille),
                (FaultKind::Delay, self.delay_per_mille),
            ],
            OpKind::WireRead => [
                (FaultKind::ShortRead, self.short_read_per_mille),
                (FaultKind::Disconnect, self.disconnect_per_mille),
                (FaultKind::Delay, self.delay_per_mille),
            ],
            OpKind::WireWrite => [
                (FaultKind::TornWrite, self.torn_write_per_mille),
                (FaultKind::Disconnect, self.disconnect_per_mille),
                (FaultKind::Delay, self.delay_per_mille),
            ],
        }
    }
}

/// SplitMix64 — the workspace's standard seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded fault schedule plus per-kind occurrence counters.
///
/// ```
/// use pdf_chaos::{FaultPlan, FaultSpec, OpKind};
///
/// let plan = FaultPlan::new(42, FaultSpec::SOAK);
/// // The schedule is a pure function: same (seed, op, index) in any
/// // plan with the same spec gives the same decision.
/// let other = FaultPlan::new(42, FaultSpec::SOAK);
/// for n in 0..1000 {
///     assert_eq!(
///         plan.schedule_for(OpKind::WireRead, n),
///         other.schedule_for(OpKind::WireRead, n),
///     );
/// }
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    counters: [AtomicU64; 5],
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan over `spec` with schedule seed `seed`.
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            seed,
            spec,
            counters: Default::default(),
            injected: AtomicU64::new(0),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rate spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The schedule as a pure function: the decision for the `n`th
    /// occurrence of `op`, without consuming an occurrence.
    pub fn schedule_for(&self, op: OpKind, n: u64) -> Option<Fault> {
        // Two independent draws: one picks the fault, one its magnitude.
        let draw = splitmix64(
            self.seed
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add((op.index() as u64) << 56)
                .wrapping_add(n),
        );
        let magnitude = splitmix64(draw);
        let roll = (draw % 1000) as u32;
        let mut cumulative = 0u32;
        for (kind, rate) in self.spec.applicable(op) {
            cumulative = cumulative.saturating_add(rate);
            if roll < cumulative {
                return Some(Fault { kind, magnitude });
            }
        }
        None
    }

    /// Consumes the next occurrence of `op` and returns its scheduled
    /// fault, if any. Bumps the injected-fault counter when one fires.
    pub fn decide(&self, op: OpKind) -> Option<Fault> {
        let n = self.counters[op.index()].fetch_add(1, Ordering::Relaxed);
        let fault = self.schedule_for(op, n);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// How many occurrences of `op` have been consumed so far.
    pub fn occurrences(&self, op: OpKind) -> u64 {
        self.counters[op.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired by [`decide`](Self::decide) so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The injected stall for `fault`, clamped to the spec's bound.
    pub fn delay_of(&self, fault: Fault) -> std::time::Duration {
        let us = if self.spec.max_delay_us == 0 {
            0
        } else {
            fault.magnitude % (self.spec.max_delay_us + 1)
        };
        std::time::Duration::from_micros(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_pure_and_counterless() {
        let plan = FaultPlan::new(7, FaultSpec::SOAK);
        let a: Vec<_> = (0..256)
            .map(|n| plan.schedule_for(OpKind::JournalWrite, n))
            .collect();
        // Consuming occurrences of *other* kinds must not move the
        // journal schedule.
        for _ in 0..100 {
            plan.decide(OpKind::WireRead);
        }
        let b: Vec<_> = (0..256)
            .map(|n| plan.schedule_for(OpKind::JournalWrite, n))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn decide_walks_the_schedule_in_order() {
        let plan = FaultPlan::new(99, FaultSpec::SOAK);
        let expect: Vec<_> = (0..64)
            .map(|n| plan.schedule_for(OpKind::WireWrite, n))
            .collect();
        let got: Vec<_> = (0..64).map(|_| plan.decide(OpKind::WireWrite)).collect();
        assert_eq!(got, expect);
        assert_eq!(plan.occurrences(OpKind::WireWrite), 64);
    }

    #[test]
    fn quiet_spec_never_fires() {
        let plan = FaultPlan::new(1234, FaultSpec::QUIET);
        for op in OpKind::ALL {
            for n in 0..500 {
                assert_eq!(plan.schedule_for(op, n), None);
            }
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn applicable_kinds_respect_op_class() {
        let plan = FaultPlan::new(5, FaultSpec::SOAK);
        for n in 0..4000 {
            if let Some(f) = plan.schedule_for(OpKind::JournalWrite, n) {
                assert!(
                    matches!(
                        f.kind,
                        FaultKind::TornWrite | FaultKind::Enospc | FaultKind::Delay
                    ),
                    "storage write drew {:?}",
                    f.kind
                );
            }
            if let Some(f) = plan.schedule_for(OpKind::WireRead, n) {
                assert!(
                    matches!(
                        f.kind,
                        FaultKind::ShortRead | FaultKind::Disconnect | FaultKind::Delay
                    ),
                    "wire read drew {:?}",
                    f.kind
                );
            }
        }
    }

    #[test]
    fn delay_respects_bound() {
        let plan = FaultPlan::new(3, FaultSpec::SOAK);
        for n in 0..2000 {
            for op in OpKind::ALL {
                if let Some(f) = plan.schedule_for(op, n) {
                    assert!(plan.delay_of(f).as_micros() as u64 <= FaultSpec::SOAK.max_delay_us);
                }
            }
        }
    }
}

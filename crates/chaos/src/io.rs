//! `Read`/`Write` wrappers that turn a [`FaultPlan`] schedule into real
//! `io::Error`s.
//!
//! The wrappers sit exactly where the real failure would: a torn write
//! delivers a *prefix* of the buffer to the inner writer and then
//! errors (the bytes that made it are gone from the caller's control,
//! just like a real torn page); a short read delivers fewer bytes than
//! asked; a disconnect surfaces as `ConnectionReset`. Injected errors
//! all carry the `"injected:"` message prefix so post-mortems can tell
//! scheduled chaos from the genuine article — the code under test must
//! not (and cannot usefully) check for it.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::plan::{Fault, FaultKind, FaultPlan, OpKind};

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected: {what}"))
}

/// Whether `e` was manufactured by this crate's injectors (test-suite
/// introspection only; production recovery paths must treat injected
/// and real errors identically).
pub fn is_injected(e: &io::Error) -> bool {
    e.to_string().contains("injected: ")
}

/// A writer that consults a fault plan on every `write`.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    plan: Option<Arc<FaultPlan>>,
    op: OpKind,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`; with `plan == None` the wrapper is a pass-through.
    pub fn new(inner: W, plan: Option<Arc<FaultPlan>>, op: OpKind) -> ChaosWriter<W> {
        ChaosWriter { inner, plan, op }
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Unwraps to the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(fault) = self.plan.as_ref().and_then(|p| p.decide(self.op)) else {
            return self.inner.write(buf);
        };
        let plan = self.plan.as_ref().expect("fault without plan");
        match fault.kind {
            FaultKind::Delay => {
                std::thread::sleep(plan.delay_of(fault));
                self.inner.write(buf)
            }
            FaultKind::Enospc => Err(injected(io::ErrorKind::Other, "no space left on device")),
            FaultKind::TornWrite => {
                let keep = if buf.is_empty() {
                    0
                } else {
                    (fault.magnitude as usize) % buf.len()
                };
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.flush();
                Err(injected(io::ErrorKind::BrokenPipe, "torn write"))
            }
            FaultKind::Disconnect => Err(injected(
                io::ErrorKind::ConnectionReset,
                "disconnect mid-write",
            )),
            // Short reads never schedule on writes; treat defensively.
            FaultKind::ShortRead => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that consults a fault plan on every `read`.
#[derive(Debug)]
pub struct ChaosReader<R> {
    inner: R,
    plan: Option<Arc<FaultPlan>>,
    op: OpKind,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner`; with `plan == None` the wrapper is a pass-through.
    pub fn new(inner: R, plan: Option<Arc<FaultPlan>>, op: OpKind) -> ChaosReader<R> {
        ChaosReader { inner, plan, op }
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(fault) = self.plan.as_ref().and_then(|p| p.decide(self.op)) else {
            return self.inner.read(buf);
        };
        let plan = self.plan.as_ref().expect("fault without plan");
        match fault.kind {
            FaultKind::Delay => {
                std::thread::sleep(plan.delay_of(fault));
                self.inner.read(buf)
            }
            FaultKind::ShortRead => {
                // Deliver at least one byte so a short read is a slow
                // frame, not a spurious EOF.
                let keep = if buf.len() <= 1 {
                    buf.len()
                } else {
                    1 + (fault.magnitude as usize) % (buf.len() - 1)
                };
                self.inner.read(&mut buf[..keep])
            }
            FaultKind::Disconnect => Err(injected(
                io::ErrorKind::ConnectionReset,
                "disconnect mid-read",
            )),
            // Write-class faults never schedule on reads.
            FaultKind::TornWrite | FaultKind::Enospc => self.inner.read(buf),
        }
    }
}

/// Fault-injectable whole-file write: the storage analog of
/// `std::fs::write`, consulting `plan` once per call.
///
/// A torn write persists a prefix of `bytes` at `path` and errors; an
/// `ENOSPC` persists nothing. Callers that need atomic visibility must
/// still do their own tmp-plus-rename *around* this call — the fault
/// then tears the tmp file, which is exactly the crash-consistency
/// scenario the recovery paths must survive.
///
/// # Errors
///
/// Injected faults and real I/O errors, indistinguishably.
pub fn chaos_write_file(
    plan: Option<&Arc<FaultPlan>>,
    op: OpKind,
    path: &Path,
    bytes: &[u8],
) -> io::Result<()> {
    match plan.and_then(|p| p.decide(op)) {
        None => std::fs::write(path, bytes),
        Some(Fault { kind, magnitude }) => match kind {
            FaultKind::Delay => {
                let plan = plan.expect("fault without plan");
                std::thread::sleep(plan.delay_of(Fault { kind, magnitude }));
                std::fs::write(path, bytes)
            }
            FaultKind::Enospc => Err(injected(io::ErrorKind::Other, "no space left on device")),
            FaultKind::TornWrite => {
                let keep = if bytes.is_empty() {
                    0
                } else {
                    (magnitude as usize) % bytes.len()
                };
                std::fs::write(path, &bytes[..keep])?;
                Err(injected(io::ErrorKind::BrokenPipe, "torn file write"))
            }
            FaultKind::ShortRead | FaultKind::Disconnect => std::fs::write(path, bytes),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    /// A plan whose storage writes always tear.
    fn always_torn() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(
            1,
            FaultSpec {
                torn_write_per_mille: 1000,
                ..FaultSpec::QUIET
            },
        ))
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let mut sink: Vec<u8> = Vec::new();
        let plan = always_torn();
        {
            let mut w = ChaosWriter::new(&mut sink, Some(Arc::clone(&plan)), OpKind::JournalWrite);
            let err = w.write_all(b"hello world").unwrap_err();
            assert!(is_injected(&err), "unexpected error {err}");
        }
        assert!(sink.len() < b"hello world".len());
        assert_eq!(&sink[..], &b"hello world"[..sink.len()]);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut sink: Vec<u8> = Vec::new();
        {
            let mut w = ChaosWriter::new(&mut sink, None, OpKind::MetaWrite);
            w.write_all(b"payload").unwrap();
        }
        assert_eq!(sink, b"payload");

        let mut out = [0u8; 7];
        let mut r = ChaosReader::new(&b"payload"[..], None, OpKind::WireRead);
        r.read_exact(&mut out).unwrap();
        assert_eq!(&out, b"payload");
    }

    #[test]
    fn short_reads_still_deliver_everything_eventually() {
        let plan = Arc::new(FaultPlan::new(
            9,
            FaultSpec {
                short_read_per_mille: 1000,
                ..FaultSpec::QUIET
            },
        ));
        let data = b"a longer payload that takes several short reads";
        let mut r = ChaosReader::new(&data[..], Some(plan), OpKind::WireRead);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn chaos_write_file_torn_leaves_prefix_on_disk() {
        let dir = std::env::temp_dir().join(format!("pdf-chaos-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim");
        let plan = always_torn();
        let err = chaos_write_file(
            Some(&plan),
            OpKind::CheckpointWrite,
            &path,
            b"full contents",
        )
        .unwrap_err();
        assert!(is_injected(&err));
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < b"full contents".len());
        assert_eq!(&on_disk[..], &b"full contents"[..on_disk.len()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! `pdf-chaos` — seeded, deterministic fault injection for storage and
//! wire I/O.
//!
//! The workspace already injects faults *above* the I/O layer: PR 3's
//! `ChaosSubject` makes the parser under test panic, hang and flake on
//! a reproducible schedule. This crate extends the same idea *below*
//! the service layer: a [`FaultPlan`] decides — as a pure function of
//! `(seed, operation kind, occurrence index)` — whether the Nth journal
//! append tears mid-line, the Nth checkpoint write hits `ENOSPC`, or
//! the Nth socket read dies mid-stream. Because the schedule is
//! deterministic, a chaos soak that fails is *re-runnable*: the same
//! seed reproduces the same torn bytes in the same order.
//!
//! The layers:
//!
//! - [`plan`] — [`FaultPlan`] / [`FaultKind`] / [`FaultSpec`]: the
//!   seeded schedule. Same seed ⇒ byte-identical schedule (proven by
//!   proptest); disjoint seeds exercise every fault kind.
//! - [`io`] — [`ChaosWriter`] / [`ChaosReader`]: `Write`/`Read`
//!   wrappers that consult a plan on every call and inject torn
//!   writes, short reads, delays, `ENOSPC` and disconnects as real
//!   `io::Error`s — indistinguishable from the genuine article to the
//!   code under test.
//! - [`backoff`] — [`Backoff`]: the client-side answer; seeded,
//!   jittered exponential delays for retry loops, deterministic for a
//!   given `(seed, attempt)` so retry schedules are reproducible too.
//!
//! Nothing in this crate is wired in by default: a daemon or client
//! without a plan installed pays one `Option` check per operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod io;
pub mod plan;

pub use backoff::Backoff;
pub use io::{chaos_write_file, is_injected, ChaosReader, ChaosWriter};
pub use plan::{Fault, FaultKind, FaultPlan, FaultSpec, OpKind};

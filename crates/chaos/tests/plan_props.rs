//! Property tests for the fault schedule: determinism (same seed ⇒
//! byte-identical schedule), independence (consuming one op kind never
//! moves another kind's schedule), and coverage (across disjoint
//! seeds, every fault kind fires on every op class it applies to).

use std::collections::BTreeSet;

use pdf_chaos::{FaultKind, FaultPlan, FaultSpec, OpKind};
use proptest::prelude::*;

/// The full schedule prefix for every op kind, rendered to bytes so
/// "byte-identical" is literal.
fn schedule_bytes(plan: &FaultPlan, len: u64) -> String {
    let mut out = String::new();
    for op in OpKind::ALL {
        for n in 0..len {
            match plan.schedule_for(op, n) {
                None => out.push_str(&format!("{op} {n} -\n")),
                Some(f) => out.push_str(&format!("{op} {n} {} {}\n", f.kind, f.magnitude)),
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn same_seed_gives_byte_identical_schedules(seed in any::<u64>()) {
        let a = FaultPlan::new(seed, FaultSpec::SOAK);
        let b = FaultPlan::new(seed, FaultSpec::SOAK);
        // Consume occurrences on one plan only: live counters must not
        // leak into the schedule function.
        for _ in 0..64 {
            a.decide(OpKind::JournalWrite);
            a.decide(OpKind::WireRead);
        }
        prop_assert_eq!(schedule_bytes(&a, 128), schedule_bytes(&b, 128));
    }

    #[test]
    fn decide_replays_schedule_under_any_interleaving(seed in any::<u64>(), picks in proptest::collection::vec(0usize..5, 0..200)) {
        let plan = FaultPlan::new(seed, FaultSpec::SOAK);
        for pick in picks {
            let op = OpKind::ALL[pick];
            let n = plan.occurrences(op);
            let expect = plan.schedule_for(op, n);
            prop_assert_eq!(plan.decide(op), expect);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules(seed in any::<u64>()) {
        let a = FaultPlan::new(seed, FaultSpec::SOAK);
        let b = FaultPlan::new(seed.wrapping_add(1), FaultSpec::SOAK);
        prop_assert_ne!(schedule_bytes(&a, 256), schedule_bytes(&b, 256));
    }
}

#[test]
fn disjoint_seeds_exercise_all_fault_kinds() {
    // Across a handful of seeds, every fault kind must fire on every
    // op class that admits it — the soak mix leaves nothing untested.
    let mut seen: BTreeSet<(OpKind, FaultKind)> = BTreeSet::new();
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed, FaultSpec::SOAK);
        for op in OpKind::ALL {
            for n in 0..2_000 {
                if let Some(f) = plan.schedule_for(op, n) {
                    seen.insert((op, f.kind));
                }
            }
        }
    }
    for op in OpKind::ALL {
        let expect: &[FaultKind] = if op.is_storage() {
            &[FaultKind::TornWrite, FaultKind::Enospc, FaultKind::Delay]
        } else if op == OpKind::WireRead {
            &[
                FaultKind::ShortRead,
                FaultKind::Disconnect,
                FaultKind::Delay,
            ]
        } else {
            &[
                FaultKind::TornWrite,
                FaultKind::Disconnect,
                FaultKind::Delay,
            ]
        };
        for kind in expect {
            assert!(
                seen.contains(&(op, *kind)),
                "{kind} never fired on {op} across seeds"
            );
        }
    }
}

//! Regenerates Figure 2: branch coverage per subject and tool.
//! Usage: fig2 [--execs N] [--seeds a,b,c]

fn main() {
    let budget = pdf_eval::budget_from_args(30_000);
    eprintln!(
        "running 5 subjects x 3 tools, {} execs x {} seeds ...",
        budget.execs,
        budget.seeds.len()
    );
    let outcomes = pdf_eval::run_matrix(&budget);
    print!(
        "{}",
        pdf_eval::render_fig2(&pdf_eval::fig2_coverage(&outcomes))
    );
}

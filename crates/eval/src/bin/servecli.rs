//! Thin `pdf-wire v1` command-line client for a running `pdfserved`.
//! Usage: `servecli [--addr HOST:PORT] COMMAND [ARGS]`
//!
//! Commands:
//!   submit --subject NAME [--seed N] [--execs N] [--shards N]
//!          [--sync-every N] [--exec-mode full|fast|tiered]
//!          [--deadline-ms N] [--key TOKEN] [--wait]
//!                       submit one campaign; prints its id (with
//!                       `--wait`, blocks streaming progress until the
//!                       campaign is terminal and prints the final row;
//!                       `--key` sets an idempotency key so a retried
//!                       submit returns the original id)
//!   status ID           one campaign's status row
//!   pause ID            request a pause at the next slice boundary
//!   resume ID           resume a paused campaign
//!   cancel ID           cancel a queued, running or paused campaign
//!   list                every campaign the daemon knows, one row each
//!   watch ID            stream progress rows until the campaign ends
//!   metrics             dump the daemon's `pdf-metrics v1` snapshot
//!   ping                liveness probe
//!   shutdown            checkpoint everything and stop the daemon
//!
//! `--addr` defaults to `127.0.0.1:7700`, `pdfserved`'s default listen
//! address. Exit status: 0 on success, 1 when the server refuses the
//! request (unknown id, illegal transition, ...), 2 on a usage error or
//! transport failure. The streaming commands (`watch`, `submit
//! --wait`) ride a [`RetryClient`], so a daemon restart or dropped
//! connection mid-stream reconnects with backoff instead of dying.

use pdf_serve::{CampaignSpec, CampaignStatus, ClientError, RetryClient, ServeClient};

fn usage() -> ! {
    eprintln!(
        "usage: servecli [--addr HOST:PORT] \
         submit|status|pause|resume|cancel|list|watch|metrics|ping|shutdown [ARGS]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = addr_in(&args);
    let mut rest: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let Some(command) = rest.first().cloned() else {
        usage()
    };
    let mut client = match ServeClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot reach {addr}: {e} (connection refused? check that pdfserved is running there)");
            std::process::exit(2);
        }
    };
    let outcome = match command.as_str() {
        "submit" => submit(&mut client, &addr, &args),
        "status" => id_command(&rest).and_then(|id| client.status(id).map(|s| print_status(&s))),
        "pause" => id_command(&rest).and_then(|id| client.pause(id).map(|s| print_state(id, &s))),
        "resume" => id_command(&rest).and_then(|id| client.resume(id).map(|s| print_state(id, &s))),
        "cancel" => id_command(&rest).and_then(|id| client.cancel(id).map(|s| print_state(id, &s))),
        "list" => client.list().map(|all| {
            for s in &all {
                print_status(s);
            }
            eprintln!("{} campaigns", all.len());
        }),
        "watch" => id_command(&rest).and_then(|id| {
            // Streaming survives daemon restarts: the RetryClient
            // re-dials and re-issues the watch with jittered backoff.
            RetryClient::new(&addr).watch(id, print_status).map(|last| {
                print_status(&last);
            })
        }),
        "metrics" => client.metrics().map(|text| print!("{text}")),
        "ping" => client.ping().map(|()| println!("pong")),
        "shutdown" => client.shutdown().map(|()| println!("stopping")),
        _ => usage(),
    };
    match outcome {
        Ok(()) => {}
        Err(ClientError::Server { code, msg, .. }) => {
            eprintln!("error [{code}]: {msg}");
            std::process::exit(1);
        }
        Err(ClientError::Timeout) => {
            eprintln!("error: timed out waiting on {addr}: the daemon answered but the campaign never went terminal");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: lost {addr}: {e} (retries exhausted)");
            std::process::exit(2);
        }
    }
}

fn addr_in(args: &[String]) -> String {
    for i in 1..args.len() {
        if args[i] == "--addr" {
            if let Some(a) = args.get(i + 1) {
                return a.clone();
            }
            eprintln!("error: --addr requires a value");
            std::process::exit(2);
        }
    }
    "127.0.0.1:7700".to_string()
}

fn id_command(rest: &[String]) -> Result<u64, ClientError> {
    match rest.get(1).map(|s| s.parse::<u64>()) {
        Some(Ok(id)) => Ok(id),
        _ => {
            eprintln!("error: {} requires a numeric campaign id", rest[0]);
            std::process::exit(2);
        }
    }
}

fn submit(client: &mut ServeClient, addr: &str, args: &[String]) -> Result<(), ClientError> {
    let Some(subject) = string_arg(args, "--subject") else {
        eprintln!("error: submit requires --subject NAME");
        std::process::exit(2);
    };
    let seed = pdf_eval::require_arg(pdf_eval::positive_arg_in(args, "--seed", 1));
    let execs = pdf_eval::require_arg(pdf_eval::positive_arg_in(args, "--execs", 5_000));
    let shards = pdf_eval::require_arg(pdf_eval::positive_arg_in(args, "--shards", 1));
    let sync_every = pdf_eval::require_arg(pdf_eval::positive_arg_in(
        args,
        "--sync-every",
        pdf_serve::default_sync_every(execs, shards),
    ));
    let exec_mode = pdf_eval::require_arg(pdf_eval::exec_mode_in(args));
    let deadline_ms = match pdf_eval::positive_arg_in(args, "--deadline-ms", 0) {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let spec = CampaignSpec {
        subject,
        seed,
        execs,
        shards,
        sync_every,
        exec_mode,
        deadline_ms,
        idempotency_key: string_arg(args, "--key"),
    };
    let id = client.submit(&spec)?;
    println!("submitted id={id}");
    if args.iter().any(|a| a == "--wait") {
        let last = RetryClient::new(addr).watch(id, print_status)?;
        print_status(&last);
    }
    Ok(())
}

fn string_arg(args: &[String], flag: &str) -> Option<String> {
    for i in 1..args.len() {
        if args[i] == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

fn print_state(id: u64, state: &str) {
    println!("id={id} state={state}");
}

fn print_status(s: &CampaignStatus) {
    let digest = s
        .digest
        .map_or_else(|| "-".to_string(), |d| format!("{d:016x}"));
    let deadline = s
        .spec
        .deadline_ms
        .map_or_else(|| "-".to_string(), |d| format!("{d}ms"));
    print!(
        "id={} state={} subject={} seed={} execs={}/{} valid={} epoch={} \
         shards={} deadline={} digest={}",
        s.id,
        s.phase,
        s.spec.subject,
        s.spec.seed,
        s.spent,
        s.spec.execs,
        s.valid,
        s.epoch,
        s.spec.shards,
        deadline,
        digest,
    );
    match &s.error {
        Some(e) => println!(" error={e:?}"),
        None => println!(),
    }
}
